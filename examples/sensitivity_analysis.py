#!/usr/bin/env python
"""The pre-campaign sensitivity analysis (§2.2.1).

The paper chose its seven genes "based on initial sensitivity testing
and simulation considerations".  This example makes that step
explicit: one-at-a-time profiles around a good baseline and Morris
elementary-effects screening over the whole space, using the surrogate
landscape (each probe would be a 2-GPU-hour training on Summit — the
frugality of Morris screening is the point).

Run:  python examples/sensitivity_analysis.py
"""

import numpy as np

from repro.analysis import format_table
from repro.hpo.landscape import SurrogateDeepMDProblem
from repro.hpo.sensitivity import morris_screening, one_at_a_time


def main() -> None:
    problem = SurrogateDeepMDProblem(seed=0, simulate_runtime=False)

    # ------------------------------------------------------------------
    # one-at-a-time profiles
    # ------------------------------------------------------------------
    profiles = one_at_a_time(problem, n_points=11)
    rows = []
    for p in profiles:
        ok = p.force < 1e9
        rows.append(
            {
                "gene": p.gene,
                "force range over sweep": p.force_range(),
                "best force": float(p.force[ok].min()),
                "failures in sweep": int((~ok).sum()),
            }
        )
    rows.sort(key=lambda r: -r["force range over sweep"])
    print(
        format_table(
            rows,
            title="OAT sensitivity (force objective, good baseline)",
        )
    )

    # ------------------------------------------------------------------
    # Morris screening
    # ------------------------------------------------------------------
    result = morris_screening(problem, n_trajectories=30, rng=1)
    rows = [
        {
            "gene": g,
            "mu* force": float(result.mu_star_force[i]),
            "sigma force": float(result.sigma_force[i]),
            "mu* energy": float(result.mu_star_energy[i]),
        }
        for i, g in enumerate(result.gene_names)
    ]
    rows.sort(key=lambda r: -r["mu* force"])
    print()
    print(
        format_table(
            rows,
            title=(
                "Morris screening (30 trajectories ≈ 240 probe "
                "trainings)"
            ),
        )
    )
    print(
        "\ninfluence ranking (force): "
        + " > ".join(result.ranking_by_force())
    )
    print(
        "high sigma/mu* ratios flag interaction effects — e.g. "
        "scale_by_worker only matters through the learning rate it "
        "scales."
    )


if __name__ == "__main__":
    main()

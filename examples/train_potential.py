#!/usr/bin/env python
"""Train one deep potential end to end and inspect what it learned.

This is the ``dp train`` workflow in isolation: generate reference
data, configure a DeepPot-SE model, train with the energy/force loss
under the exponential learning-rate decay, and verify that the
predicted forces are the exact negative gradient of the predicted
energy (the property that motivates the paper's multiobjective
formulation: energy and force are coupled through differentiation, so
neither can be tuned alone).

Run:  python examples/train_potential.py
"""

import numpy as np

from repro.deepmd.data import prepare_batches
from repro.deepmd.descriptor import DescriptorConfig
from repro.deepmd.model import DeepPotModel, ModelConfig
from repro.deepmd.training import Trainer, TrainingConfig
from repro.md.dataset import Frame, generate_dataset


def main() -> None:
    dataset = generate_dataset(
        n_frames=48,
        n_alcl3=4,
        n_kcl=2,
        equilibration_steps=150,
        sample_interval=5,
        rng=11,
    )
    print(
        f"dataset: {len(dataset.train)} train / "
        f"{len(dataset.validation)} validation frames"
    )

    config = ModelConfig(
        descriptor=DescriptorConfig(rcut=5.5, rcut_smth=2.0),
        embedding_widths=(8, 16),
        axis_neurons=4,
        fitting_widths=(32, 32),
        desc_activation="tanh",
        fitting_activation="tanh",
    )
    model = DeepPotModel(config, rng=0)
    print(f"model: {model.n_parameters()} trainable parameters")

    trainer = Trainer(
        model,
        dataset,
        TrainingConfig(
            numb_steps=400,
            batch_size=4,
            disp_freq=80,
            start_lr=5e-3,
            stop_lr=5e-5,
            scale_by_worker="none",
        ),
        rng=1,
    )
    e0, f0 = trainer.evaluate_validation()
    print(f"before training: rmse_e {e0:.4f} eV/atom, rmse_f {f0:.4f} eV/A")
    result = trainer.train()
    print(
        f"after  training: rmse_e {result.rmse_e_val:.4f} eV/atom, "
        f"rmse_f {result.rmse_f_val:.4f} eV/A "
        f"({result.steps_completed} steps, {result.wall_time:.1f}s)"
    )
    print("\nlearning curve (lcurve.out rows):")
    for row in result.lcurve.rows:
        print(
            f"  step {int(row['step']):4d}  "
            f"rmse_e_val {row['rmse_e_val']:.4f}  "
            f"rmse_f_val {row['rmse_f_val']:.4f}  "
            f"lr {row['lr']:.2e}"
        )

    # ------------------------------------------------------------------
    # verify F = -dE/dr by central differences on one frame
    # ------------------------------------------------------------------
    frame = dataset.validation[0]
    rcut = config.descriptor.rcut
    batch = prepare_batches([frame], rcut=rcut, batch_size=1)[0]
    _, forces = model.energy_and_forces(batch)

    def energy_at(positions: np.ndarray) -> float:
        probe = Frame(
            positions=positions,
            species=frame.species,
            energy=0.0,
            forces=frame.forces,
            box=frame.box,
        )
        b = prepare_batches([probe], rcut=rcut, batch_size=1)[0]
        return float(model.energy(b).data[0])

    eps = 1e-5
    atom = 0
    numeric = np.zeros(3)
    for k in range(3):
        p = frame.positions.copy()
        p[atom, k] += eps
        ep = energy_at(p)
        p[atom, k] -= 2 * eps
        em = energy_at(p)
        numeric[k] = -(ep - em) / (2 * eps)
    print("\nforce consistency check (atom 0):")
    print(f"  analytic (autodiff): {forces.data[0, atom]}")
    print(f"  numeric  (central):  {numeric}")
    err = np.abs(forces.data[0, atom] - numeric).max()
    print(f"  max abs deviation:   {err:.2e} eV/A")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Deploy a trained potential: run MD on the learned surface.

The entire point of a DNN potential (§1) is replacing first-principles
force evaluations inside molecular dynamics.  This example trains a
small DeepPot-SE model, wraps it in :class:`DeepPotCalculator`, and

1. verifies force fidelity along held-out reference frames,
2. runs Langevin MD *driven by the learned potential* and compares its
   energy statistics with the reference force field, and
3. times both force evaluations (the learned model is the expensive
   one at this miniature scale — the paper's 10000x speedup claim is
   about replacing DFT, which costs hours per step, not a classical
   pair potential).

Run:  python examples/deploy_potential.py
"""

import time

import numpy as np

from repro.deepmd.calculator import (
    DeepPotCalculator,
    force_rmse_along_trajectory,
)
from repro.deepmd.descriptor import DescriptorConfig
from repro.deepmd.model import DeepPotModel, ModelConfig
from repro.deepmd.training import Trainer, TrainingConfig
from repro.md.dataset import generate_dataset
from repro.md.integrator import (
    LangevinIntegrator,
    instantaneous_temperature,
    maxwell_boltzmann_velocities,
)
from repro.md.system import molten_salt_potential, molten_salt_system


def main() -> None:
    dataset = generate_dataset(
        n_frames=60,
        n_alcl3=4,
        n_kcl=2,
        equilibration_steps=150,
        sample_interval=5,
        rng=21,
    )
    config = ModelConfig(
        descriptor=DescriptorConfig(rcut=5.5, rcut_smth=2.0),
        embedding_widths=(8, 16),
        axis_neurons=4,
        fitting_widths=(32, 32),
    )
    model = DeepPotModel(config, rng=0)
    print(f"training a {model.n_parameters()}-parameter potential ...")
    result = Trainer(
        model,
        dataset,
        TrainingConfig(
            numb_steps=300, batch_size=4, disp_freq=100,
            start_lr=5e-3, stop_lr=5e-5,
        ),
        rng=1,
    ).train()
    print(
        f"  validation: rmse_e {result.rmse_e_val:.4f} eV/atom, "
        f"rmse_f {result.rmse_f_val:.4f} eV/A"
    )

    calc = DeepPotCalculator(model)

    # 1. force fidelity on held-out frames
    rmse = force_rmse_along_trajectory(calc, dataset.validation[:8])
    print(
        f"\nforce RMSE on 8 held-out frames: "
        f"{rmse.mean():.4f} +- {rmse.std():.4f} eV/A"
    )

    # 2. MD on the learned surface
    system = molten_salt_system(4, 2, rng=2)
    reference = molten_salt_potential(
        cutoff=0.99 * system.cell.max_cutoff()
    )
    v = maxwell_boltzmann_velocities(system.masses, 498.0, rng=3)
    temps = []
    energies_nn = []

    def cb(step, pos, vel, e, f):
        temps.append(instantaneous_temperature(system.masses, vel))
        energies_nn.append(e)

    integrator = LangevinIntegrator(calc, 498.0, dt=1.0, rng=4)
    print("\nrunning 200 MD steps on the learned potential ...")
    integrator.run(system, v, 200, callback=cb)
    print(
        f"  mean T {np.mean(temps[50:]):.0f} K (target 498 K); "
        f"potential-energy drift "
        f"{abs(energies_nn[-1] - energies_nn[50]):.2f} eV"
    )
    assert np.isfinite(energies_nn).all()

    # 3. force-call timing
    frame = dataset.validation[0]
    t0 = time.perf_counter()
    for _ in range(10):
        reference.energy_and_forces(
            frame.positions, frame.species, frame.cell
        )
    t_ref = (time.perf_counter() - t0) / 10
    t0 = time.perf_counter()
    for _ in range(10):
        calc.energy_and_forces(frame.positions, frame.species, frame.cell)
    t_nn = (time.perf_counter() - t0) / 10
    print(
        f"\nforce-call timing: reference pair potential "
        f"{t_ref * 1e3:.2f} ms, learned potential {t_nn * 1e3:.2f} ms"
    )
    print(
        "(the paper's 10000x speedup compares the NN against DFT — "
        "hours per step — not against a classical pair potential)"
    )


if __name__ == "__main__":
    main()

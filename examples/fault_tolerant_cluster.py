#!/usr/bin/env python
"""The Summit deployment mechanics (§2.2.5), demonstrated.

Two views of the same operational questions:

1. **Live executor** — run an evaluation wave over the Dask-like
   scheduler/worker pool with injected node failures, with and without
   nannies, and watch task reassignment keep the wave complete.
2. **Discrete-event campaign simulation** — place the paper's full
   workload (7 generations x 100 trainings on 100 nodes, 12-hour
   walltime) on the simulated machine and report the envelope.

Run:  python examples/fault_tolerant_cluster.py
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.distributed import LocalCluster, RandomFaults
from repro.hpc import BatchJob, ClusterSimulation, TrainingRuntimeModel
from repro.rng import ensure_rng


def live_executor_demo() -> None:
    print("=== live executor with injected node failures ===")

    def fake_training(x: int) -> int:
        time.sleep(0.01)
        return x * x

    for nannies in (False, True):
        policy = RandomFaults(rate=0.10, max_failures=3, rng=0)
        with LocalCluster(
            n_workers=6,
            use_nannies=nannies,
            fault_policy=policy,
            max_retries=4,
        ) as cluster:
            client = cluster.client()
            futures = client.map(fake_training, range(60))
            results = client.gather(futures, timeout=60)
            stats = cluster.scheduler.stats()
        ok = results == [x * x for x in range(60)]
        print(
            f"  nannies={'on ' if nannies else 'off'}: "
            f"60/60 tasks correct={ok}, "
            f"reassignments={stats['reassignments']}, "
            f"workers left={stats['workers']}"
        )
    print(
        "  (the paper disabled nannies: restarts cannot fix hardware "
        "faults; the scheduler's reassignment is what matters)\n"
    )


def campaign_simulation_demo() -> None:
    print("=== discrete-event simulation of the paper's allocation ===")
    rng = ensure_rng(0)
    runtime_model = TrainingRuntimeModel(rng=rng)
    # the campaign's rcut values are uniform at generation 0 and drift
    # upward as the EA discovers large cutoffs are needed
    workloads = []
    for gen in range(7):
        lo = 6.0 + 0.5 * gen
        rcuts = rng.uniform(lo, 12.0, size=100)
        workloads.append(
            [runtime_model.runtime_minutes(r) for r in rcuts]
        )

    rows = []
    for label, mtbf, nannies in (
        ("healthy machine", None, False),
        ("MTBF 3000 min, no nannies", 3000.0, False),
        ("MTBF 3000 min, nannies", 3000.0, True),
    ):
        sim = ClusterSimulation(
            job=BatchJob(n_nodes=100, walltime_minutes=720.0),
            runtime_model=runtime_model,
            node_mtbf_minutes=mtbf,
            nannies=nannies,
            rng=1,
        )
        report = sim.run_campaign(workloads)
        summary = report.summary()
        rows.append(
            {
                "scenario": label,
                "hours": summary["total_hours"],
                "completed": summary["evaluations_completed"],
                "node failures": summary["node_failures"],
                "nodes lost": summary["nodes_lost"],
                "fit in 12h": not report.walltime_exceeded,
            }
        )
    print(format_table(rows))
    print(
        "\n  700 trainings (the paper's 5 jobs ran 3500 total) fit the "
        "12-hour allocation with margin, matching §2.2.5's envelope"
    )


if __name__ == "__main__":
    live_executor_demo()
    campaign_simulation_demo()

#!/usr/bin/env python
"""Validate the NSGA-II implementation on the ZDT benchmark suite.

Before pointing the optimizer at 2-GPU-hour DeePMD trainings, one
wants evidence that it is a faithful NSGA-II.  This example runs it on
ZDT1/2/3 (known analytic Pareto fronts) and reports hypervolume, IGD,
and spread, plus the rank-ordinal vs classic sorting agreement.

Run:  python examples/nsga2_zdt.py
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.evo.algorithm import generational_nsga2
from repro.evo.nsga2 import fast_nondominated_sort, rank_ordinal_sort
from repro.mo.dominance import non_dominated_mask
from repro.mo.metrics import (
    hypervolume_2d,
    inverted_generational_distance,
    spread_2d,
)
from repro.mo.testsuite import ZDT1, ZDT2, ZDT3


def solve(problem, pop=60, generations=150, rng=1):
    records = generational_nsga2(
        problem=problem,
        init_ranges=problem.bounds,
        initial_std=np.full(problem.n_variables, 0.15),
        pop_size=pop,
        generations=generations,
        hard_bounds=problem.bounds,
        anneal_factor=0.98,
        rng=rng,
    )
    F = np.array([ind.fitness for ind in records[-1].population])
    return F[non_dominated_mask(F)]


def main() -> None:
    rows = []
    for problem_cls in (ZDT1, ZDT2, ZDT3):
        problem = problem_cls(n_variables=8)
        t0 = time.time()
        front = solve(problem)
        elapsed = time.time() - t0
        rows.append(
            {
                "problem": problem_cls.__name__,
                "front size": len(front),
                "hypervolume (ref 1.1,1.1)": hypervolume_2d(
                    front, (1.1, 1.1)
                ),
                "IGD": inverted_generational_distance(
                    front, problem.true_front()
                ),
                "spread": spread_2d(front),
                "seconds": elapsed,
            }
        )
    print(format_table(rows, title="NSGA-II on the ZDT suite"))

    # sorting agreement sanity check on random data
    rng = np.random.default_rng(0)
    F = rng.normal(size=(500, 2))
    assert np.array_equal(
        rank_ordinal_sort(F), fast_nondominated_sort(F)
    )
    print(
        "\nrank-ordinal sort and classic fast non-dominated sort agree "
        "on 500 random fitness vectors"
    )


if __name__ == "__main__":
    main()

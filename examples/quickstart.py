#!/usr/bin/env python
"""Quickstart: one NSGA-II deployment over the DeePMD hyperparameter
space, printing the Table 1 representation and the resulting frontier.

Uses the calibrated surrogate landscape so the whole paper-scale run
(100 individuals x 7 generations) finishes in seconds.  See
``molten_salt_hpo.py`` for the same pipeline over *real* scaled-down
trainings.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import format_table, frontier_table
from repro.hpo import (
    DeepMDRepresentation,
    NSGA2Settings,
    SurrogateDeepMDProblem,
    filter_chemically_accurate,
    run_deepmd_nsga2,
)
from repro.mo.pareto import pareto_front


def main() -> None:
    # ------------------------------------------------------------------
    # Table 1: the seven-gene representation
    # ------------------------------------------------------------------
    rows = [
        {
            "hyperparameter": r["hyperparameter"],
            "initialization range": str(r["initialization range"]),
            "mutation std": r["mutation standard deviation"],
        }
        for r in DeepMDRepresentation.table1()
    ]
    print(format_table(rows, title="Table 1 - representation"))
    print()

    # ------------------------------------------------------------------
    # one EA deployment (the paper ran five of these on Summit)
    # ------------------------------------------------------------------
    problem = SurrogateDeepMDProblem(seed=42)
    records = run_deepmd_nsga2(
        problem,
        settings=NSGA2Settings(pop_size=100, generations=6),
        rng=42,
    )
    print(
        f"ran {sum(len(r.evaluated) for r in records)} simulated "
        f"trainings over {len(records)} generations"
    )
    for rec in records:
        viable = [i for i in rec.population if i.is_viable]
        F = np.array([i.fitness for i in viable])
        print(
            f"  gen {rec.generation}: median force "
            f"{np.median(F[:, 1]):.4f} eV/A, median energy "
            f"{np.median(F[:, 0]):.5f} eV/atom, "
            f"{rec.n_failures} failed trainings"
        )

    # ------------------------------------------------------------------
    # the Pareto frontier and the chemically accurate subset
    # ------------------------------------------------------------------
    final = records[-1].population
    table = frontier_table(final)
    print()
    print(
        format_table(
            table.rows(),
            title=f"Pareto frontier ({len(table)} solutions)",
        )
    )
    accurate = filter_chemically_accurate(final)
    print(
        f"\n{len(accurate)} of {len(final)} final solutions are "
        "chemically accurate (force < 0.04 eV/A, energy < 0.004 eV/atom)"
    )
    if accurate:
        best = min(accurate, key=lambda i: float(i.fitness[1]))
        print("best accurate solution:")
        for k, v in best.metadata["phenome"].items():
            print(f"  {k:>20s} = {v}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Reproduce every table and figure of the paper in one run.

Runs the full paper-scale campaign (5 independent NSGA-II deployments,
100 individuals, 7 generations = 3500 trainings) on the calibrated
surrogate landscape and prints:

* Fig. 1 data — per-generation pooled loss distributions;
* Fig. 2 / Table 2 — the aggregate Pareto frontier;
* Fig. 3 data — parallel-coordinates rows and the categorical
  break-downs behind §3.2's narrative;
* Table 3 — the three selected chemically accurate solutions;
* the §3 claims (rcut threshold, activation drop-out, scaling
  preference, failure counts).

Run:  python examples/paper_campaign.py
"""

import numpy as np

from repro.analysis import (
    ascii_density,
    ascii_scatter,
    convergence_summary,
    format_table,
    frontier_table,
    generation_level_plots,
    parallel_coordinates,
    table3_rows,
)
from repro.hpo import filter_chemically_accurate
from repro.hpo.campaign import Campaign, CampaignConfig
from repro.hpo.landscape import SurrogateDeepMDProblem


def main() -> None:
    config = CampaignConfig(
        n_runs=5, pop_size=100, generations=6, base_seed=2023
    )
    print(
        f"campaign: {config.n_runs} runs x {config.pop_size} "
        f"individuals x {config.generations + 1} generations"
    )
    result = Campaign(
        lambda seed: SurrogateDeepMDProblem(seed=seed), config
    ).run()
    print(f"total trainings: {result.n_trainings}\n")

    # Fig. 1
    panels = generation_level_plots(result)
    print(
        format_table(
            [p.summary() for p in panels],
            title="Fig. 1 - pooled loss distributions per generation",
        )
    )
    conv = convergence_summary(result)
    print(
        "\nconvergence (median shift per EA step): "
        + ", ".join(f"{s:.3f}" for s in conv.median_shift())
    )

    # Fig. 1 rendered: generation 0 vs the last generation
    for g in (0, len(panels) - 1):
        p = panels[g]
        keep = (p.forces <= 0.2) & (p.energies <= 0.02)
        print()
        print(f"Fig. 1, generation {g} (zoomed to the origin cluster):")
        print(
            ascii_density(
                p.energies[keep],
                p.forces[keep],
                width=56,
                height=12,
                x_range=(0.0, 0.02),
                y_range=(0.0, 0.2),
                x_label="energy loss (eV/atom)",
                y_label="force loss (eV/A)",
            )
        )

    # Fig. 2 / Table 2
    table = frontier_table(result)
    print()
    print(
        format_table(
            table.rows(),
            title=(
                f"Table 2 - Pareto frontier of the aggregated last "
                f"generations ({len(table)} solutions)"
            ),
        )
    )
    final = [
        ind
        for ind in result.last_generation_individuals()
        if ind.is_viable
    ]
    print()
    print("Fig. 2 - final solutions (.) and the Pareto frontier (O):")
    print(
        ascii_scatter(
            [(i.fitness[0], i.fitness[1]) for i in final],
            highlight=[
                (i.fitness[0], i.fitness[1]) for i in table.members
            ],
            width=56,
            height=14,
            x_label="energy loss (eV/atom)",
            y_label="force loss (eV/A)",
        )
    )

    # Fig. 3 narrative
    data = parallel_coordinates(result)
    accurate = data.accurate_rows()
    print(
        f"\nFig. 3 - {len(data)} final solutions, {len(accurate)} "
        "chemically accurate"
    )
    if accurate:
        print(
            f"  accurate-solution rcut range: "
            f"{min(r['rcut'] for r in accurate):.2f} - "
            f"{max(r['rcut'] for r in accurate):.2f} A "
            "(paper: no accurate solution below 8.5 A)"
        )
    for axis in ("fitting_activ_func", "desc_activ_func", "scale_by_worker"):
        all_counts = data.categorical_counts(axis)
        acc_counts = data.categorical_counts(axis, accurate_only=True)
        print(f"  {axis}: all={all_counts} accurate={acc_counts}")

    # Table 3
    print()
    rows = [r.as_dict() for r in table3_rows(result)]
    print(
        format_table(
            rows, title="Table 3 - selected chemically accurate solutions"
        )
    )

    # §3.2 failures narrative
    failures = result.failures_by_generation()
    print(
        f"\nfailed trainings by generation: {failures} "
        f"(total {sum(failures)}; paper observed 25, none in the last "
        "generation)"
    )
    runtimes = result.runtimes_last_generation()
    print(
        f"last-generation runtimes: max {np.nanmax(runtimes):.1f} min "
        "(paper: all under ~80 minutes)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The full paper pipeline over *real* trainings, miniaturized.

1. Generate molten AlCl3-KCl reference data with classical MD (the
   stand-in for the paper's CP2K FPMD trajectory).
2. Run NSGA-II over the seven DeePMD hyperparameters where every
   fitness evaluation actually trains a DeepPot-SE network on that
   data (UUID run directory, input.json from the template, lcurve.out
   parsed for the final rmse_e_val / rmse_f_val).
3. Evaluate in parallel over a local worker pool (the Dask analogue).
4. Print the frontier.

Takes a couple of minutes; shrink POP_SIZE / GENERATIONS for a faster
look.

Run:  python examples/molten_salt_hpo.py

Set REPRO_TRACE=/path/to/trace.jsonl to capture a task-level trace of
the whole run, then render it with ``repro-hpo trace <path>``.
"""

import os
import time

import numpy as np

from repro.analysis import format_table, frontier_table
from repro.distributed import LocalCluster
from repro.obs import Tracer, set_tracer
from repro.hpo import (
    DeepMDProblem,
    EvaluatorSettings,
    NSGA2Settings,
    run_deepmd_nsga2,
)
from repro.md.dataset import generate_dataset

POP_SIZE = 8
GENERATIONS = 2
MD_FRAMES = 32


def main() -> None:
    trace_path = os.environ.get("REPRO_TRACE")
    if trace_path:
        set_tracer(Tracer(trace_path))
        print(f"tracing to {trace_path}")
    print(f"generating {MD_FRAMES} MD frames of molten AlCl3-KCl ...")
    dataset = generate_dataset(
        n_frames=MD_FRAMES,
        n_alcl3=4,
        n_kcl=2,
        equilibration_steps=100,
        sample_interval=5,
        rng=7,
    )
    print(
        f"  {len(dataset.train)} training / {len(dataset.validation)} "
        f"validation frames, {dataset.n_atoms} atoms, box "
        f"{dataset.train[0].box[0]:.2f} A"
    )

    settings = EvaluatorSettings(
        numb_steps=40,
        batch_size=2,
        disp_freq=40,
        embedding_widths=(4, 8),
        axis_neurons=2,
        fitting_widths=(8,),
        time_limit=120.0,  # the paper capped each training at 2 hours
    )
    problem = DeepMDProblem(dataset, settings=settings)

    print(
        f"\nNSGA-II: {POP_SIZE} individuals x {GENERATIONS + 1} "
        "generations of real trainings, 4 parallel workers"
    )
    t0 = time.time()
    with LocalCluster(n_workers=4) as cluster:
        records = run_deepmd_nsga2(
            problem,
            settings=NSGA2Settings(
                pop_size=POP_SIZE, generations=GENERATIONS
            ),
            client=cluster.client(),
            rng=1,
        )
    elapsed = time.time() - t0
    total = sum(len(r.evaluated) for r in records)
    print(f"finished {total} trainings in {elapsed:.1f}s")

    for rec in records:
        viable = [i for i in rec.evaluated if i.is_viable]
        if not viable:
            continue
        F = np.array([i.fitness for i in viable])
        print(
            f"  gen {rec.generation}: best force "
            f"{F[:, 1].min():.4f} eV/A, best energy "
            f"{F[:, 0].min():.5f} eV/atom "
            f"({rec.n_failures} failures)"
        )

    table = frontier_table(records[-1].population)
    print()
    print(
        format_table(
            table.rows(),
            title="Pareto frontier over real trainings",
        )
    )
    best = table.members[0]
    print("\nhyperparameters of the first frontier solution:")
    for k, v in best.metadata["phenome"].items():
        print(f"  {k:>20s} = {v}")
    print(f"  training dir: {best.metadata['workdir']}")
    if trace_path:
        print(f"\ntrace captured: repro-hpo trace {trace_path}")


if __name__ == "__main__":
    main()

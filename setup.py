"""Legacy shim so ``pip install -e .`` works offline (no wheel package
available for PEP 660 editable builds). All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()

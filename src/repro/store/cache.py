"""Content-addressed evaluation cache.

One paper-scale campaign is ~3500 trainings of 2 GPU-hours each, and
annealed Gaussian mutation (plus five independent runs over the same
search space) re-visits hyperparameter combinations routinely.  The
cache memoizes finished evaluations on disk, keyed by a canonical hash
of *what determines the result*: the decoded phenome, the dataset
identity, and the fixed evaluator settings.  Anything else — UUIDs,
work directories, wall-clock — is payload, not key.

Design constraints, in order:

* **Never corrupt, never crash.**  Entries are written to a temp file
  in the cache directory and ``os.replace``-d into place, so readers
  only ever see whole entries; loads skip torn or garbage files (and
  count them) instead of raising.
* **Failures are not results.**  A diverged training says "this
  phenome fails *this time*" — background failures are stochastic, and
  memoizing them would freeze bad luck into the search.  Failed
  evaluations are therefore not cached unless ``cache_failures`` is
  set (useful when failures are known-deterministic).
* **Bounded memory.**  The in-memory index is an LRU of at most
  ``max_index_entries`` deserialized entries; the disk store is the
  source of truth and is consulted on index misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import uuid as uuid_module
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro.engine.invoke import (
    call_problem,
    call_problem_batch,
    failure_fitness,
)
from repro.evo.problem import BatchOutcome, WithMetadataProblem
from repro.exceptions import EvaluationError
from repro.injection import FaultInjector, get_injector
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import get_tracer

#: bumped whenever the entry layout changes; old entries are skipped
ENTRY_VERSION = 1


class CachedFailure(EvaluationError):
    """Raised on a cache hit of a memoized *failed* evaluation.

    Carries the stored metadata so :class:`~repro.evo.individual.
    RobustIndividual` records the original failure cause alongside the
    MAXINT fitness, exactly as a live failure would.
    """

    def __init__(self, message: str, metadata: Optional[dict] = None) -> None:
        super().__init__(message)
        self.metadata = dict(metadata or {})


def _canonical(value: Any) -> Any:
    """Coerce to a JSON-stable form: numpy scalars to Python scalars,
    tuples to lists, mapping keys to strings."""
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_canonical(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, repr-exact
    floats (Python's ``json`` emits the shortest round-tripping
    representation, so float keys are bit-stable)."""
    return json.dumps(
        _canonical(value), sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )


def evaluation_key(phenome: Any, fingerprint: Any) -> str:
    """The content address of one evaluation.

    ``fingerprint`` identifies everything outside the phenome that the
    result depends on (dataset identity + fixed evaluator settings);
    problems provide it via ``cache_fingerprint()``.
    """
    payload = canonical_json({"phenome": phenome, "fingerprint": fingerprint})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def dataset_fingerprint(dataset: Any) -> str:
    """Content hash of a :class:`~repro.md.dataset.FrameDataset`.

    Hashes every frame's labels and coordinates in both splits, so any
    change to the training data invalidates cached evaluations.
    """
    h = hashlib.sha256()
    for split_name in ("train", "validation"):
        frames = getattr(dataset, split_name, []) or []
        h.update(split_name.encode())
        for frame in frames:
            h.update(np.ascontiguousarray(frame.positions).tobytes())
            h.update(np.ascontiguousarray(frame.forces).tobytes())
            h.update(np.float64(frame.energy).tobytes())
            h.update(np.ascontiguousarray(frame.box).tobytes())
    return h.hexdigest()[:16]


@dataclass
class CacheEntry:
    """One memoized evaluation."""

    key: str
    fitness: list[float] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)
    failed: bool = False
    error: Optional[str] = None

    def fitness_array(self) -> np.ndarray:
        return np.asarray(self.fitness, dtype=np.float64)

    def to_doc(self) -> dict[str, Any]:
        return {
            "version": ENTRY_VERSION,
            "key": self.key,
            "fitness": [float(f) for f in self.fitness],
            "metadata": _canonical(self.metadata),
            "failed": bool(self.failed),
            "error": self.error,
        }

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "CacheEntry":
        if not isinstance(doc, dict) or doc.get("version") != ENTRY_VERSION:
            raise ValueError("unknown cache entry version")
        if "key" not in doc or "fitness" not in doc:
            raise ValueError("cache entry missing required fields")
        return cls(
            key=str(doc["key"]),
            fitness=[float(f) for f in doc["fitness"]],
            metadata=dict(doc.get("metadata") or {}),
            failed=bool(doc.get("failed", False)),
            error=doc.get("error"),
        )


class EvaluationCache:
    """Disk-backed, content-addressed store of finished evaluations.

    Layout: ``directory/<key[:2]>/<key>.json`` (sharded so a 3500-entry
    campaign doesn't produce one enormous flat directory), plus
    transient ``*.tmp`` files that are atomically renamed into place.

    Thread-safe: workers evaluate concurrently, and a racing double
    insert of the same key is harmless (same content, last rename
    wins).
    """

    def __init__(
        self,
        directory: str | Path,
        cache_failures: bool = False,
        max_index_entries: int = 4096,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Any = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.cache_failures = bool(cache_failures)
        self.max_index_entries = int(max_index_entries)
        if self.max_index_entries < 1:
            raise ValueError("max_index_entries must be >= 1")
        self.tracer = tracer if tracer is not None else get_tracer()
        self._obs = bool(getattr(self.tracer, "enabled", False))
        registry = metrics if metrics is not None else get_registry()
        self._c_hits = registry.counter("store_cache_hits_total")
        self._c_misses = registry.counter("store_cache_misses_total")
        self._c_corrupt = registry.counter("store_cache_corrupt_total")
        self._c_inserts = registry.counter("store_cache_inserts_total")
        self._c_skipped = registry.counter(
            "store_cache_skipped_failures_total"
        )
        #: chaos seam: entry corruption after insert (None normally)
        self._injector = (
            fault_injector if fault_injector is not None else get_injector()
        )
        self._lock = threading.Lock()
        self._index: "OrderedDict[str, CacheEntry]" = OrderedDict()
        # per-instance stats (the registry counters are process-wide)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.inserts = 0
        self.skipped_failures = 0

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        """Spawn-safe pickling for the process-pool backend.

        Only the cache *identity* crosses the process boundary: the
        directory and policy knobs.  The worker-side replica starts
        with an empty index and fresh per-instance stats, re-resolves
        tracer/metrics/injector from its own process globals (workers
        run injector-free — chaos fires once, in the parent), and
        shares the disk store, whose atomic rename writes are already
        multi-process safe.
        """
        return {
            "directory": self.directory,
            "cache_failures": self.cache_failures,
            "max_index_entries": self.max_index_entries,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__(
            state["directory"],
            cache_failures=state["cache_failures"],
            max_index_entries=state["max_index_entries"],
        )

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def _index_put(self, key: str, entry: CacheEntry) -> None:
        with self._lock:
            self._index[key] = entry
            self._index.move_to_end(key)
            while len(self._index) > self.max_index_entries:
                self._index.popitem(last=False)

    # ------------------------------------------------------------------
    def contains(self, key: str) -> bool:
        """Cheap existence probe (no deserialization, no stats)."""
        with self._lock:
            if key in self._index:
                return True
        return self._path(key).exists()

    def lookup(self, key: str) -> Optional[CacheEntry]:
        """Return the stored entry, or None on miss *or* corruption.

        A torn/garbage/foreign-version file counts as corrupt, is
        skipped, and never raises — the evaluation simply re-runs.
        """
        with self._lock:
            entry = self._index.get(key)
            if entry is not None:
                self._index.move_to_end(key)
                self.hits += 1
        if entry is not None:
            self._c_hits.inc()
            if self._obs:
                self.tracer.event("store.cache.hit", key=key, index=True)
            return entry
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            with self._lock:
                self.misses += 1
            self._c_misses.inc()
            if self._obs:
                self.tracer.event("store.cache.miss", key=key)
            return None
        try:
            entry = CacheEntry.from_doc(json.loads(text))
            if entry.key != key:
                raise ValueError("entry key does not match its address")
        except (ValueError, TypeError, KeyError):
            with self._lock:
                self.corrupt += 1
                self.misses += 1
            self._c_corrupt.inc()
            self._c_misses.inc()
            if self._obs:
                self.tracer.event("store.cache.corrupt", key=key)
            return None
        with self._lock:
            self.hits += 1
        self._c_hits.inc()
        self._index_put(key, entry)
        if self._obs:
            self.tracer.event("store.cache.hit", key=key, index=False)
        return entry

    def insert(
        self,
        key: str,
        fitness: Any,
        metadata: Optional[dict[str, Any]] = None,
        failed: bool = False,
        error: Optional[str] = None,
    ) -> bool:
        """Persist one evaluation; returns False when refused.

        Failed evaluations are refused unless the cache was built with
        ``cache_failures=True``.  The write is atomic: temp file in the
        same directory, then ``os.replace``.
        """
        if failed and not self.cache_failures:
            with self._lock:
                self.skipped_failures += 1
            self._c_skipped.inc()
            if self._obs:
                self.tracer.event("store.cache.skip_failure", key=key)
            return False
        fitness_list = [
            float(f) for f in np.atleast_1d(np.asarray(fitness, float))
        ]
        entry = CacheEntry(
            key=key,
            fitness=fitness_list,
            metadata=_strip_nonjson(metadata or {}),
            failed=failed,
            error=error,
        )
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{uuid_module.uuid4().hex}.tmp"
        try:
            tmp.write_text(json.dumps(entry.to_doc(), allow_nan=False))
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on write failure
                tmp.unlink(missing_ok=True)
        self._index_put(key, entry)
        if self._injector is not None and self._injector.corrupt_cache_entry(
            path
        ):
            # the disk entry was just garbled; evict the good in-memory
            # copy too, or lookups would never see the corruption
            with self._lock:
                self._index.pop(key, None)
        with self._lock:
            self.inserts += 1
        self._c_inserts.inc()
        if self._obs:
            self.tracer.event("store.cache.insert", key=key, failed=failed)
        return True

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of entries on disk (walks the shard directories)."""
        return sum(1 for _ in self.directory.glob("??/*.json"))

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "corrupt": self.corrupt,
                "inserts": self.inserts,
                "skipped_failures": self.skipped_failures,
            }


def _strip_nonjson(value: Any) -> Any:
    """Canonicalize metadata for strict JSON: NaN/inf become None."""
    value = _canonical(value)

    def walk(v: Any) -> Any:
        if isinstance(v, float) and not np.isfinite(v):
            return None
        if isinstance(v, dict):
            return {k: walk(x) for k, x in v.items()}
        if isinstance(v, list):
            return [walk(x) for x in v]
        return v

    return walk(value)


class CachedProblem(WithMetadataProblem):
    """Wrap any problem with cache lookup-before / insert-after.

    The wrapped problem supplies its identity through
    ``cache_fingerprint()``; problems without one are fingerprinted by
    class name only (correct for stateless analytic problems, too
    coarse for anything data-dependent — implement the method).

    A memoized failure (only present with ``cache_failures``) replays
    as a :class:`CachedFailure`, which the robust individual converts
    to MAXINT fitness just like the original exception.
    """

    def __init__(self, problem: Any, cache: EvaluationCache) -> None:
        self.problem = problem
        self.cache = cache
        self.n_objectives = int(getattr(problem, "n_objectives", 1))
        if hasattr(problem, "cache_fingerprint"):
            self._fingerprint = problem.cache_fingerprint()
        else:
            cls = type(problem)
            self._fingerprint = {
                "problem": f"{cls.__module__}.{cls.__qualname__}"
            }

    def cache_fingerprint(self) -> Any:
        return self._fingerprint

    def cache_key(self, phenome: Any) -> str:
        return evaluation_key(phenome, self._fingerprint)

    def __getattr__(self, name: str) -> Any:
        # delegate everything else (seed, evaluations, dataset, ...)
        try:
            inner = self.__dict__["problem"]
        except KeyError:  # pragma: no cover - mid-construction access
            raise AttributeError(name) from None
        return getattr(inner, name)

    # ------------------------------------------------------------------
    def evaluate_with_metadata(
        self, phenome: Any, uuid: Optional[str] = None
    ) -> tuple[np.ndarray, dict[str, Any]]:
        key = self.cache_key(phenome)
        entry = self.cache.lookup(key)
        if entry is not None:
            if entry.failed:
                raise CachedFailure(
                    entry.error or "memoized evaluation failure",
                    metadata={**entry.metadata, "cache_hit": True},
                )
            return entry.fitness_array(), {
                **entry.metadata,
                "cache_hit": True,
            }
        try:
            fitness, metadata = call_problem(self.problem, phenome, uuid=uuid)
        except Exception as exc:
            meta = dict(getattr(exc, "metadata", None) or {})
            meta.setdefault("failed", True)
            meta.setdefault(
                "failure_cause", f"{type(exc).__name__}: {exc}"
            )
            exc.metadata = meta  # type: ignore[attr-defined]
            self.cache.insert(
                key,
                failure_fitness(self.n_objectives),
                metadata=meta,
                failed=True,
                error=meta["failure_cause"],
            )
            raise
        self.cache.insert(
            key,
            fitness,
            metadata=metadata,
            failed=bool(metadata.get("failed", False)),
            error=metadata.get("failure_cause"),
        )
        return fitness, metadata

    def evaluate_batch_with_metadata(
        self, phenomes: Any, uuids: Optional[Any] = None
    ) -> list[BatchOutcome]:
        """Probe the cache for the whole batch, execute only the
        misses through the inner problem's batch path, and insert
        fresh results (and failures, under ``cache_failures``) exactly
        as the scalar path would — per slot, in batch order."""
        phenome_list = list(phenomes)
        uuid_list = (
            list(uuids)
            if uuids is not None
            else [None] * len(phenome_list)
        )
        outcomes: list[BatchOutcome] = [None] * len(phenome_list)
        keys: list[Optional[str]] = [None] * len(phenome_list)
        miss: list[int] = []
        for i, phenome in enumerate(phenome_list):
            try:
                key = self.cache_key(phenome)
            except Exception as exc:  # unhashable phenome: fail the slot
                outcomes[i] = exc
                continue
            keys[i] = key
            entry = self.cache.lookup(key)
            if entry is None:
                miss.append(i)
            elif entry.failed:
                outcomes[i] = CachedFailure(
                    entry.error or "memoized evaluation failure",
                    metadata={**entry.metadata, "cache_hit": True},
                )
            else:
                outcomes[i] = (
                    entry.fitness_array(),
                    {**entry.metadata, "cache_hit": True},
                )
        if miss:
            fresh = call_problem_batch(
                self.problem,
                [phenome_list[i] for i in miss],
                uuids=[uuid_list[i] for i in miss],
            )
            for i, slot in zip(miss, fresh):
                key = keys[i]
                if isinstance(slot, BaseException):
                    meta = dict(getattr(slot, "metadata", None) or {})
                    meta.setdefault("failed", True)
                    meta.setdefault(
                        "failure_cause",
                        f"{type(slot).__name__}: {slot}",
                    )
                    slot.metadata = meta  # type: ignore[attr-defined]
                    self.cache.insert(
                        key,
                        failure_fitness(self.n_objectives),
                        metadata=meta,
                        failed=True,
                        error=meta["failure_cause"],
                    )
                    outcomes[i] = slot
                else:
                    fitness, metadata = slot
                    self.cache.insert(
                        key,
                        fitness,
                        metadata=metadata,
                        failed=bool(metadata.get("failed", False)),
                        error=metadata.get("failure_cause"),
                    )
                    outcomes[i] = (fitness, metadata)
        return outcomes

"""Write-ahead campaign journal: strict JSONL, fsync on commit.

The paper's campaigns ran 12-hour batch jobs on a machine with known
node failures, yet the original persistence layer
(:mod:`repro.io.campaign_store`) only wrote a snapshot *after* a
campaign finished — a SIGKILL lost everything.  The journal instead
appends one self-contained record per event as the campaign runs:

``campaign_begin``
    schema version, campaign config, and the problem spec needed to
    rebuild the evaluator on resume.
``run_begin`` / ``run_resume`` / ``run_end``
    run boundaries with the per-run seed.
``generation``
    the full generation state — genomes, fitnesses, UUIDs, metadata
    for both the post-selection population and everything evaluated,
    the annealed mutation deviations, failure count, and the EA RNG
    state *after* the generation — appended (flushed and fsynced)
    before the generation is committed to the in-memory record list.
``evaluation``
    one completed candidate evaluation (genome, fitness, UUID,
    metadata) — the steady-state driver's unit of progress, appended
    by the evaluation engine on every completion since the barrier-free
    scheme has no generation boundary to commit at.
``campaign_end``
    normal completion marker.

Every line is strict JSON (floats round-trip bit-exactly through
Python's shortest-repr encoder; NaN/inf in metadata become null), so a
journal truncated at an arbitrary byte offset parses cleanly up to the
torn record and the resume engine continues from the last whole
generation.  A SIGKILL therefore loses at most the in-flight
evaluations of one generation — and those are recoverable from the
evaluation cache.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro.evo.algorithm import GenerationRecord
from repro.evo.individual import Individual, RobustIndividual
from repro.injection import FaultInjector, get_injector

#: journal format version; readers skip records from future versions
JOURNAL_SCHEMA_VERSION = 1

#: conventional file name inside a campaign directory
JOURNAL_NAME = "journal.jsonl"


def journal_path(directory: str | Path) -> Path:
    return Path(directory) / JOURNAL_NAME


def _json_safe(value: Any) -> Any:
    """Strict-JSON coercion: numpy scalars/arrays to Python, NaN/inf
    to null, exotic objects to their ``str``."""
    if value is None or isinstance(value, (str, int, bool)):
        return value
    if isinstance(value, float):
        return value if np.isfinite(value) else None
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return _json_safe(value.item())
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


def _group_doc(group: list[Individual]) -> dict[str, Any]:
    return {
        "genomes": [[float(g) for g in ind.genome] for ind in group],
        "fitness": [
            None
            if ind.fitness is None
            else [float(f) for f in ind.fitness]
            for ind in group
        ],
        "uuids": [ind.uuid for ind in group],
        "metadata": [_json_safe(ind.metadata) for ind in group],
    }


def _group_individuals(
    doc: dict[str, Any],
    decoder: Any = None,
    problem: Any = None,
) -> list[RobustIndividual]:
    out: list[RobustIndividual] = []
    for genome, fit, uuid, meta in zip(
        doc["genomes"], doc["fitness"], doc["uuids"], doc["metadata"]
    ):
        ind = RobustIndividual(genome, decoder=decoder, problem=problem)
        if fit is not None:
            ind.fitness = np.asarray(fit, dtype=np.float64)
        ind.uuid = uuid
        ind.metadata = dict(meta)
        if problem is not None:
            ind.n_objectives = problem.n_objectives
        out.append(ind)
    return out


def rng_state_of(rng: Any) -> Optional[dict[str, Any]]:
    """The JSON-serializable bit-generator state of a numpy Generator
    (None when the generator doesn't expose one)."""
    try:
        return _json_safe(rng.bit_generator.state)
    except AttributeError:
        return None


def restore_rng(state: dict[str, Any]) -> np.random.Generator:
    """Rebuild a Generator from a journaled bit-generator state."""
    name = state.get("bit_generator", "PCG64")
    bit_generator = getattr(np.random, name)()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


class CampaignJournal:
    """Append-only writer; one strict-JSON object per line.

    ``mode="w"`` starts a fresh journal, ``mode="a"`` continues an
    existing one (the resume engine's mode).  Each append flushes and
    fsyncs before returning, so a record that was reported committed
    survives a SIGKILL.
    """

    def __init__(
        self,
        path: str | Path,
        problem_spec: Optional[dict[str, Any]] = None,
        mode: str = "w",
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        if mode not in ("w", "a"):
            raise ValueError("journal mode must be 'w' or 'a'")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.problem_spec = dict(problem_spec or {})
        self._file = open(self.path, mode, encoding="utf-8")
        self._run: Optional[int] = None
        #: chaos seam: torn-write simulation (None normally)
        self._injector = (
            fault_injector if fault_injector is not None else get_injector()
        )

    # ------------------------------------------------------------------
    def _append(self, doc: dict[str, Any]) -> None:
        line = json.dumps(_json_safe(doc), allow_nan=False)
        self._file.write(line + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())
        if self._injector is not None:
            chop = self._injector.journal_truncation()
            if chop:
                # simulate a torn write: drop the record's tail.  Later
                # appends land after the cut, so the garbled text
                # becomes a mid-file torn record that read_journal
                # stops at — exactly a crash-during-write artifact.
                fd = self._file.fileno()
                size = os.fstat(fd).st_size
                os.ftruncate(fd, max(0, size - int(chop)))
                self._file.seek(0, os.SEEK_END)

    def begin_campaign(self, config: Any) -> None:
        if dataclasses.is_dataclass(config):
            config_doc = dataclasses.asdict(config)
        else:
            config_doc = dict(config)
        self._append(
            {
                "type": "campaign_begin",
                "schema_version": JOURNAL_SCHEMA_VERSION,
                "ts": time.time(),
                "config": config_doc,
                "problem_spec": self.problem_spec,
            }
        )

    def begin_run(self, run: int, seed: int) -> None:
        self._run = int(run)
        self._append(
            {"type": "run_begin", "run": int(run), "seed": int(seed)}
        )

    def resume_run(self, run: int, generation: int) -> None:
        """Mark that a later session is continuing ``run`` after the
        journaled ``generation``."""
        self._run = int(run)
        self._append(
            {
                "type": "run_resume",
                "run": int(run),
                "generation": int(generation),
                "ts": time.time(),
            }
        )

    def append_generation(
        self,
        record: GenerationRecord,
        rng_state: Any = None,
        driver_state: Any = None,
    ) -> None:
        """The write-ahead commit of one generation.

        ``driver_state`` carries optimizer-specific continuation state
        beyond the population itself (the PSO driver journals particle
        velocities and personal bests here); readers that don't know
        the driver simply ignore it.
        """
        if self._run is None:
            raise RuntimeError(
                "append_generation before begin_run/resume_run"
            )
        doc = {
            "type": "generation",
            "run": self._run,
            "generation": int(record.generation),
            "std": [float(s) for s in record.std],
            "n_failures": int(record.n_failures),
            "population": _group_doc(record.population),
            "evaluated": _group_doc(record.evaluated),
            "rng_state": rng_state,
        }
        if driver_state is not None:
            doc["driver_state"] = driver_state
        self._append(doc)

    def append_evaluation(self, individual: Individual) -> None:
        """The write-ahead commit of one completed evaluation.

        This is the :class:`repro.engine.EvaluationEngine` journal
        hook: steady-state runs have no generation barrier, so each
        completion is durable on its own.
        """
        if self._run is None:
            raise RuntimeError(
                "append_evaluation before begin_run/resume_run"
            )
        self._append(
            {
                "type": "evaluation",
                "run": self._run,
                "genome": [float(g) for g in individual.genome],
                "fitness": (
                    None
                    if individual.fitness is None
                    else [float(f) for f in individual.fitness]
                ),
                "uuid": individual.uuid,
                "metadata": _json_safe(individual.metadata),
            }
        )

    def end_run(self, run: int) -> None:
        self._append({"type": "run_end", "run": int(run)})
        self._run = None

    def end_campaign(self) -> None:
        self._append({"type": "campaign_end", "ts": time.time()})

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
@dataclass
class RunJournalState:
    """Everything the journal knows about one EA run."""

    run: int
    seed: Optional[int] = None
    #: generation docs keyed by generation index (last write wins)
    generations: dict[int, dict[str, Any]] = field(default_factory=dict)
    #: per-evaluation docs in completion order (steady-state runs)
    evaluations: list[dict[str, Any]] = field(default_factory=list)
    complete: bool = False

    def contiguous_generations(self) -> list[dict[str, Any]]:
        """Generation docs 0..k with no gaps (a resume must not jump
        over a missing generation)."""
        out = []
        for g in range(len(self.generations) + 1):
            doc = self.generations.get(g)
            if doc is None:
                break
            out.append(doc)
        return out


@dataclass
class JournalState:
    """Parsed journal contents, tolerant of a torn tail."""

    schema_version: int = JOURNAL_SCHEMA_VERSION
    config_doc: Optional[dict[str, Any]] = None
    problem_spec: dict[str, Any] = field(default_factory=dict)
    runs: dict[int, RunJournalState] = field(default_factory=dict)
    campaign_complete: bool = False
    n_records: int = 0
    n_torn: int = 0

    def run_state(self, run: int) -> RunJournalState:
        if run not in self.runs:
            self.runs[run] = RunJournalState(run=run)
        return self.runs[run]


def read_journal(path: str | Path) -> JournalState:
    """Parse a journal, stopping cleanly at the first torn record.

    A half-written (or garbage) line and everything after it are
    counted in ``n_torn`` and ignored — write-ahead semantics mean
    nothing after a torn record can be trusted.
    """
    state = JournalState()
    path = Path(path)
    if not path.exists():
        return state
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
            if not isinstance(doc, dict) or "type" not in doc:
                raise ValueError("not a journal record")
        except (json.JSONDecodeError, ValueError):
            state.n_torn = len(lines) - i
            break
        state.n_records += 1
        kind = doc["type"]
        if kind == "campaign_begin":
            state.schema_version = int(
                doc.get("schema_version", JOURNAL_SCHEMA_VERSION)
            )
            state.config_doc = dict(doc.get("config") or {})
            state.problem_spec = dict(doc.get("problem_spec") or {})
        elif kind == "run_begin":
            rs = state.run_state(int(doc["run"]))
            rs.seed = int(doc["seed"])
        elif kind == "run_resume":
            state.run_state(int(doc["run"]))
        elif kind == "generation":
            rs = state.run_state(int(doc["run"]))
            rs.generations[int(doc["generation"])] = doc
        elif kind == "evaluation":
            state.run_state(int(doc["run"])).evaluations.append(doc)
        elif kind == "run_end":
            state.run_state(int(doc["run"])).complete = True
        elif kind == "campaign_end":
            state.campaign_complete = True
        # unknown record types from future versions are skipped
    return state


def individual_from_doc(
    doc: dict[str, Any],
    decoder: Any = None,
    problem: Any = None,
) -> RobustIndividual:
    """Rebuild one journaled ``evaluation`` record as an individual."""
    ind = RobustIndividual(doc["genome"], decoder=decoder, problem=problem)
    if doc.get("fitness") is not None:
        ind.fitness = np.asarray(doc["fitness"], dtype=np.float64)
    ind.uuid = doc.get("uuid") or ind.uuid
    ind.metadata = dict(doc.get("metadata") or {})
    if problem is not None:
        ind.n_objectives = problem.n_objectives
    return ind


def record_from_doc(
    doc: dict[str, Any],
    decoder: Any = None,
    problem: Any = None,
) -> GenerationRecord:
    """Rebuild a :class:`GenerationRecord` from a generation doc.

    ``decoder``/``problem`` are attached to the restored individuals
    when the record will seed further evolution; analysis-only
    restores can leave them None.
    """
    return GenerationRecord(
        generation=int(doc["generation"]),
        population=_group_individuals(
            doc["population"], decoder=decoder, problem=problem
        ),
        evaluated=_group_individuals(
            doc["evaluated"], decoder=decoder, problem=problem
        ),
        std=np.asarray(doc["std"], dtype=np.float64),
        n_failures=int(doc["n_failures"]),
    )

"""Durable campaign state: evaluation cache, journal, resume.

The paper's campaigns are ~3500 independent multi-hour trainings on a
machine with known node failures; this package makes that workload
restartable and cheap to iterate on:

* :mod:`repro.store.cache` — a content-addressed
  :class:`EvaluationCache` memoizing finished evaluations on disk,
  keyed by (phenome, dataset identity, evaluator settings), with
  atomic writes and corruption-tolerant reads.  Failed evaluations are
  not memoized unless opted in.
* :mod:`repro.store.journal` — a write-ahead
  :class:`CampaignJournal` appending strict-JSONL generation records
  (genomes, fitnesses, mutation deviations, RNG state) before each
  generation commits, fsynced so a SIGKILL loses at most in-flight
  evaluations.
* :mod:`repro.store.resume` — :func:`resume_campaign` reconstructs
  campaign/EA state from journal + cache and continues evolution at
  the exact generation, bit-identically, re-submitting only uncached
  individuals (``repro-hpo resume <dir>`` on the command line).
"""

from repro.store.cache import (
    CachedFailure,
    CachedProblem,
    CacheEntry,
    EvaluationCache,
    canonical_json,
    dataset_fingerprint,
    evaluation_key,
)
from repro.store.journal import (
    JOURNAL_NAME,
    JOURNAL_SCHEMA_VERSION,
    CampaignJournal,
    JournalState,
    RunJournalState,
    journal_path,
    read_journal,
    record_from_doc,
    restore_rng,
)
from repro.store.resume import (
    campaign_config_from_doc,
    problem_factory_from_spec,
    resume_campaign,
)

__all__ = [
    "CacheEntry",
    "CachedFailure",
    "CachedProblem",
    "EvaluationCache",
    "canonical_json",
    "dataset_fingerprint",
    "evaluation_key",
    "CampaignJournal",
    "JournalState",
    "RunJournalState",
    "JOURNAL_NAME",
    "JOURNAL_SCHEMA_VERSION",
    "journal_path",
    "read_journal",
    "record_from_doc",
    "restore_rng",
    "campaign_config_from_doc",
    "problem_factory_from_spec",
    "resume_campaign",
]

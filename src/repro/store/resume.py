"""Crash-safe campaign resume.

Reconstructs :class:`~repro.hpo.campaign.CampaignResult` state from a
write-ahead journal (plus the evaluation cache for anything that was
in flight when the process died) and *continues evolution*:

* fully journaled runs are restored verbatim;
* the interrupted run restarts at the exact next generation — its
  parents, annealed mutation deviations, and EA RNG bit-generator
  state come from the last committed generation record, so the
  continuation is bit-identical (genomes and fitnesses) to the run
  that was never killed;
* runs that never started are executed fresh with their original
  derived seeds.

Evaluations of the interrupted generation that finished before the
kill were already persisted by the evaluation cache, so replaying that
generation re-submits only uncached individuals.
"""

from __future__ import annotations

import dataclasses
import warnings
from pathlib import Path
from typing import Any, Callable, Optional

import numpy as np

from repro.evo.algorithm import GenerationRecord, ResumeState
from repro.evo.problem import Problem
from repro.evo.pso import PSOResumeState, rebuild_archive
from repro.evo.surrogate import SurrogateResumeState
from repro.exceptions import StoreError
from repro.hpo.campaign import CampaignConfig, CampaignResult
from repro.hpo.driver import (
    run_deepmd_nsga2,
    run_deepmd_pso,
    run_deepmd_steady_state,
    run_deepmd_surrogate,
)
from repro.hpo.representation import DeepMDRepresentation
from repro.obs.trace import get_tracer
from repro.rng import seeds_for_runs
from repro.store.cache import CachedProblem, EvaluationCache
from repro.store.journal import (
    CampaignJournal,
    JournalState,
    _group_individuals,
    journal_path,
    read_journal,
    record_from_doc,
    restore_rng,
)


def campaign_config_from_doc(doc: dict[str, Any]) -> CampaignConfig:
    """Build a config from a journaled/stored doc, tolerating (and
    warning about) unknown fields written by future versions."""
    known = {f.name for f in dataclasses.fields(CampaignConfig)}
    unknown = sorted(set(doc) - known)
    if unknown:
        warnings.warn(
            "ignoring unknown campaign config fields "
            f"{unknown} (written by a newer version?)",
            stacklevel=2,
        )
    return CampaignConfig(**{k: v for k, v in doc.items() if k in known})


def problem_factory_from_spec(
    spec: dict[str, Any],
) -> Callable[[int], Problem]:
    """Rebuild the evaluator from the spec journaled at campaign start.

    Mirrors the ``repro-hpo campaign`` backend wiring: the surrogate is
    rebuilt per run seed; the real backend regenerates its (seeded,
    hence identical) dataset and shares one problem across runs.  A
    journaled ``objectives`` selection is re-applied via
    :func:`repro.hpo.objectives.with_objectives`, so resumed runs score
    (and cache-fingerprint) candidates identically to the original.
    """
    from repro.hpo.objectives import with_objectives

    objectives = spec.get("objectives")
    backend = spec.get("backend")
    if backend == "surrogate":
        from repro.hpo.landscape import SurrogateDeepMDProblem

        return lambda seed: with_objectives(
            SurrogateDeepMDProblem(seed=seed), objectives
        )
    if backend == "real":
        from repro.hpo.evaluator import DeepMDProblem, EvaluatorSettings
        from repro.md.dataset import generate_dataset

        dataset = generate_dataset(
            n_frames=int(spec["frames"]), rng=int(spec["seed"])
        )
        settings = EvaluatorSettings(numb_steps=int(spec["steps"]))
        shared = with_objectives(
            DeepMDProblem(dataset, settings=settings), objectives
        )
        return lambda seed: shared
    raise StoreError(
        f"cannot rebuild a problem from spec {spec!r}; pass "
        "problem_factory= explicitly"
    )


def _restored_run(
    run_docs: list[dict[str, Any]],
    decoder: Any = None,
    problem: Any = None,
) -> list[GenerationRecord]:
    return [
        record_from_doc(doc, decoder=decoder, problem=problem)
        for doc in run_docs
    ]


def resume_campaign(
    directory: str | Path,
    problem_factory: Optional[Callable[[int], Problem]] = None,
    client: Any = None,
    tracer: Any = None,
    cache: Optional[EvaluationCache] = None,
    callback: Any = None,
) -> CampaignResult:
    """Continue a journaled campaign from ``directory``.

    ``problem_factory`` defaults to rebuilding the evaluator from the
    journaled problem spec; ``cache`` wraps each run's problem in a
    :class:`~repro.store.cache.CachedProblem` so already-finished
    evaluations of the interrupted generation are served from disk.
    The journal keeps being written, so a resumed campaign can itself
    be killed and resumed again.

    Steady-state campaigns (``config.mode == "steady-state"``) resume
    by *cache-driven replay*: the interrupted run re-executes with its
    original seed, and every evaluation that finished before the kill
    — journaled per completion and persisted in the cache — is served
    without retraining.  With the default inline execution the replay
    is deterministic; with a client, completion order (and hence the
    bred genomes past the interruption point) may differ, but finished
    work is still never re-trained.
    """
    directory = Path(directory)
    jpath = journal_path(directory)
    if not jpath.exists():
        raise StoreError(f"no campaign journal at {jpath}")
    state: JournalState = read_journal(jpath)
    if state.config_doc is None:
        raise StoreError(
            f"journal {jpath} has no readable campaign_begin record "
            "(torn at the very start?)"
        )
    if state.n_torn:
        warnings.warn(
            f"journal {jpath} has a torn tail "
            f"({state.n_torn} unreadable line(s) dropped); resuming "
            "from the last whole generation",
            stacklevel=2,
        )
    config = campaign_config_from_doc(state.config_doc)
    if problem_factory is None:
        problem_factory = problem_factory_from_spec(state.problem_spec)
    trc = tracer if tracer is not None else get_tracer()
    derived_seeds = seeds_for_runs(config.base_seed, config.n_runs)
    result = CampaignResult(config=config)
    journal = CampaignJournal(
        jpath, problem_spec=state.problem_spec, mode="a"
    )
    with trc.span("store.resume", directory=str(directory)) as span:
        n_restored = n_resumed = n_fresh = 0
        for run_index in range(config.n_runs):
            run_state = state.runs.get(run_index)
            seed = (
                run_state.seed
                if run_state is not None and run_state.seed is not None
                else derived_seeds[run_index]
            )
            docs = (
                run_state.contiguous_generations()
                if run_state is not None
                else []
            )
            complete = (
                run_state is not None and run_state.complete
            ) or len(docs) == config.generations + 1
            if complete and docs:
                # fully journaled — including runs the hypervolume
                # stopper ended before the generation budget: restore
                # without a problem attached (these individuals are
                # analysis data, not parents)
                result.runs.append(_restored_run(docs))
                n_restored += 1
                continue
            problem = problem_factory(seed)
            if cache is not None and getattr(problem, "cache", None) is None:
                problem = CachedProblem(problem, cache)
            cb = (
                (lambda rec, ri=run_index: callback(ri, rec))
                if callback is not None
                else None
            )
            if config.mode == "steady-state":
                # cache-driven replay: same seed, finished evaluations
                # come back as cache hits, unfinished ones train fresh
                n_prior = (
                    len(run_state.evaluations)
                    if run_state is not None
                    else 0
                )
                if n_prior:
                    journal.resume_run(run_index, n_prior)
                    n_resumed += 1
                else:
                    journal.begin_run(run_index, int(seed))
                    n_fresh += 1
                with trc.span(
                    "campaign.run",
                    run=run_index,
                    seed=int(seed),
                    mode="steady-state",
                    replayed_evaluations=n_prior,
                ):
                    records = run_deepmd_steady_state(
                        problem=problem,
                        settings=config.nsga2_settings(),
                        client=client,
                        rng=seed,
                        callback=cb,
                        tracer=trc,
                        journal=journal,
                    )
                result.runs.append(records)
                journal.end_run(run_index)
                continue
            decoder = DeepMDRepresentation.decoder()
            runner = {
                "generational": run_deepmd_nsga2,
                "pso": run_deepmd_pso,
                "surrogate": run_deepmd_surrogate,
            }[config.mode]
            if not docs:
                # never started (or nothing committed): run fresh
                journal.begin_run(run_index, int(seed))
                with trc.span(
                    "campaign.run", run=run_index, seed=int(seed)
                ):
                    records = runner(
                        problem=problem,
                        settings=config.nsga2_settings(),
                        client=client,
                        rng=seed,
                        callback=cb,
                        tracer=trc,
                        journal=journal,
                    )
                result.runs.append(records)
                journal.end_run(run_index)
                n_fresh += 1
                continue
            # interrupted mid-run: restore the prefix, continue after it
            restored = _restored_run(docs, decoder=decoder, problem=problem)
            last_doc = docs[-1]
            if not last_doc.get("rng_state"):
                raise StoreError(
                    f"run {run_index} generation "
                    f"{last_doc['generation']} journaled no RNG state; "
                    "cannot continue deterministically"
                )
            restored_rng = restore_rng(last_doc["rng_state"])
            resume_state: Any
            if config.mode == "pso":
                driver_state = last_doc.get("driver_state") or {}
                if (
                    "velocities" not in driver_state
                    or "pbest" not in driver_state
                ):
                    raise StoreError(
                        f"run {run_index} generation "
                        f"{last_doc['generation']} journaled no swarm "
                        "driver_state; cannot resume a PSO run "
                        "deterministically"
                    )
                resume_state = PSOResumeState(
                    positions=np.asarray(
                        [ind.genome for ind in restored[-1].evaluated],
                        dtype=np.float64,
                    ),
                    velocities=np.asarray(
                        driver_state["velocities"], dtype=np.float64
                    ),
                    pbest=_group_individuals(
                        driver_state["pbest"],
                        decoder=decoder,
                        problem=problem,
                    ),
                    population=list(restored[-1].population),
                    archive=rebuild_archive(
                        restored, 2 * config.pop_size
                    ),
                    generation=restored[-1].generation,
                    rng=restored_rng,
                )
            elif config.mode == "surrogate":
                resume_state = SurrogateResumeState(
                    history=[
                        ind
                        for rec in restored
                        for ind in rec.evaluated
                    ],
                    population=list(restored[-1].population),
                    generation=restored[-1].generation,
                    rng=restored_rng,
                )
            else:
                resume_state = ResumeState(
                    parents=list(restored[-1].population),
                    generation=restored[-1].generation,
                    std=restored[-1].std,
                    rng=restored_rng,
                )
            journal.resume_run(run_index, resume_state.generation)
            with trc.span(
                "campaign.run",
                run=run_index,
                seed=int(seed),
                resumed_from=resume_state.generation,
            ):
                new_records = runner(
                    problem=problem,
                    settings=config.nsga2_settings(),
                    client=client,
                    rng=seed,
                    callback=cb,
                    tracer=trc,
                    journal=journal,
                    resume_from=resume_state,
                )
            result.runs.append(restored + new_records)
            journal.end_run(run_index)
            n_resumed += 1
        journal.end_campaign()
        span.tag(
            runs_restored=n_restored,
            runs_resumed=n_resumed,
            runs_fresh=n_fresh,
            torn_records=state.n_torn,
        )
    journal.close()
    return result

"""The unified evaluation engine.

Every optimizer in this package — the paper's generational NSGA-II, the
asynchronous steady-state variant of §2.2.5, the grid/random/weighted-sum
baselines, sensitivity screening, and the NAS extension — ultimately does
the same expensive thing: turn a candidate's phenome into a fitness
vector by training a model.  Related HPO-for-MLIP work swaps the
*optimizer* while keeping that evaluation loop fixed (PSO in
arXiv:2101.00049, ACE tuning in arXiv:2408.00656); this package makes
the seam explicit.

:class:`EvaluationEngine` owns the full lifecycle of one candidate
evaluation:

* genome deduplication (batch- or run-scoped);
* cache probing (any problem exposing ``cache``/``cache_key``, e.g. a
  :class:`repro.store.cache.CachedProblem`) so a hit never crosses the
  execution backend or occupies a worker;
* dispatch through a small :class:`ExecutionBackend` protocol —
  :class:`InlineBackend` for in-process evaluation,
  :class:`ClientBackend` for any ``submit``/futures client (our
  :class:`repro.distributed.Client` or a real Dask client), or
  :class:`ProcessPoolBackend` for real process-level parallelism on
  one machine;
* per-evaluation soft timeouts;
* the §2.2.4 exception→``MAXINT`` failure policy, in exactly one place;
* tracer spans, metrics counters, and per-evaluation journal hooks;
* :class:`EngineStats` so drivers report cache hits and duplicate
  genomes distinctly from fresh trainings.

Search strategies stay pure control flow on top: they breed candidates
and rank results, and never touch ``Problem.evaluate`` directly (a
static-analysis guard test enforces this).
"""

from repro.engine.backends import (
    AggregateFuture,
    ClientBackend,
    ExecutionBackend,
    InlineBackend,
    ResolvedFuture,
    as_backend,
    evaluate_individual,
    evaluate_individuals_batch,
    evaluate_stream,
)
from repro.engine.core import EngineStats, EvaluationEngine
from repro.engine.fleet import ElasticBackend, FleetFuture
from repro.engine.invoke import (
    call_problem,
    call_problem_batch,
    failure_fitness,
)
from repro.engine.pool import ProcessFuture, ProcessPoolBackend

__all__ = [
    "AggregateFuture",
    "ClientBackend",
    "ElasticBackend",
    "EngineStats",
    "EvaluationEngine",
    "ExecutionBackend",
    "FleetFuture",
    "InlineBackend",
    "ProcessFuture",
    "ProcessPoolBackend",
    "ResolvedFuture",
    "as_backend",
    "call_problem",
    "call_problem_batch",
    "evaluate_individual",
    "evaluate_individuals_batch",
    "evaluate_stream",
    "failure_fitness",
]

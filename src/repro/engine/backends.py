"""Execution backends: where an evaluation actually runs.

The engine speaks one tiny protocol — ``submit(individual) -> future``
with ``done()``/``result()`` semantics — so the same driver code runs
candidates in-process, on the reproduction's thread cluster, or on a
real Dask deployment (the paper's §2.2.5 setup) without change.

Backends may additionally answer ``submit_batch(individuals)`` with one
future resolving to a list of per-slot outcomes; the default shape
(:class:`AggregateFuture` over per-individual ``submit``) keeps every
backend batch-capable, while vectorized/pooled backends override it to
move whole populations at once.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Protocol, Sequence, runtime_checkable

from repro.engine.invoke import call_problem_batch


def evaluate_individual(individual: Any) -> Any:
    """Evaluate one individual in place and return it.

    Module-level (hence picklable) so distributed backends can ship it
    to workers.  Robust individuals convert their own exceptions to
    ``MAXINT`` fitness; plain individuals let them propagate to the
    engine's failure policy.
    """
    return individual.evaluate()


def evaluate_stream(stream: Iterable[Any]) -> Iterator[Any]:
    """Evaluate a stream of individuals one at a time, lazily.

    The sanctioned per-individual evaluation loop for operator
    pipelines (``ops.evaluate`` delegates here); everything else goes
    through the engine's batch path.
    """
    for individual in stream:
        yield evaluate_individual(individual)


def evaluate_individuals_batch(individuals: Sequence[Any]) -> list[Any]:
    """Evaluate a chunk of individuals through their problems' batch
    entry points.

    Returns one slot per individual, in order: a ``(fitness,
    metadata)`` pair or the exception that slot raised (including
    decode errors) — per-slot isolation mirrors the scalar path, where
    one individual's failure never poisons its neighbours.  Individuals
    are grouped by problem identity so a homogeneous population (the
    common case: one problem per run) becomes a single
    :func:`call_problem_batch` call.
    """
    slots: list[Any] = [None] * len(individuals)
    groups: dict[int, tuple[Any, list[int], list[Any], list[Any]]] = {}
    for i, individual in enumerate(individuals):
        try:
            phenome = individual.decode()
        except Exception as exc:  # noqa: BLE001 - isolated per slot
            slots[i] = exc
            continue
        problem = individual.problem
        entry = groups.get(id(problem))
        if entry is None:
            entry = groups[id(problem)] = (problem, [], [], [])
        entry[1].append(i)
        entry[2].append(phenome)
        entry[3].append(getattr(individual, "uuid", None))
    for problem, indices, phenomes, uuids in groups.values():
        outcomes = call_problem_batch(problem, phenomes, uuids=uuids)
        for i, outcome in zip(indices, outcomes):
            slots[i] = outcome
    return slots


class AggregateFuture:
    """A future over many per-individual futures.

    ``done()`` when all members are; ``result()`` yields one slot per
    member — the member's result, or the exception it raised — so chunk
    consumers see the same per-slot isolation a batch backend provides
    natively.
    """

    def __init__(self, futures: Sequence[Any]) -> None:
        self._futures = list(futures)

    def done(self) -> bool:
        return all(f.done() for f in self._futures)

    def result(self, timeout: Optional[float] = None) -> list[Any]:
        slots: list[Any] = []
        for future in self._futures:
            try:
                slots.append(future.result(timeout))
            except Exception as exc:  # noqa: BLE001 - isolated per slot
                slots.append(exc)
        return slots

    def cancel(self) -> None:
        for future in self._futures:
            cancel = getattr(future, "cancel", None)
            if cancel is not None:
                cancel()


class FutureLike(Protocol):
    """The slice of future semantics the engine consumes."""

    def done(self) -> bool: ...

    def result(self, timeout: Optional[float] = None) -> Any: ...


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can run one individual's evaluation."""

    #: marker so :func:`as_backend` passes backend instances through
    is_execution_backend: bool

    def submit(self, individual: Any) -> FutureLike: ...

    def submit_batch(self, individuals: Sequence[Any]) -> FutureLike:
        """Submit a chunk; the future resolves to one slot per
        individual (result or exception).  Default shape: an
        :class:`AggregateFuture` over per-individual ``submit``."""
        ...

    def on_cache_hit(self, individual: Any) -> None:
        """Told when the engine served ``individual`` from the cache
        instead of submitting it (for backend-side accounting)."""


class ResolvedFuture:
    """A future for work that finished at submit time."""

    def __init__(
        self,
        result: Any = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        self._result = result
        self._exception = exception

    def done(self) -> bool:
        return True

    def result(self, timeout: Optional[float] = None) -> Any:
        if self._exception is not None:
            raise self._exception
        return self._result


class InlineBackend:
    """Evaluate synchronously in the calling process.

    ``submit`` runs the evaluation eagerly and returns an
    already-resolved future, so batch and streaming engine modes behave
    identically with or without a cluster.
    """

    is_execution_backend = True

    def submit(self, individual: Any) -> ResolvedFuture:
        try:
            return ResolvedFuture(result=evaluate_individual(individual))
        except Exception as exc:  # noqa: BLE001 - engine owns the policy
            return ResolvedFuture(exception=exc)

    def submit_batch(self, individuals: Sequence[Any]) -> ResolvedFuture:
        return ResolvedFuture(
            result=evaluate_individuals_batch(individuals)
        )

    def on_cache_hit(self, individual: Any) -> None:
        pass


class ClientBackend:
    """Fan evaluations out through a ``submit``-style client.

    Works with :class:`repro.distributed.Client` and anything
    Dask-shaped.  Cache hits resolved by the engine are reported to the
    client's scheduler (when it exposes ``task_cached``) so cluster
    accounting still shows the skipped tasks.
    """

    is_execution_backend = True

    def __init__(self, client: Any) -> None:
        self.client = client

    def submit(self, individual: Any) -> FutureLike:
        return self.client.submit(evaluate_individual, individual)

    def submit_batch(self, individuals: Sequence[Any]) -> AggregateFuture:
        return AggregateFuture(
            [self.submit(ind) for ind in individuals]
        )

    def on_cache_hit(self, individual: Any) -> None:
        scheduler = getattr(self.client, "scheduler", None)
        task_cached = getattr(scheduler, "task_cached", None)
        if task_cached is not None:
            task_cached(f"cached-{getattr(individual, 'uuid', '?')}")


def as_backend(client: Any = None) -> Any:
    """Coerce ``None`` / a client / a backend into a backend."""
    if client is None:
        return InlineBackend()
    if getattr(client, "is_execution_backend", False):
        return client
    if callable(getattr(client, "submit", None)):
        return ClientBackend(client)
    raise TypeError(
        f"{type(client).__name__} is neither an ExecutionBackend nor a "
        "submit()-style client"
    )

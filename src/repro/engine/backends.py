"""Execution backends: where an evaluation actually runs.

The engine speaks one tiny protocol — ``submit(individual) -> future``
with ``done()``/``result()`` semantics — so the same driver code runs
candidates in-process, on the reproduction's thread cluster, or on a
real Dask deployment (the paper's §2.2.5 setup) without change.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable


def evaluate_individual(individual: Any) -> Any:
    """Evaluate one individual in place and return it.

    Module-level (hence picklable) so distributed backends can ship it
    to workers.  Robust individuals convert their own exceptions to
    ``MAXINT`` fitness; plain individuals let them propagate to the
    engine's failure policy.
    """
    return individual.evaluate()


class FutureLike(Protocol):
    """The slice of future semantics the engine consumes."""

    def done(self) -> bool: ...

    def result(self, timeout: Optional[float] = None) -> Any: ...


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can run one individual's evaluation."""

    #: marker so :func:`as_backend` passes backend instances through
    is_execution_backend: bool

    def submit(self, individual: Any) -> FutureLike: ...

    def on_cache_hit(self, individual: Any) -> None:
        """Told when the engine served ``individual`` from the cache
        instead of submitting it (for backend-side accounting)."""


class ResolvedFuture:
    """A future for work that finished at submit time."""

    def __init__(
        self,
        result: Any = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        self._result = result
        self._exception = exception

    def done(self) -> bool:
        return True

    def result(self, timeout: Optional[float] = None) -> Any:
        if self._exception is not None:
            raise self._exception
        return self._result


class InlineBackend:
    """Evaluate synchronously in the calling process.

    ``submit`` runs the evaluation eagerly and returns an
    already-resolved future, so batch and streaming engine modes behave
    identically with or without a cluster.
    """

    is_execution_backend = True

    def submit(self, individual: Any) -> ResolvedFuture:
        try:
            return ResolvedFuture(result=evaluate_individual(individual))
        except Exception as exc:  # noqa: BLE001 - engine owns the policy
            return ResolvedFuture(exception=exc)

    def on_cache_hit(self, individual: Any) -> None:
        pass


class ClientBackend:
    """Fan evaluations out through a ``submit``-style client.

    Works with :class:`repro.distributed.Client` and anything
    Dask-shaped.  Cache hits resolved by the engine are reported to the
    client's scheduler (when it exposes ``task_cached``) so cluster
    accounting still shows the skipped tasks.
    """

    is_execution_backend = True

    def __init__(self, client: Any) -> None:
        self.client = client

    def submit(self, individual: Any) -> FutureLike:
        return self.client.submit(evaluate_individual, individual)

    def on_cache_hit(self, individual: Any) -> None:
        scheduler = getattr(self.client, "scheduler", None)
        task_cached = getattr(scheduler, "task_cached", None)
        if task_cached is not None:
            task_cached(f"cached-{getattr(individual, 'uuid', '?')}")


def as_backend(client: Any = None) -> Any:
    """Coerce ``None`` / a client / a backend into a backend."""
    if client is None:
        return InlineBackend()
    if getattr(client, "is_execution_backend", False):
        return client
    if callable(getattr(client, "submit", None)):
        return ClientBackend(client)
    raise TypeError(
        f"{type(client).__name__} is neither an ExecutionBackend nor a "
        "submit()-style client"
    )

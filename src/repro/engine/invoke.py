"""The sanctioned entry points into a problem's evaluation.

Everything outside :mod:`repro.engine` (and the robust individual's own
exception fallback) must reach ``Problem.evaluate`` /
``evaluate_with_metadata`` through these helpers, and must build the
§2.2.4 failure fitness through :func:`failure_fitness` — the AST guard
in ``tests/test_engine.py`` keeps it that way, so the failure policy
cannot quietly fork again.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.exceptions import MAXINT

#: one slot of a batch call: ``(fitness, metadata)`` or the exception
#: that phenome raised
BatchOutcome = Any


def failure_fitness(n_objectives: int) -> np.ndarray:
    """The all-``MAXINT`` fitness a failed evaluation receives.

    Large, finite, and totally ordered, so NSGA-II sorting stays well
    defined (the paper's fix for LEAP's NaN-on-failure default).
    """
    return np.full(int(n_objectives), MAXINT, dtype=np.float64)


def call_problem(
    problem: Any, phenome: Any, uuid: Optional[str] = None
) -> tuple[np.ndarray, dict[str, Any]]:
    """Dispatch one evaluation, normalizing the two problem interfaces.

    Problems exposing ``evaluate_with_metadata`` (returning a
    ``(fitness, metadata)`` pair) are preferred — the metadata carries
    the runtime the paper tracks; plain ``evaluate`` problems get an
    empty metadata dict.  Exceptions propagate to the caller, which
    owns the failure policy.
    """
    if hasattr(problem, "evaluate_with_metadata"):
        fitness, metadata = problem.evaluate_with_metadata(
            phenome, uuid=uuid
        )
        return (
            np.atleast_1d(np.asarray(fitness, dtype=np.float64)),
            dict(metadata),
        )
    fitness = problem.evaluate(phenome)
    return np.atleast_1d(np.asarray(fitness, dtype=np.float64)), {}


def call_problem_batch(
    problem: Any,
    phenomes: Sequence[Any],
    uuids: Optional[Sequence[Optional[str]]] = None,
) -> list[BatchOutcome]:
    """Dispatch a batch of evaluations with per-phenome failure capture.

    Returns one outcome per phenome, **in order**: a normalized
    ``(fitness, metadata)`` pair, or the exception that phenome raised.
    A failing phenome never aborts its batch — the caller (the engine)
    applies the MAXINT failure policy per genome.  Problems exposing
    ``evaluate_batch_with_metadata`` answer the whole batch at once
    (vectorized problems in one NumPy sweep); everything else falls
    back to per-phenome :func:`call_problem`.
    """
    if uuids is None:
        uuids = [None] * len(phenomes)
    if hasattr(problem, "evaluate_batch_with_metadata"):
        outcomes: list[BatchOutcome] = []
        raw = problem.evaluate_batch_with_metadata(phenomes, uuids=uuids)
        for slot in raw:
            if isinstance(slot, BaseException):
                outcomes.append(slot)
            else:
                fitness, metadata = slot
                outcomes.append(
                    (
                        np.atleast_1d(
                            np.asarray(fitness, dtype=np.float64)
                        ),
                        dict(metadata),
                    )
                )
        return outcomes
    outcomes = []
    for phenome, uuid in zip(phenomes, uuids):
        try:
            outcomes.append(call_problem(problem, phenome, uuid=uuid))
        except Exception as exc:  # noqa: BLE001 - isolated per slot
            outcomes.append(exc)
    return outcomes

"""The sanctioned entry points into a problem's evaluation.

Everything outside :mod:`repro.engine` (and the robust individual's own
exception fallback) must reach ``Problem.evaluate`` /
``evaluate_with_metadata`` through these helpers, and must build the
§2.2.4 failure fitness through :func:`failure_fitness` — the AST guard
in ``tests/test_engine.py`` keeps it that way, so the failure policy
cannot quietly fork again.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.exceptions import MAXINT


def failure_fitness(n_objectives: int) -> np.ndarray:
    """The all-``MAXINT`` fitness a failed evaluation receives.

    Large, finite, and totally ordered, so NSGA-II sorting stays well
    defined (the paper's fix for LEAP's NaN-on-failure default).
    """
    return np.full(int(n_objectives), MAXINT, dtype=np.float64)


def call_problem(
    problem: Any, phenome: Any, uuid: Optional[str] = None
) -> tuple[np.ndarray, dict[str, Any]]:
    """Dispatch one evaluation, normalizing the two problem interfaces.

    Problems exposing ``evaluate_with_metadata`` (returning a
    ``(fitness, metadata)`` pair) are preferred — the metadata carries
    the runtime the paper tracks; plain ``evaluate`` problems get an
    empty metadata dict.  Exceptions propagate to the caller, which
    owns the failure policy.
    """
    if hasattr(problem, "evaluate_with_metadata"):
        fitness, metadata = problem.evaluate_with_metadata(
            phenome, uuid=uuid
        )
        return (
            np.atleast_1d(np.asarray(fitness, dtype=np.float64)),
            dict(metadata),
        )
    fitness = problem.evaluate(phenome)
    return np.atleast_1d(np.asarray(fitness, dtype=np.float64)), {}

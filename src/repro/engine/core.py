"""The evaluation engine: one lifecycle for every candidate evaluation.

One paper-scale campaign is ~3500 trainings of up to 2 GPU-hours each,
so everything that avoids or survives a training — deduplication, the
evaluation cache, the MAXINT failure policy, timeouts, journaling —
must behave identically no matter which optimizer asked for the
evaluation.  Before this layer existed, the generational driver, the
steady-state driver, and each baseline carried their own copy of that
logic (and only the generational driver had all of it).  The engine is
the single copy.

Three consumption styles, one bookkeeping path:

* **batch (scalar dispatch)** — :meth:`EvaluationEngine.evaluate`
  submits a pool of offspring one task at a time and blocks until all
  of them are resolved (the generational barrier of §2.2.3 and the
  baselines' sweeps);
* **batch (chunked dispatch)** — :meth:`EvaluationEngine.evaluate_batch`
  partitions a population into cache-hits / dedup-duplicates / fresh
  candidates and ships the fresh ones to the backend as chunked batch
  tasks (one vectorized problem call per chunk), journaling and
  accounting per evaluation exactly as the scalar path does;
* **streaming** — :meth:`EvaluationEngine.submit` plus
  :meth:`EvaluationEngine.wait_any` resolve candidates as they finish
  (the §2.2.5 steady-state scheme: breed on completion, no barrier).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Any, Iterable, Optional

import numpy as np

from repro.engine.backends import (
    AggregateFuture,
    as_backend,
    evaluate_individual,
)
from repro.engine.invoke import failure_fitness
from repro.exceptions import TrainingTimeoutError
from repro.injection import FaultInjector, get_injector
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import get_tracer


@dataclass
class EngineStats:
    """What the engine did, with cache/dedup separated from training.

    ``fresh`` counts evaluations that actually executed (the trainings
    a cluster would bill for); ``cache_hits`` and ``dedup_hits`` are
    candidates resolved without executing anything.  Drivers report
    these instead of conflating every completion with a training.
    """

    submitted: int = 0
    completed: int = 0
    fresh: int = 0
    cache_hits: int = 0
    dedup_hits: int = 0
    failures: int = 0
    timeouts: int = 0
    wall_time: float = 0.0

    def copy(self) -> "EngineStats":
        return EngineStats(**asdict(self))

    def delta(self, since: "EngineStats") -> "EngineStats":
        """Stats accumulated after the ``since`` snapshot (for drivers
        sharing one engine across runs or generations)."""
        return EngineStats(
            submitted=self.submitted - since.submitted,
            completed=self.completed - since.completed,
            fresh=self.fresh - since.fresh,
            cache_hits=self.cache_hits - since.cache_hits,
            dedup_hits=self.dedup_hits - since.dedup_hits,
            failures=self.failures - since.failures,
            timeouts=self.timeouts - since.timeouts,
            wall_time=self.wall_time - since.wall_time,
        )

    def as_dict(self) -> dict[str, float]:
        return asdict(self)


class _InFlight:
    """One submitted representative plus its duplicate followers."""

    __slots__ = (
        "future",
        "individual",
        "followers",
        "genome_key",
        "since",
        "forced_timeout",
        "resolved",
    )

    def __init__(
        self, future: Any, individual: Any, genome_key: bytes, since: float
    ) -> None:
        self.future = future
        self.individual = individual
        self.followers: list[Any] = []
        self.genome_key = genome_key
        self.since = since
        #: chaos: treat this dispatch as overrunning its wall-clock
        #: budget even if the backend finishes
        self.forced_timeout = False
        #: set once this entry finished (only chunk members resolve
        #: individually ahead of their container)
        self.resolved = False


class _InFlightChunk:
    """One dispatched chunk: a shared future over ordered members.

    The future resolves to one slot per member (result or exception);
    members keep their own :class:`_InFlight` entries so dedup
    followers, forced timeouts, and per-evaluation accounting behave
    exactly as in the scalar path.
    """

    __slots__ = ("future", "members", "since")

    def __init__(
        self, future: Any, members: list[_InFlight], since: float
    ) -> None:
        self.future = future
        self.members = members
        self.since = since


class EvaluationEngine:
    """Submit → dedup → cache → execute → failure-policy → journal.

    Parameters
    ----------
    client:
        ``None`` (inline evaluation), a ``submit``-style client, or an
        :class:`~repro.engine.backends.ExecutionBackend`.
    dedup:
        Collapse genome-identical candidates onto one execution; the
        duplicates receive a copy of the representative's result plus a
        ``dedup_of`` marker.
    dedup_scope:
        ``"batch"`` forgets resolved genomes at each :meth:`evaluate`
        call (the generational driver's within-generation semantics —
        required for bit-identical resume); ``"run"`` remembers them for
        the engine's lifetime (the steady-state and baseline setting).
    timeout:
        Soft per-evaluation wall-clock limit in seconds; an overrunning
        candidate is failed with :class:`TrainingTimeoutError` (the
        engine-side analogue of the paper's 2-hour training cap).
    journal:
        Duck-typed :class:`repro.store.journal.CampaignJournal`; every
        completed candidate is appended via ``append_evaluation`` when
        the journal provides it.
    """

    def __init__(
        self,
        client: Any = None,
        dedup: bool = True,
        dedup_scope: str = "batch",
        timeout: Optional[float] = None,
        journal: Any = None,
        tracer: Any = None,
        metrics: Optional[MetricsRegistry] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        if dedup_scope not in ("batch", "run"):
            raise ValueError("dedup_scope must be 'batch' or 'run'")
        self.backend = as_backend(client)
        #: chaos seam (None outside chaos runs): consulted once per
        #: backend dispatch for injected crashes/timeouts
        self._injector = (
            fault_injector if fault_injector is not None else get_injector()
        )
        self.dedup = bool(dedup)
        self.dedup_scope = dedup_scope
        self.timeout = timeout
        self.journal = journal
        self.tracer = tracer if tracer is not None else get_tracer()
        registry = metrics if metrics is not None else get_registry()
        self._c_submitted = registry.counter("engine_submitted_total")
        self._c_completed = registry.counter("engine_completed_total")
        self._c_fresh = registry.counter("engine_fresh_evaluations_total")
        self._c_cache = registry.counter("engine_cache_hits_total")
        self._c_dedup = registry.counter("engine_dedup_hits_total")
        self._c_failures = registry.counter("engine_failures_total")
        #: sampled on every submit/pump transition for the live plane;
        #: labeled per campaign so concurrent campaigns sharing one
        #: process (the service) don't clobber each other's levels
        from repro.obs.live import current_campaign_id

        cid = current_campaign_id()
        gauge_labels = {"campaign_id": str(cid)} if cid is not None else None
        self._g_inflight = registry.gauge(
            "engine_inflight", labels=gauge_labels
        )
        self._g_ready = registry.gauge("engine_ready", labels=gauge_labels)
        #: batch-efficiency surfaces: chunk sizes actually dispatched,
        #: and the campaign-wide completion rate
        self._h_batch_size = registry.histogram(
            "engine_batch_size", labels=gauge_labels
        )
        self._g_evals_per_sec = registry.gauge(
            "engine_evals_per_sec", labels=gauge_labels
        )
        self.stats = EngineStats()
        self._inflight: list[Any] = []
        self._ready: list[Any] = []
        self._results: dict[bytes, Any] = {}
        self._started_at: Optional[float] = None
        self._batches = 0
        self._last_batch_size = 0

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, individual: Any) -> None:
        """Enqueue one candidate; it resolves via :meth:`wait_any` /
        :meth:`evaluate` (duplicates and cache hits resolve at once)."""
        now = time.monotonic()
        if self._started_at is None:
            self._started_at = now
        self.stats.submitted += 1
        self._c_submitted.inc()
        genome_key = self._genome_key(individual)
        if self.dedup and genome_key is not None:
            done = self._results.get(genome_key)
            if done is not None:
                self._resolve_duplicate(individual, done)
                return
            for pending in self._pending_entries():
                if pending.genome_key == genome_key:
                    pending.followers.append(individual)
                    return
        if self._cache_probe(individual):
            self._finish(individual, genome_key, cache_fast_path=True)
            return
        fault = (
            None
            if self._injector is None
            else self._injector.evaluation_fault()
        )
        if fault is not None and fault.exception is not None:
            # injected transient evaluator crash: the candidate never
            # reaches the backend and fails under the MAXINT policy
            self._apply_failure(individual, fault.exception)
            self._finish(individual, genome_key)
            return
        pending = _InFlight(
            self.backend.submit(individual),
            individual,
            genome_key,
            now,
        )
        if fault is not None and fault.timeout:
            pending.forced_timeout = True
        self._inflight.append(pending)
        self._sample_gauges()

    def evaluate(self, individuals: Iterable[Any]) -> list[Any]:
        """Batch mode: resolve every candidate, preserving order.

        Individuals are evaluated in place and the input list returned,
        so this drops into pipeline sinks directly.
        """
        batch = list(individuals)
        if self.dedup_scope == "batch":
            self._results.clear()
        before = self.stats.copy()
        with self.tracer.span("engine.evaluate", n=len(batch)) as span:
            for individual in batch:
                self.submit(individual)
            self.drain()
            used = self.stats.delta(before)
            span.tag(
                fresh=used.fresh,
                cache_hits=used.cache_hits,
                dedup_hits=used.dedup_hits,
                failures=used.failures,
            )
        self._ready.clear()
        return batch

    # ------------------------------------------------------------------
    # chunked batch path
    # ------------------------------------------------------------------
    def submit_batch(
        self,
        individuals: Iterable[Any],
        chunk_size: Optional[int] = None,
        new_batch: bool = False,
    ) -> list[Any]:
        """Enqueue a population as chunked batch tasks.

        The population is partitioned **in submission order** into
        already-resolved candidates (dedup duplicates, cache hits,
        injected failures — each finishes immediately, exactly where
        the scalar loop would finish it) and fresh candidates, which
        are dispatched to the backend in chunks of ``chunk_size``
        (default: the backend's ``batch_chunk_hint``, else one chunk).
        Per-candidate accounting, chaos injection, and journaling are
        byte-for-byte the scalar path's.
        """
        batch = list(individuals)
        if new_batch and self.dedup_scope == "batch":
            self._results.clear()
        now = time.monotonic()
        if self._started_at is None:
            self._started_at = now
        fresh: list[_InFlight] = []
        fresh_by_key: dict[bytes, _InFlight] = {}
        pending_by_key: dict[bytes, _InFlight] = {}
        if self.dedup:
            for pending in self._pending_entries():
                if pending.genome_key is not None:
                    pending_by_key.setdefault(pending.genome_key, pending)
        for individual in batch:
            self.stats.submitted += 1
            self._c_submitted.inc()
            genome_key = self._genome_key(individual)
            if self.dedup and genome_key is not None:
                done = self._results.get(genome_key)
                if done is not None:
                    self._resolve_duplicate(individual, done)
                    continue
                rep = pending_by_key.get(genome_key) or fresh_by_key.get(
                    genome_key
                )
                if rep is not None:
                    rep.followers.append(individual)
                    continue
            if self._cache_probe(individual):
                self._finish(individual, genome_key, cache_fast_path=True)
                continue
            fault = (
                None
                if self._injector is None
                else self._injector.evaluation_fault()
            )
            if fault is not None and fault.exception is not None:
                self._apply_failure(individual, fault.exception)
                self._finish(individual, genome_key)
                continue
            member = _InFlight(None, individual, genome_key, now)
            if fault is not None and fault.timeout:
                member.forced_timeout = True
            fresh.append(member)
            if genome_key is not None:
                fresh_by_key.setdefault(genome_key, member)
        if fresh:
            size = self._resolve_chunk_size(len(fresh), chunk_size)
            for start in range(0, len(fresh), size):
                members = fresh[start : start + size]
                future = self._dispatch_chunk(
                    [m.individual for m in members]
                )
                self._inflight.append(_InFlightChunk(future, members, now))
                self._batches += 1
                self._last_batch_size = len(members)
                self._h_batch_size.observe(len(members))
        self._sample_gauges()
        return batch

    def evaluate_batch(
        self,
        individuals: Iterable[Any],
        chunk_size: Optional[int] = None,
    ) -> list[Any]:
        """Batch mode over the chunked data plane: resolve every
        candidate, preserving order.

        Semantically identical to :meth:`evaluate` (same stats, same
        journal records, same failure policy); the fresh candidates
        cross the backend as whole chunks instead of one task each.
        """
        batch = list(individuals)
        if self.dedup_scope == "batch":
            self._results.clear()
        before = self.stats.copy()
        with self.tracer.span("engine.evaluate", n=len(batch)) as span:
            self.submit_batch(batch, chunk_size=chunk_size)
            self.drain()
            used = self.stats.delta(before)
            span.tag(
                fresh=used.fresh,
                cache_hits=used.cache_hits,
                dedup_hits=used.dedup_hits,
                failures=used.failures,
            )
        self._ready.clear()
        return batch

    def finish_batch(self) -> None:
        """Pipeline helper: block until everything in flight resolves.

        Pairs with :meth:`submit_batch` when a driver overlaps breeding
        of the next generation with evaluation of the current one; the
        results land on the submitted individuals in place.
        """
        self.drain()
        self._ready.clear()

    def _resolve_chunk_size(
        self, n_fresh: int, chunk_size: Optional[int]
    ) -> int:
        if chunk_size is not None:
            return max(1, int(chunk_size))
        hint = getattr(self.backend, "batch_chunk_hint", None)
        if hint is not None:
            return max(1, int(hint(n_fresh)))
        return n_fresh

    def _dispatch_chunk(self, individuals: list[Any]) -> Any:
        submit_batch = getattr(self.backend, "submit_batch", None)
        if submit_batch is not None:
            return submit_batch(individuals)
        return AggregateFuture(
            [self.backend.submit(ind) for ind in individuals]
        )

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    def has_pending(self) -> bool:
        """Any candidate not yet handed back to the caller?"""
        return bool(self._inflight or self._ready)

    def wait_any(
        self,
        poll_interval: float = 0.001,
        timeout: Optional[float] = None,
    ) -> list[Any]:
        """Block until at least one candidate resolves; return all that
        have (empty only when nothing is pending or ``timeout`` hits)."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            self._pump()
            if self._ready:
                drained = self._ready
                self._ready = []
                return drained
            if not self._inflight:
                return []
            if deadline is not None and time.monotonic() >= deadline:
                return []
            time.sleep(poll_interval)

    def drain(self) -> None:
        """Block until every in-flight candidate has resolved."""
        while self._inflight:
            self._pump()
            if self._inflight:
                time.sleep(0.001)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _sample_gauges(self) -> None:
        """Refresh the in-flight / ready gauges (every transition)."""
        self._g_inflight.set(
            sum(
                len([m for m in p.members if not m.resolved])
                if isinstance(p, _InFlightChunk)
                else 1
                for p in self._inflight
            )
        )
        self._g_ready.set(len(self._ready))

    def _pending_entries(self) -> Iterable[_InFlight]:
        """Every unresolved in-flight entry, chunk members included."""
        for pending in self._inflight:
            if isinstance(pending, _InFlightChunk):
                for member in pending.members:
                    if not member.resolved:
                        yield member
            else:
                yield pending

    @staticmethod
    def _genome_key(individual: Any) -> Optional[bytes]:
        genome = getattr(individual, "genome", None)
        try:
            return None if genome is None else genome.tobytes()
        except AttributeError:  # pragma: no cover - exotic genomes
            return None

    def _cache_probe(self, individual: Any) -> bool:
        """Serve ``individual`` from its problem's evaluation cache when
        possible; a hit never crosses the backend or occupies a worker."""
        problem = getattr(individual, "problem", None)
        cache = getattr(problem, "cache", None)
        key_fn = getattr(problem, "cache_key", None)
        if cache is None or key_fn is None:
            return False
        try:
            if not cache.contains(key_fn(individual.decode())):
                return False
        except Exception:  # noqa: BLE001 - undecodable: execute normally
            return False
        try:
            # re-enters the problem, which serves the memoized entry
            evaluate_individual(individual)
        except Exception as exc:  # noqa: BLE001 - memoized failure replay
            self._apply_failure(individual, exc)
        self.backend.on_cache_hit(individual)
        return True

    def _apply_failure(self, individual: Any, exc: BaseException) -> None:
        """The §2.2.4 exception→MAXINT policy (the engine-side copy for
        plain individuals, worker deaths, and timeouts; robust
        individuals apply the same policy to their own exceptions)."""
        n_objectives = getattr(individual, "n_objectives", None) or (
            getattr(
                getattr(individual, "problem", None), "n_objectives", None
            )
            or 1
        )
        individual.fitness = failure_fitness(n_objectives)
        individual.metadata["error"] = f"{type(exc).__name__}: {exc}"
        individual.metadata.update(getattr(exc, "metadata", None) or {})
        individual.metadata.setdefault("failed", True)
        individual.metadata.setdefault(
            "failure_cause", f"{type(exc).__name__}: {exc}"
        )

    def _resolve_duplicate(self, individual: Any, done: Any) -> None:
        individual.fitness = (
            None
            if done.fitness is None
            else np.array(done.fitness, copy=True)
        )
        individual.metadata = dict(done.metadata)
        individual.metadata["dedup_of"] = getattr(done, "uuid", None)
        self._finish(individual, None, duplicate=True)

    def _finish(
        self,
        individual: Any,
        genome_key: Optional[bytes],
        cache_fast_path: bool = False,
        duplicate: bool = False,
    ) -> None:
        metadata = getattr(individual, "metadata", None) or {}
        cache_hit = cache_fast_path or bool(metadata.get("cache_hit"))
        self.stats.completed += 1
        self._c_completed.inc()
        if duplicate:
            self.stats.dedup_hits += 1
            self._c_dedup.inc()
        elif cache_hit:
            self.stats.cache_hits += 1
            self._c_cache.inc()
        else:
            self.stats.fresh += 1
            self._c_fresh.inc()
        fitness = getattr(individual, "fitness", None)
        if bool(metadata.get("failed")) or (
            fitness is not None
            and not bool(np.all(np.asarray(fitness) < np.inf))
        ):
            # unreachable fallback branch for exotic fitnesses; real
            # failures carry the explicit flag
            self.stats.failures += 1
            self._c_failures.inc()
        if self._started_at is not None:
            self.stats.wall_time = time.monotonic() - self._started_at
            if self.stats.wall_time > 0:
                self._g_evals_per_sec.set(
                    round(self.stats.completed / self.stats.wall_time, 3)
                )
        if not duplicate and genome_key is not None and self.dedup:
            self._results[genome_key] = individual
        if self.journal is not None:
            append = getattr(self.journal, "append_evaluation", None)
            if append is not None:
                append(individual)
        self._ready.append(individual)
        from repro.obs.live import get_status

        status = get_status()
        if status.enabled:
            status.publish_engine(
                self.stats,
                batches=self._batches,
                last_batch_size=self._last_batch_size,
                evals_per_sec=float(self._g_evals_per_sec.value),
            )

    def _time_out(self, pending: _InFlight, now: float) -> None:
        individual = pending.individual
        cancel = getattr(pending.future, "cancel", None)
        if cancel is not None:
            cancel()
        limit = self.timeout if self.timeout is not None else 0.0
        self._apply_failure(
            individual,
            TrainingTimeoutError(now - pending.since, limit),
        )
        self.stats.timeouts += 1
        self._finish(individual, pending.genome_key)
        for follower in pending.followers:
            self._resolve_duplicate(follower, individual)

    def _pump(self) -> None:
        """Move finished (or timed-out) in-flight work to the ready list."""
        now = time.monotonic()
        still: list[Any] = []
        for pending in self._inflight:
            if isinstance(pending, _InFlightChunk):
                if not self._pump_chunk(pending, now):
                    still.append(pending)
                continue
            # a forced (injected) timeout outranks completion: the
            # engine must enforce its budget even when the backend
            # races it to the finish line
            if pending.forced_timeout or (
                self.timeout is not None
                and not pending.future.done()
                and now - pending.since > self.timeout
            ):
                self._time_out(pending, now)
            elif pending.future.done():
                individual = pending.individual
                try:
                    result = pending.future.result()
                    if result is not None and result is not individual:
                        # the result crossed a process/copy boundary
                        individual.fitness = result.fitness
                        individual.metadata = result.metadata
                except Exception as exc:  # noqa: BLE001 - worker died
                    self._apply_failure(individual, exc)
                self._finish(individual, pending.genome_key)
                for follower in pending.followers:
                    self._resolve_duplicate(follower, individual)
            else:
                still.append(pending)
        self._inflight = still
        self._sample_gauges()

    def _pump_chunk(self, chunk: _InFlightChunk, now: float) -> bool:
        """Advance one chunk; return ``True`` once fully resolved."""
        # forced (injected) timeouts outrank completion, member by
        # member — exactly the scalar semantics
        for member in chunk.members:
            if not member.resolved and member.forced_timeout:
                member.resolved = True
                self._time_out(member, now)
        remaining = [m for m in chunk.members if not m.resolved]
        if not remaining:
            self._cancel_chunk(chunk)
            return True
        if chunk.future.done():
            try:
                slots = chunk.future.result()
            except Exception as exc:  # noqa: BLE001 - chunk dispatch died
                # crash→MAXINT applies to the failed chunk's
                # individuals only; other chunks are untouched
                for member in remaining:
                    member.resolved = True
                    self._apply_failure(member.individual, exc)
                    self._finish(member.individual, member.genome_key)
                    for follower in member.followers:
                        self._resolve_duplicate(follower, member.individual)
                return True
            for member, slot in zip(chunk.members, slots):
                if not member.resolved:
                    self._resolve_chunk_member(member, slot)
            return True
        if self.timeout is not None and now - chunk.since > self.timeout:
            self._cancel_chunk(chunk)
            for member in remaining:
                member.resolved = True
                self._time_out(member, now)
            return True
        return False

    def _resolve_chunk_member(self, member: _InFlight, slot: Any) -> None:
        """Land one chunk slot on its individual, scalar-identically.

        A ``(fitness, metadata)`` pair is merged the way
        ``Individual.evaluate`` merges in-process results; an object
        that crossed a process boundary is copied over like the scalar
        pump does; an exception goes through the MAXINT policy.
        """
        individual = member.individual
        if isinstance(slot, BaseException):
            self._apply_failure(individual, slot)
        elif isinstance(slot, tuple):
            fitness, metadata = slot
            individual.fitness = fitness
            individual.metadata.update(metadata)
        elif slot is not None and slot is not individual:
            individual.fitness = slot.fitness
            individual.metadata = slot.metadata
        member.resolved = True
        self._finish(individual, member.genome_key)
        for follower in member.followers:
            self._resolve_duplicate(follower, individual)

    @staticmethod
    def _cancel_chunk(chunk: _InFlightChunk) -> None:
        cancel = getattr(chunk.future, "cancel", None)
        if cancel is not None:
            cancel()

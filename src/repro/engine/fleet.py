"""Elastic heterogeneous execution fleet.

The paper's campaigns are economical only on a large, *unreliable*
worker fleet (§2.2.5: 100 Summit nodes, spot-style churn).  This
module multiplexes heterogeneous member backends — a scalable
:class:`~repro.engine.pool.ProcessPoolBackend`, a cluster client, an
inline reserve — behind the engine's single ``ExecutionBackend``
protocol, adding the three behaviours a churning fleet needs:

* **Preemption survival.**  A pool-side revocation requeues in-flight
  work to a surviving pool worker; when a member loses its *last*
  worker, the task surfaces here as
  :class:`~repro.exceptions.WorkerRevoked` and is rerouted to another
  member — same payload, same uuids, so journals stay bit-identical.
  Only when *no* member can take the work does the exception reach the
  engine and become ``MAXINT`` under the §2.2.4 policy.
* **Autoscaling.**  Sustained queue depth on an elastic member grows
  it (``scale_to``) toward ``max_workers``; sustained idleness shrinks
  it toward ``min_workers``.  A service ``--slots`` cap bounds growth.
* **Speculative re-execution.**  A task outliving the fleet's typical
  task duration (from :func:`repro.obs.report.straggler_summary` when
  tracing, else an internal ledger) is re-submitted to a second
  member; the first result wins, the loser is cancelled best-effort,
  and a late duplicate is counted and discarded — the engine resolves
  each future exactly once, so no uuid is ever journaled twice.

Everything runs on the driver thread: ``FleetFuture.done()`` drives
:meth:`ElasticBackend._pump` exactly like the pool's ``_drain``, so
the fleet adds no locking to the data plane.
"""

from __future__ import annotations

import math
import time
from typing import Any, Iterable, Optional, Sequence

from repro.engine.backends import InlineBackend, as_backend
from repro.exceptions import WorkerRevoked
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import get_tracer


class _Member:
    """One fleet member: a backend plus routing bookkeeping."""

    __slots__ = ("backend", "name", "reserve", "inflight", "dispatched")

    def __init__(self, backend: Any, name: str, reserve: bool) -> None:
        self.backend = backend
        self.name = name
        #: reserve members (inline) take work only when no pooled
        #: member can — rescue and speculation, not steady-state load
        self.reserve = reserve
        self.inflight = 0
        self.dispatched = 0

    @property
    def elastic(self) -> bool:
        return callable(getattr(self.backend, "scale_to", None))

    def capacity(self) -> int:
        """Concurrent tasks this member can actually execute."""
        for probe in (self.backend, getattr(self.backend, "client", None)):
            n = getattr(probe, "n_workers", None)
            if n is not None:
                return int(n)
        return 1

    def queue_depth(self) -> int:
        depth = getattr(self.backend, "queue_depth", None)
        return int(depth()) if callable(depth) else 0

    def snapshot(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": type(self.backend).__name__,
            "workers": self.capacity(),
            "in_flight": self.inflight,
            "dispatched": self.dispatched,
            "queue_depth": self.queue_depth(),
            "reserve": self.reserve,
            "elastic": self.elastic,
        }


class FleetFuture:
    """The engine's view of one fleet task (``FutureLike``)."""

    __slots__ = ("_fleet", "task", "_result", "_exception", "_resolved")

    def __init__(self, fleet: "ElasticBackend", task: "_FleetTask") -> None:
        self._fleet = fleet
        self.task = task
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._resolved = False

    def _resolve(
        self,
        result: Any = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        self._result = result
        self._exception = exception
        self._resolved = True

    def done(self) -> bool:
        if not self._resolved:
            self._fleet._pump()
        return self._resolved

    def result(self, timeout: Optional[float] = None) -> Any:
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._resolved:
            self._fleet._pump()
            if self._resolved:
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"fleet task {self.task.task_id} unresolved "
                    f"after {timeout}s"
                )
            time.sleep(0.001)
        if self._exception is not None:
            raise self._exception
        return self._result

    def cancel(self) -> None:
        self._fleet._cancel(self.task)


class _FleetTask:
    """One unit of fleet work: a scalar task or a whole chunk."""

    __slots__ = (
        "task_id",
        "kind",
        "individuals",
        "member",
        "future",
        "spec_member",
        "spec_future",
        "fleet_future",
        "submitted_at",
        "attempts",
    )

    def __init__(
        self, task_id: int, kind: str, individuals: list[Any]
    ) -> None:
        self.task_id = task_id
        self.kind = kind  # "task" | "batch"
        self.individuals = individuals
        self.member: Optional[_Member] = None
        self.future: Any = None
        self.spec_member: Optional[_Member] = None
        self.spec_future: Any = None
        self.fleet_future: Optional[FleetFuture] = None
        self.submitted_at = 0.0
        self.attempts = 0

    @property
    def key(self) -> str:
        return f"fleet-task-{self.task_id}"


class ElasticBackend:
    """Multiplex heterogeneous member backends as one elastic fleet.

    Parameters
    ----------
    members:
        Backends (or ``submit``-style clients) to federate; coerced
        through :func:`~repro.engine.backends.as_backend`.  Inline
        backends become *reserve* members — rescue and speculation
        capacity — unless they are the only member.
    min_workers / max_workers:
        Autoscale bounds for elastic members (those exposing
        ``scale_to``); default to each member's initial size.
    slots_cap:
        The service ``--slots`` fleet-wide concurrency cap; growth
        never exceeds it (see :meth:`capacity`).
    speculate:
        Enable speculative re-execution of stragglers.
    straggler_factor / min_speculate_s / min_history:
        A task is a straggler once it outlives ``straggler_factor ×``
        the mean completed-task duration (never sooner than
        ``min_speculate_s``); speculation waits for ``min_history``
        completions before trusting the estimate.
    autoscale_interval:
        Seconds between autoscale observations inside the pump;
        ``None`` disables automatic ticking (tests call
        :meth:`autoscale_tick` by hand).
    sustain_ticks:
        Consecutive pressure (or idle) observations required before
        scaling — one transient spike never rescales the fleet.
    """

    is_execution_backend = True

    def __init__(
        self,
        members: Iterable[Any],
        *,
        min_workers: Optional[int] = None,
        max_workers: Optional[int] = None,
        slots_cap: Optional[int] = None,
        speculate: bool = False,
        straggler_factor: float = 3.0,
        min_speculate_s: float = 0.05,
        min_history: int = 3,
        autoscale_interval: Optional[float] = 0.25,
        sustain_ticks: int = 2,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Any = None,
        owns_members: bool = False,
    ) -> None:
        coerced = [as_backend(m) for m in members]
        if not coerced:
            raise ValueError("a fleet needs at least one member backend")
        self.members: list[_Member] = []
        for i, backend in enumerate(coerced):
            reserve = isinstance(backend, InlineBackend) and len(coerced) > 1
            self.members.append(
                _Member(backend, f"member-{i}", reserve=reserve)
            )
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.slots_cap = None if slots_cap is None else int(slots_cap)
        self.speculate = bool(speculate)
        self.straggler_factor = float(straggler_factor)
        self.min_speculate_s = float(min_speculate_s)
        self.min_history = int(min_history)
        self.autoscale_interval = autoscale_interval
        self.sustain_ticks = max(1, int(sustain_ticks))
        self.tracer = tracer if tracer is not None else get_tracer()
        self._owns_members = bool(owns_members)
        registry = metrics if metrics is not None else get_registry()
        self._c_requeued = registry.counter("fleet_requeued_total")
        self._c_spec = registry.counter("fleet_speculations_total")
        self._c_spec_wins = registry.counter("fleet_speculative_wins_total")
        self._c_duplicates = registry.counter(
            "fleet_duplicate_results_total"
        )
        self._c_scale_up = registry.counter("fleet_scale_up_total")
        self._c_scale_down = registry.counter("fleet_scale_down_total")
        self._g_workers = registry.gauge("fleet_workers")
        self._g_members = registry.gauge("fleet_members")
        self._g_members.set(len(self.members))
        self._g_workers.set(self.capacity())
        self._tasks: list[_FleetTask] = []
        #: loser futures still running after their task resolved — kept
        #: so a late duplicate result is observed (and counted) rather
        #: than silently leaked
        self._lingering: list[Any] = []
        self._durations: list[float] = []
        self._next_task_id = 0
        self._pressure = 0
        self._idle = 0
        self._last_autoscale = time.monotonic()
        self._closed = False

    # ------------------------------------------------------------------
    # capacity & routing
    # ------------------------------------------------------------------
    def capacity(self) -> int:
        """Concurrent evaluations the fleet can execute right now
        (reserve members excluded — they are rescue capacity)."""
        active = [m for m in self.members if not m.reserve]
        pool = active if active else self.members
        return sum(m.capacity() for m in pool)

    @property
    def n_workers(self) -> int:
        """Alias so :func:`repro.service.fair_share.worker_capacity`
        (and anything else probing pool-shaped backends) sees the
        fleet's live size."""
        return max(1, self.capacity())

    def _route(
        self, exclude: Sequence[_Member] = ()
    ) -> Optional[_Member]:
        """Least-loaded member with live capacity; reserve members only
        when no pooled member qualifies."""
        for pool in (
            [
                m
                for m in self.members
                if not m.reserve and m not in exclude and m.capacity() > 0
            ],
            [m for m in self.members if m.reserve and m not in exclude],
        ):
            if pool:
                return min(
                    pool,
                    key=lambda m: (
                        m.inflight / max(1, m.capacity()),
                        m.inflight,
                        m.name,
                    ),
                )
        return None

    # ------------------------------------------------------------------
    # ExecutionBackend protocol
    # ------------------------------------------------------------------
    def submit(self, individual: Any) -> FleetFuture:
        return self._submit_task("task", [individual])

    def submit_batch(self, individuals: Iterable[Any]) -> FleetFuture:
        return self._submit_task("batch", list(individuals))

    def batch_chunk_hint(self, n: int) -> int:
        return max(1, math.ceil(n / max(1, self.capacity())))

    def on_cache_hit(self, individual: Any) -> None:
        member = self._route()
        if member is not None:
            member.backend.on_cache_hit(individual)

    def _submit_task(self, kind: str, individuals: list[Any]) -> FleetFuture:
        if self._closed:
            raise RuntimeError("ElasticBackend is closed")
        task = _FleetTask(self._next_task_id, kind, individuals)
        self._next_task_id += 1
        future = FleetFuture(self, task)
        task.fleet_future = future
        member = self._route()
        if member is None:
            future._resolve(
                exception=WorkerRevoked("fleet", "no member remains")
            )
            return future
        self._dispatch(task, member)
        self._tasks.append(task)
        return future

    def _member_submit(self, member: _Member, task: _FleetTask) -> Any:
        if task.kind == "batch":
            return member.backend.submit_batch(task.individuals)
        return member.backend.submit(task.individuals[0])

    def _dispatch(self, task: _FleetTask, member: _Member) -> None:
        task.member = member
        task.future = self._member_submit(member, task)
        task.submitted_at = time.monotonic()
        member.inflight += 1
        member.dispatched += 1

    # ------------------------------------------------------------------
    # the pump (driver thread only, like the pool's _drain)
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        still: list[_FleetTask] = []
        for task in self._tasks:
            if not self._advance(task):
                still.append(task)
        self._tasks = still
        self._reap_lingering()
        if (
            self.autoscale_interval is not None
            and time.monotonic() - self._last_autoscale
            >= self.autoscale_interval
        ):
            self.autoscale_tick()

    def _advance(self, task: _FleetTask) -> bool:
        """Advance one task; True once its fleet future resolved."""
        if task.fleet_future._resolved:
            return True
        # primary side
        if task.future is not None and task.future.done():
            try:
                result = task.future.result(timeout=0)
            except WorkerRevoked:
                task.member.inflight -= 1
                if not self._requeue(task):
                    return True
            except BaseException as exc:  # noqa: BLE001 - engine's policy
                self._settle(task, "primary", exception=exc)
                return True
            else:
                self._settle(task, "primary", result=result)
                return True
        # speculative side
        if task.spec_future is not None and task.spec_future.done():
            try:
                result = task.spec_future.result(timeout=0)
            except BaseException:  # noqa: BLE001 - spec is best-effort
                # a failed speculation never outranks the primary
                task.spec_member.inflight -= 1
                task.spec_member = None
                task.spec_future = None
            else:
                self._settle(task, "spec", result=result)
                return True
        self._maybe_speculate(task)
        return False

    def _requeue(self, task: _FleetTask) -> bool:
        """Reroute a revoked task to another member; False when no
        member can take it (the fleet future then fails → MAXINT)."""
        member = self._route(exclude=(task.member,))
        if member is None:
            self._settle(
                task,
                "primary",
                exception=WorkerRevoked(
                    task.member.name if task.member else "fleet",
                    "no member remains to re-execute revoked task",
                ),
                already_off_books=True,
            )
            return False
        task.attempts += 1
        self._c_requeued.inc()
        if getattr(self.tracer, "enabled", False):
            self.tracer.event(
                "fleet.requeued",
                task=task.key,
                from_member=task.member.name if task.member else None,
                to_member=member.name,
                attempt=task.attempts,
            )
        self._dispatch(task, member)
        self._publish()
        return True

    def _maybe_speculate(self, task: _FleetTask) -> None:
        if (
            not self.speculate
            or task.spec_future is not None
            or task.future is None
        ):
            return
        threshold = self.speculation_threshold()
        if threshold is None:
            return
        if time.monotonic() - task.submitted_at < threshold:
            return
        member = self._route(exclude=(task.member,))
        if member is None:
            return
        task.spec_member = member
        member.inflight += 1
        member.dispatched += 1
        self._c_spec.inc()
        if getattr(self.tracer, "enabled", False):
            self.tracer.event(
                "fleet.speculate",
                task=task.key,
                member=member.name,
                threshold=round(threshold, 6),
            )
        # the submit runs last: an inline reserve resolves *during*
        # submit, and the bookkeeping above must already be in place
        task.spec_future = self._member_submit(member, task)

    def speculation_threshold(self) -> Optional[float]:
        """Seconds after which an in-flight task counts as a straggler,
        or ``None`` while there is too little history to judge.

        Prefers the live :func:`~repro.obs.report.straggler_summary`
        over the tracer's records (the telemetry the monitor already
        shows); falls back to the fleet's own completed-duration
        ledger on untraced runs.
        """
        mean: Optional[float] = None
        records = getattr(self.tracer, "records", None)
        if records:
            try:
                from repro.obs.report import straggler_summary

                summary = straggler_summary(records, top=1)
                if int(summary.get("n_tasks", 0)) >= self.min_history:
                    mean = float(summary["mean_task_s"])
            except Exception:  # noqa: BLE001 - telemetry is best-effort
                mean = None
        if mean is None:
            if len(self._durations) < self.min_history:
                return None
            mean = sum(self._durations) / len(self._durations)
        return max(self.min_speculate_s, self.straggler_factor * mean)

    def _settle(
        self,
        task: _FleetTask,
        winner: str,
        result: Any = None,
        exception: Optional[BaseException] = None,
        already_off_books: bool = False,
    ) -> None:
        """First result wins: resolve the fleet future, cancel the
        loser, and keep the loser's future observable so a late
        duplicate is counted and discarded."""
        if winner == "spec":
            win_member, lose_member = task.spec_member, task.member
            lose_future = task.future
            self._c_spec_wins.inc()
            if getattr(self.tracer, "enabled", False):
                self.tracer.event(
                    "fleet.speculative_win",
                    task=task.key,
                    member=win_member.name if win_member else None,
                )
        else:
            win_member, lose_member = task.member, task.spec_member
            lose_future = task.spec_future
        if win_member is not None and not already_off_books:
            win_member.inflight -= 1
        if exception is None:
            self._durations.append(
                max(0.0, time.monotonic() - task.submitted_at)
            )
            if len(self._durations) > 256:
                del self._durations[:-256]
        if lose_future is not None:
            cancel = getattr(lose_future, "cancel", None)
            if cancel is not None:
                cancel()
            # the loser's slot frees now (its member may still be
            # burning a worker briefly, but a cancelled task must not
            # count against routing forever — nothing pumps once the
            # last fleet future resolves)
            if lose_member is not None:
                lose_member.inflight -= 1
            self._lingering.append(lose_future)
        task.fleet_future._resolve(result=result, exception=exception)
        self._publish()

    def _reap_lingering(self) -> None:
        still: list[Any] = []
        for future in self._lingering:
            if not future.done():
                still.append(future)
                continue
            try:
                future.result(timeout=0)
            except BaseException:  # noqa: BLE001 - cancelled loser
                pass
            else:
                # the loser actually finished: a duplicate result,
                # discarded here — it never reaches the engine, so the
                # journal sees each uuid exactly once
                self._c_duplicates.inc()
        self._lingering = still

    def _cancel(self, task: _FleetTask) -> None:
        for future in (task.future, task.spec_future):
            cancel = getattr(future, "cancel", None)
            if cancel is not None:
                cancel()

    # ------------------------------------------------------------------
    # autoscaling
    # ------------------------------------------------------------------
    def autoscale_tick(self) -> None:
        """One autoscale observation (rate-limited inside the pump;
        callable directly for deterministic tests).

        Sustained queue depth on an elastic member scales it up toward
        the effective maximum (``max_workers`` ∧ ``slots_cap``);
        sustained idleness scales it down one worker at a time toward
        ``min_workers``.
        """
        self._last_autoscale = time.monotonic()
        elastic = [m for m in self.members if m.elastic]
        if not elastic:
            return
        depth = sum(m.queue_depth() for m in elastic)
        busy = sum(m.inflight for m in self.members)
        if depth > 0:
            self._pressure += 1
            self._idle = 0
        elif busy == 0:
            self._idle += 1
            self._pressure = 0
        else:
            self._pressure = 0
            self._idle = 0
        if self._pressure >= self.sustain_ticks:
            self._pressure = 0
            for member in elastic:
                current = member.capacity()
                target = min(
                    self._effective_max(member),
                    current + max(1, member.queue_depth()),
                )
                if target > current:
                    member.backend.scale_to(target)
                    self._c_scale_up.inc()
                    self.tracer.event(
                        "fleet.scale_up",
                        member=member.name,
                        workers=member.capacity(),
                    )
            self._publish()
        elif self._idle >= self.sustain_ticks:
            self._idle = 0
            for member in elastic:
                current = member.capacity()
                floor = self._effective_min(member)
                if current > floor:
                    member.backend.scale_to(current - 1)
                    self._c_scale_down.inc()
                    self.tracer.event(
                        "fleet.scale_down",
                        member=member.name,
                        workers=member.capacity(),
                    )
            self._publish()
        self._g_workers.set(self.capacity())

    def _effective_max(self, member: _Member) -> int:
        cap = (
            member.capacity()
            if self.max_workers is None
            else int(self.max_workers)
        )
        if self.slots_cap is not None:
            # the service slot cap bounds the whole fleet; give this
            # member what the others are not already using
            others = sum(
                m.capacity()
                for m in self.members
                if m is not member and not m.reserve
            )
            cap = min(cap, max(1, self.slots_cap - others))
        return max(1, cap)

    def _effective_min(self, member: _Member) -> int:
        if self.min_workers is None:
            return 1
        return max(1, int(self.min_workers))

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def fleet_snapshot(self) -> dict[str, Any]:
        """Strict-JSON fleet state for ``/status`` and the monitor."""
        return {
            "workers": self.capacity(),
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "slots_cap": self.slots_cap,
            "speculate": self.speculate,
            "in_flight": sum(m.inflight for m in self.members),
            "queue_depth": sum(m.queue_depth() for m in self.members),
            "requeued": int(self._c_requeued.value),
            "speculations": int(self._c_spec.value),
            "speculative_wins": int(self._c_spec_wins.value),
            "duplicates_discarded": int(self._c_duplicates.value),
            "scale_ups": int(self._c_scale_up.value),
            "scale_downs": int(self._c_scale_down.value),
            "members": [m.snapshot() for m in self.members],
        }

    def _publish(self) -> None:
        from repro.obs.live import get_status

        status = get_status()
        if status.enabled:
            status.fleet_update(**self.fleet_snapshot())
        self._g_workers.set(self.capacity())

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Fail anything unresolved; close members only when owned."""
        if self._closed:
            return
        self._closed = True
        for task in self._tasks:
            if not task.fleet_future._resolved:
                self._cancel(task)
                task.fleet_future._resolve(
                    exception=WorkerRevoked("fleet", "fleet closed")
                )
        self._tasks.clear()
        self._lingering.clear()
        if self._owns_members:
            for member in self.members:
                close = getattr(member.backend, "close", None)
                if close is not None:
                    try:
                        close()
                    except Exception:  # noqa: BLE001 - best effort
                        pass

    def __enter__(self) -> "ElasticBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

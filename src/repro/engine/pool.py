"""Process-parallel execution backend.

The paper evaluates one generation as 100 concurrent trainings on 100
Summit nodes (§2.2.5); the :class:`~repro.engine.backends.InlineBackend`
evaluates them one after another in the driver's process.  This module
is the in-between that makes a single-machine campaign scale with
cores: a :class:`ProcessPoolBackend` implementing the same
``ExecutionBackend`` protocol on top of a ``multiprocessing`` worker
pool.

Design constraints, in order:

* **Spawn-safe.**  Workers are started with the ``spawn`` method by
  default (the only method available everywhere and the only one safe
  under threads), so every task — the individual, its decoder, and its
  problem — crosses the process boundary by pickling.  Problems carry
  locks and caches; the ones shipped with this package implement
  ``__getstate__`` so they pickle cleanly.
* **Worker crash is an evaluation failure, not a campaign failure.**
  A worker that dies mid-task (OOM, segfault, injected chaos) fails
  only the task it held: the task's future raises
  :class:`~repro.exceptions.WorkerFailure`, the engine's §2.2.4 policy
  turns that into a ``MAXINT`` fitness, and the pool replaces the dead
  worker so capacity is restored.
* **Per-task deadline.**  The engine's soft timeout cannot stop a
  worker that is stuck inside an evaluation; ``deadline`` is the hard
  backend-side limit — an overrunning worker is killed, its task fails
  with :class:`~repro.exceptions.TrainingTimeoutError`, and a
  replacement worker is spawned (the paper's 2-hour cap, enforced with
  SIGKILL).
* **Chaos passthrough.**  The pool consults the process-wide
  :mod:`repro.injection` injector at dispatch time with the same
  ``(worker_name, task_index)`` semantics as the thread cluster:
  ``worker_delay`` makes the worker sleep before evaluating (slow
  worker) and ``should_fail`` makes it die mid-evaluation (node
  failure) — both deterministic for scripted plans.
* **No shared locks with workers.**  Each worker owns a private duplex
  pipe; a SIGKILL'd worker can never strand a lock another worker (or
  the parent) needs.

The parent side is single-threaded: all bookkeeping happens inside
:meth:`ProcessPoolBackend._drain`, which the engine's poll loop drives
through ``future.done()``.
"""

from __future__ import annotations

import math
import os
import pickle
import time
import zlib
from typing import Any, Iterable, Optional

import numpy as np

from repro.exceptions import (
    EvaluationError,
    TrainingTimeoutError,
    WorkerFailure,
    WorkerRevoked,
)
from repro.injection import FaultInjector, get_injector
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import get_tracer

#: how long close() waits for a worker to exit gracefully
_JOIN_TIMEOUT = 5.0


class RemoteEvaluation:
    """What comes back over the pipe: the evaluated state, not the
    individual.  The engine copies ``fitness``/``metadata`` onto its
    local individual (its ``result is not individual`` branch)."""

    __slots__ = ("fitness", "metadata")

    def __init__(self, fitness: Any, metadata: dict[str, Any]) -> None:
        self.fitness = fitness
        self.metadata = metadata


def _pool_worker_main(
    conn: Any, worker_name: str = "pool-?"
) -> None:  # pragma: no cover - subprocess
    """One worker: recv task → evaluate → send result, until "stop".

    Runs with no injector installed — chaos decisions are made (and
    counted) once, in the parent, at dispatch time; a forked worker
    must not fire the plan a second time.

    When the parent's tracer is enabled, each evaluation is recorded
    worker-side as a plain ``worker.task`` span dict (tagged with the
    worker and task key, like thread-worker spans) and shipped back
    with the result over the same duplex pipe; the parent merges it
    into its trace via :meth:`repro.obs.trace.Tracer.ingest`.
    ``time.monotonic()`` is CLOCK_MONOTONIC, shared across processes
    on one host, so worker span timestamps line up with the parent's.
    """
    from repro.engine.backends import evaluate_individuals_batch
    from repro.injection import set_injector

    set_injector(None)
    #: shared segments: problem/decoder/class shipped once per worker,
    #: keyed by the parent's segment key — batch task payloads then
    #: carry only (genome, uuid) pairs
    segments: dict[str, tuple[Any, Any, Any]] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        if msg[0] == "segment":
            segments[msg[1]] = pickle.loads(msg[2])
            continue
        kind, task_id, payload, delay, die, trace, attempt = msg
        if delay:
            time.sleep(delay)
        if die:
            # injected node failure: die mid-evaluation, before any
            # result (or partial state) escapes this process
            os._exit(1)
        ts = time.time()
        mono = time.monotonic()
        error: str | None = None
        n_items = 1
        if kind == "batch":
            try:
                segment_key, items = pickle.loads(payload)
                if segment_key is not None:
                    problem, decoder, cls = segments[segment_key]
                    individuals = []
                    for genome, uuid in items:
                        ind = cls(genome, decoder=decoder, problem=problem)
                        ind.uuid = uuid
                        individuals.append(ind)
                else:
                    individuals = items
                n_items = len(individuals)
                slots = evaluate_individuals_batch(individuals)
                safe_slots: list[Any] = []
                for slot in slots:
                    if isinstance(slot, BaseException):
                        try:
                            pickle.dumps(slot)
                            safe_slots.append(slot)
                        except Exception:  # unpicklable: ship the repr
                            safe_slots.append(
                                EvaluationError(
                                    f"{type(slot).__name__}: {slot}"
                                )
                            )
                    else:
                        fitness, meta = slot
                        safe_slots.append(
                            (
                                None
                                if fitness is None
                                else np.asarray(fitness, dtype=np.float64),
                                dict(meta),
                            )
                        )
                reply = ("batchdone", task_id, safe_slots)
            except BaseException as exc:  # noqa: BLE001 - chunk-fatal
                error = type(exc).__name__
                try:
                    pickle.dumps(exc)
                    reply = ("raised", task_id, exc)
                except Exception:
                    reply = (
                        "raised",
                        task_id,
                        EvaluationError(f"{type(exc).__name__}: {exc}"),
                    )
        else:
            try:
                individual = pickle.loads(payload)
                individual.evaluate()
                reply = (
                    "done",
                    task_id,
                    None
                    if individual.fitness is None
                    else np.asarray(individual.fitness, dtype=np.float64),
                    dict(individual.metadata),
                )
            except BaseException as exc:  # noqa: BLE001 - policy is parent-side
                error = type(exc).__name__
                try:
                    pickle.dumps(exc)
                    reply = ("raised", task_id, exc)
                except Exception:  # unpicklable exception: ship the repr
                    reply = (
                        "raised",
                        task_id,
                        EvaluationError(f"{type(exc).__name__}: {exc}"),
                    )
        records: list[dict[str, Any]] = []
        if trace:
            tags: dict[str, Any] = {
                "worker": worker_name,
                "task": f"pool-task-{task_id}",
                "pid": os.getpid(),
            }
            if kind == "batch":
                tags["n"] = n_items
            if attempt:
                # re-execution after a revocation: the invariant
                # checker keys requeued-elsewhere off this tag
                tags["attempt"] = attempt
            if error is not None:
                tags["error"] = error
            records.append(
                {
                    "type": "span",
                    "name": "worker.task",
                    "id": 0,  # reassigned by Tracer.ingest
                    "parent": None,
                    "ts": ts,
                    "mono": mono,
                    "dur": time.monotonic() - mono,
                    "status": "err" if error is not None else "ok",
                    "thread": worker_name,
                    "tags": tags,
                }
            )
        try:
            conn.send(reply + (records,))
        except (BrokenPipeError, OSError):
            break
    conn.close()


class ProcessFuture:
    """Future for one pooled evaluation (the engine's ``FutureLike``)."""

    __slots__ = ("_backend", "task_id", "_result", "_exception", "_resolved")

    def __init__(self, backend: "ProcessPoolBackend", task_id: int) -> None:
        self._backend = backend
        self.task_id = task_id
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._resolved = False

    def _resolve(
        self,
        result: Any = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        self._result = result
        self._exception = exception
        self._resolved = True

    def done(self) -> bool:
        if not self._resolved:
            self._backend._drain()
        return self._resolved

    def result(self, timeout: Optional[float] = None) -> Any:
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._resolved:
            self._backend._drain()
            if self._resolved:
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"pool task {self.task_id} unresolved after {timeout}s"
                )
            time.sleep(0.001)
        if self._exception is not None:
            raise self._exception
        return self._result

    def cancel(self) -> None:
        """Best-effort cancellation: an undispatched task is abandoned
        (removed from the queue); a dispatched one keeps running but
        its eventual result is discarded on receipt."""
        if not self._resolved:
            self._backend._cancel_task(self.task_id)


class _WorkerHandle:
    """Parent-side view of one worker process."""

    __slots__ = (
        "index",
        "name",
        "process",
        "conn",
        "busy_task",
        "dispatched_at",
        "tasks_dispatched",
        "respawns",
        "segments",
        "pending_revoke",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.name = f"pool-{index}"
        self.process: Any = None
        self.conn: Any = None
        self.busy_task: Optional[int] = None
        self.dispatched_at = 0.0
        #: this worker's own task ordinal — the ``task_index`` the
        #: chaos injector's per-worker windows match against
        self.tasks_dispatched = 0
        #: how many successors were spawned under this name
        self.respawns = 0
        #: segment keys this worker process has already received (a
        #: respawned successor starts empty and gets them re-shipped)
        self.segments: set[str] = set()
        #: the next death is a spot-style preemption: requeue the task
        #: and retire the worker instead of failing and respawning
        self.pending_revoke = False


class ProcessPoolBackend:
    """Fan evaluations out over a pool of worker *processes*.

    Parameters
    ----------
    workers:
        Pool size (default: ``os.cpu_count()``, at least 2).  The
        paper's analogue is one Dask worker per Summit node.
    deadline:
        Hard per-task wall-clock limit in seconds; an overrunning
        worker is SIGKILLed and the task fails with
        :class:`TrainingTimeoutError` (→ ``MAXINT`` under the engine's
        failure policy).  ``None`` disables backend-side enforcement.
    start_method:
        ``"spawn"`` (default, safe everywhere), ``"fork"``, or
        ``"forkserver"``.
    fault_injector:
        Chaos seam; defaults to the process-wide injector of
        :mod:`repro.injection`, so ``use_injector(plan.injector())``
        scopes drive pool faults exactly like cluster faults.
    """

    is_execution_backend = True

    def __init__(
        self,
        workers: Optional[int] = None,
        deadline: Optional[float] = None,
        start_method: str = "spawn",
        fault_injector: Optional[FaultInjector] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Any = None,
    ) -> None:
        import multiprocessing as mp

        if workers is None:
            workers = max(2, os.cpu_count() or 1)
        if workers < 1:
            raise ValueError("need at least one pool worker")
        self.deadline = deadline
        self._ctx = mp.get_context(start_method)
        self._injector = (
            fault_injector if fault_injector is not None else get_injector()
        )
        self.tracer = tracer if tracer is not None else get_tracer()
        registry = metrics if metrics is not None else get_registry()
        self._c_dispatched = registry.counter("pool_tasks_dispatched_total")
        self._c_deaths = registry.counter("pool_worker_deaths_total")
        self._c_respawns = registry.counter("pool_worker_respawns_total")
        self._c_deadline = registry.counter("pool_deadline_kills_total")
        self._c_cache = registry.counter("pool_cache_hits_total")
        self._c_revoked = registry.counter("pool_workers_revoked_total")
        self._c_requeued = registry.counter("pool_tasks_requeued_total")
        self._g_workers = registry.gauge("pool_workers")
        self._g_workers.set(int(workers))
        #: sampled on every submit/dispatch/drain transition
        self._g_queue = registry.gauge("pool_queue_depth")
        self._g_busy = registry.gauge("pool_busy_workers")
        #: FIFO of task ids; the spec lives in :attr:`_tasks` so a
        #: revoked task can be requeued verbatim (same payload, same
        #: uuids) with only its attempt counter bumped
        self._queue: list[int] = []
        #: task_id → [kind, payload, segment_key, attempt]; kept until
        #: the task's future resolves (or is cancelled), so in-flight
        #: work survives the worker that held it
        self._tasks: dict[int, list[Any]] = {}
        #: segment registry: identity of (problem, decoder, class) →
        #: (key, pickled payload).  Strong references on purpose — a
        #: worker holding a segment must never outlive its contents.
        self._segments: dict[tuple[int, int, type], tuple[str, bytes]] = {}
        #: key → pickled payload, for dispatch-time (re-)shipping
        self._segment_payloads: dict[str, bytes] = {}
        self._futures: dict[int, ProcessFuture] = {}
        self._next_task_id = 0
        self._closed = False
        self._workers = [_WorkerHandle(i) for i in range(int(workers))]
        #: worker indices are never reused — a revoked worker's name
        #: must stay dead so requeued-elsewhere is checkable from the
        #: trace alone
        self._next_worker_index = int(workers)
        for handle in self._workers:
            self._spawn(handle)
            self._publish_worker(handle, "idle")
        self._sample_gauges()

    @property
    def n_workers(self) -> int:
        """Current pool size — dynamic under scaling and revocation."""
        return len(self._workers)

    # ------------------------------------------------------------------
    # live-plane helpers
    # ------------------------------------------------------------------
    def _sample_gauges(self) -> None:
        """Refresh the queue-depth / busy-workers gauges (called on
        every submit/dispatch/drain transition)."""
        self._g_queue.set(len(self._queue))
        self._g_busy.set(
            sum(1 for h in self._workers if h.busy_task is not None)
        )

    def _publish_worker(
        self,
        handle: _WorkerHandle,
        state: str,
        task: Optional[int] = None,
    ) -> None:
        """Per-worker liveness for the ``/status`` endpoint (no-op
        unless a live :class:`~repro.obs.live.CampaignStatus` is
        installed)."""
        from repro.obs.live import get_status

        status = get_status()
        if status.enabled:
            status.worker_update(
                handle.name,
                state=state,
                task=None if task is None else f"pool-task-{task}",
                tasks_dispatched=handle.tasks_dispatched,
                respawns=handle.respawns,
                pid=getattr(handle.process, "pid", None),
            )

    # ------------------------------------------------------------------
    # ExecutionBackend protocol
    # ------------------------------------------------------------------
    def submit(self, individual: Any) -> ProcessFuture:
        if self._closed:
            raise RuntimeError("ProcessPoolBackend is closed")
        try:
            payload = pickle.dumps(
                individual, protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception as exc:
            raise TypeError(
                "individual (genome + decoder + problem) must pickle to "
                f"cross the process boundary: {exc}"
            ) from exc
        task_id = self._next_task_id
        self._next_task_id += 1
        if getattr(self.tracer, "enabled", False):
            # the submit instant the report joins worker spans against
            # (queue wait = span start - this event)
            self.tracer.event(
                "task.submit", task=f"pool-task-{task_id}"
            )
        future = ProcessFuture(self, task_id)
        self._futures[task_id] = future
        self._tasks[task_id] = ["task", payload, None, 0]
        if not self._workers:
            # every worker was revoked away: fail fast so a fleet can
            # reroute (standalone → MAXINT via the engine's policy)
            self._fail_task(
                task_id, WorkerRevoked("pool", "no surviving worker")
            )
            return future
        self._queue.append(task_id)
        self._dispatch_idle()
        self._sample_gauges()
        return future

    def batch_chunk_hint(self, n: int) -> int:
        """Spread a batch of ``n`` evaluations across the whole pool:
        ``ceil(n / workers)`` per chunk keeps every worker busy while a
        worker crash can only take down one chunk's worth."""
        return max(1, math.ceil(n / max(1, self.n_workers)))

    def _segment_for(self, individuals: list[Any]) -> Optional[str]:
        """Register (once) and return the shared-segment key when every
        individual shares one ``(problem, decoder, class)`` triple, or
        ``None`` when the batch is heterogeneous / unpicklable and must
        ship whole individuals instead."""
        first = individuals[0]
        problem = first.problem
        if problem is None:
            return None
        decoder = first.decoder
        cls = type(first)
        for ind in individuals[1:]:
            if (
                ind.problem is not problem
                or ind.decoder is not decoder
                or type(ind) is not cls
            ):
                return None
        ident = (id(problem), id(decoder), cls)
        entry = self._segments.get(ident)
        if entry is None:
            try:
                payload = pickle.dumps(
                    (problem, decoder, cls),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            except Exception:
                return None
            # a human-readable tag from the problem's cache fingerprint
            # (when it has one) makes segment traffic debuggable
            tag = "anon"
            fingerprint = getattr(problem, "cache_fingerprint", None)
            if callable(fingerprint):
                try:
                    import json

                    tag = format(
                        zlib.crc32(
                            json.dumps(
                                fingerprint(), sort_keys=True, default=str
                            ).encode()
                        ),
                        "08x",
                    )
                except Exception:
                    tag = "anon"
            entry = (f"seg{len(self._segments)}-{tag}", payload)
            self._segments[ident] = entry
            self._segment_payloads[entry[0]] = payload
        return entry[0]

    def submit_batch(self, individuals: Iterable[Any]) -> ProcessFuture:
        """Submit one chunk of individuals as a single pool task.

        When the whole chunk shares a ``(problem, decoder, class)``
        triple, that triple is shipped **once per worker** as a shared
        segment (re-shipped automatically to respawned successors) and
        the task payload carries only ``(genome, uuid)`` pairs; a
        heterogeneous chunk falls back to shipping the individuals
        whole.  The future resolves to a list of per-slot outcomes —
        ``(fitness, metadata)`` tuples or exception instances — in
        submission order; a worker crash mid-chunk raises
        :class:`WorkerFailure` from ``result()``, failing only this
        chunk.
        """
        if self._closed:
            raise RuntimeError("ProcessPoolBackend is closed")
        members = list(individuals)
        segment_key = self._segment_for(members) if members else None
        try:
            if segment_key is not None:
                items = [(ind.genome, ind.uuid) for ind in members]
                payload = pickle.dumps(
                    (segment_key, items), protocol=pickle.HIGHEST_PROTOCOL
                )
            else:
                payload = pickle.dumps(
                    (None, members), protocol=pickle.HIGHEST_PROTOCOL
                )
        except Exception as exc:
            raise TypeError(
                "batch (genomes + decoder + problem) must pickle to "
                f"cross the process boundary: {exc}"
            ) from exc
        task_id = self._next_task_id
        self._next_task_id += 1
        if getattr(self.tracer, "enabled", False):
            self.tracer.event(
                "task.submit",
                task=f"pool-task-{task_id}",
                n=len(members),
            )
        future = ProcessFuture(self, task_id)
        self._futures[task_id] = future
        self._tasks[task_id] = ["batch", payload, segment_key, 0]
        if not self._workers:
            self._fail_task(
                task_id, WorkerRevoked("pool", "no surviving worker")
            )
            return future
        self._queue.append(task_id)
        self._dispatch_idle()
        self._sample_gauges()
        return future

    def on_cache_hit(self, individual: Any) -> None:
        self._c_cache.inc()

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, handle: _WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(child_conn, handle.name),
            name=f"repro-{handle.name}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the worker owns the other end now
        handle.process = process
        handle.conn = parent_conn
        handle.busy_task = None
        handle.pending_revoke = False
        handle.segments.clear()  # a fresh process holds no segments

    def _fail_task(self, task_id: int, exc: BaseException) -> None:
        self._tasks.pop(task_id, None)
        future = self._futures.pop(task_id, None)
        if future is not None:
            if getattr(self.tracer, "enabled", False):
                self.tracer.event(
                    "task.err",
                    task=f"pool-task-{task_id}",
                    error=type(exc).__name__,
                )
            future._resolve(exception=exc)

    def _cancel_task(self, task_id: int) -> None:
        """Abandon one task (speculation loser / engine timeout): an
        undispatched task leaves the queue; a dispatched one runs to
        completion but its result is discarded on receipt (the future
        is already gone from :attr:`_futures`)."""
        future = self._futures.pop(task_id, None)
        if future is None:
            return
        self._tasks.pop(task_id, None)
        if task_id in self._queue:
            self._queue.remove(task_id)
        if getattr(self.tracer, "enabled", False):
            self.tracer.event(
                "task.abandoned", task=f"pool-task-{task_id}"
            )
        future._resolve(
            exception=WorkerFailure("pool", "task cancelled")
        )
        self._sample_gauges()

    def _replace(self, handle: _WorkerHandle) -> None:
        """Bury one worker (dead or killed) and spawn its successor
        under the same name — per-worker task ordinals keep counting."""
        try:
            handle.conn.close()
        except Exception:  # noqa: BLE001 - already broken
            pass
        if handle.process.is_alive():  # deadline kill
            handle.process.kill()
        handle.process.join(_JOIN_TIMEOUT)
        self._c_deaths.inc()
        self._spawn(handle)
        handle.respawns += 1
        self._c_respawns.inc()
        self.tracer.event(
            "pool.worker_respawn",
            worker=handle.name,
            respawns=handle.respawns,
        )
        self._publish_worker(handle, "idle")

    def _bury_revoked(self, handle: _WorkerHandle) -> None:
        """Spot preemption landed: requeue the in-flight task (same
        payload, same uuids, attempt+1) and retire the worker — no
        respawn, capacity shrinks.  When the last worker goes, queued
        and in-flight work fails with :class:`WorkerRevoked` so a
        fleet backend can reroute it (standalone pools degrade to the
        engine's crash→MAXINT policy)."""
        task_id = handle.busy_task
        handle.busy_task = None
        self._c_revoked.inc()
        self.tracer.event(
            "pool.worker_revoked",
            worker=handle.name,
            task=None if task_id is None else f"pool-task-{task_id}",
        )
        self._publish_worker(handle, "revoked", task=task_id)
        try:
            handle.conn.close()
        except Exception:  # noqa: BLE001 - already broken
            pass
        handle.process.join(_JOIN_TIMEOUT)
        self._workers.remove(handle)
        self._g_workers.set(self.n_workers)
        if task_id is not None and task_id in self._futures:
            if self._workers:
                # requeue to the front: the preempted task is the
                # oldest work outstanding and must not starve
                spec = self._tasks[task_id]
                spec[3] += 1
                self._c_requeued.inc()
                self.tracer.event(
                    "task.requeued",
                    task=f"pool-task-{task_id}",
                    from_worker=handle.name,
                    attempt=spec[3],
                )
                self._queue.insert(0, task_id)
            else:
                self._fail_task(
                    task_id,
                    WorkerRevoked(
                        handle.name,
                        "revoked with no surviving pool worker",
                    ),
                )
        if not self._workers:
            # nothing left to run the backlog either
            for queued_id in list(self._queue):
                self._fail_task(
                    queued_id,
                    WorkerRevoked(
                        handle.name,
                        "revoked with no surviving pool worker",
                    ),
                )
            self._queue.clear()

    def revoke_worker(self, name: Optional[str] = None) -> Optional[str]:
        """Programmatic spot-style preemption (chaos plans fire the
        same path via the ``revoke_worker`` fault kind).

        Kills the named worker — by default the first busy one, else
        the first worker — and processes the revocation immediately:
        its in-flight task is requeued to a survivor, the worker is
        retired without replacement.  Returns the revoked worker's
        name, or ``None`` when the pool is empty.
        """
        if self._closed or not self._workers:
            return None
        handle = None
        if name is not None:
            handle = next(
                (h for h in self._workers if h.name == name), None
            )
        else:
            handle = next(
                (h for h in self._workers if h.busy_task is not None),
                self._workers[0],
            )
        if handle is None:
            return None
        handle.pending_revoke = True
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(_JOIN_TIMEOUT)
        self._drain()
        return handle.name

    # ------------------------------------------------------------------
    # elastic scaling
    # ------------------------------------------------------------------
    def scale_to(self, n: int) -> int:
        """Grow or shrink the pool toward ``n`` workers; returns the
        resulting size.

        Growth spawns fresh workers under never-reused indices (a
        revoked worker's name stays dead, keeping requeued-elsewhere
        checkable from the trace).  Shrinking retires **idle** workers
        only — a busy worker finishes its task first and a later call
        retires it — so scaling down never loses work.
        """
        if self._closed:
            raise RuntimeError("ProcessPoolBackend is closed")
        n = max(0, int(n))
        while len(self._workers) < n:
            handle = _WorkerHandle(self._next_worker_index)
            self._next_worker_index += 1
            self._spawn(handle)
            self._workers.append(handle)
            self.tracer.event("pool.scale_up", worker=handle.name)
            self._publish_worker(handle, "idle")
        if len(self._workers) > n:
            for handle in reversed(list(self._workers)):
                if len(self._workers) <= n:
                    break
                if handle.busy_task is not None:
                    continue
                self._retire(handle)
        self._g_workers.set(self.n_workers)
        self._dispatch_idle()
        self._sample_gauges()
        return self.n_workers

    def _retire(self, handle: _WorkerHandle) -> None:
        """Stop one idle worker gracefully (scale-down path)."""
        try:
            handle.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        handle.process.join(_JOIN_TIMEOUT)
        if handle.process.is_alive():  # pragma: no cover - stuck worker
            handle.process.kill()
            handle.process.join(_JOIN_TIMEOUT)
        try:
            handle.conn.close()
        except Exception:  # noqa: BLE001 - already broken
            pass
        self._workers.remove(handle)
        self.tracer.event("pool.scale_down", worker=handle.name)
        self._publish_worker(handle, "retired")

    def queue_depth(self) -> int:
        """Undispatched tasks (the autoscaler's pressure signal)."""
        return len(self._queue)

    def idle_workers(self) -> int:
        return sum(1 for h in self._workers if h.busy_task is None)

    def _dispatch_idle(self) -> None:
        """Hand queued tasks to idle workers, lowest index first (the
        deterministic order scripted chaos plans rely on)."""
        for handle in self._workers:
            if not self._queue:
                return
            if handle.busy_task is not None:
                continue
            task_id = self._queue.pop(0)
            kind, payload, segment_key, attempt = self._tasks[task_id]
            delay = 0.0
            die = False
            revoke = False
            if self._injector is not None:
                delay = self._injector.worker_delay(
                    handle.name, handle.tasks_dispatched
                )
                die = self._injector.should_fail(
                    handle.name, handle.tasks_dispatched
                )
                revoke = self._injector.should_revoke(
                    handle.name, handle.tasks_dispatched
                )
            trace = bool(getattr(self.tracer, "enabled", False))
            if trace:
                task_key = f"pool-task-{task_id}"
                if delay > 0.0:
                    # chaos firing: injected straggler, decided here
                    self.tracer.event(
                        "worker.slow",
                        worker=handle.name,
                        task=task_key,
                        seconds=delay,
                    )
                if die and not revoke:
                    # chaos firing: this dispatch will kill the worker
                    self.tracer.event(
                        "worker.fault",
                        worker=handle.name,
                        task=task_key,
                    )
            handle.tasks_dispatched += 1
            self._c_dispatched.inc()
            if revoke:
                # spot preemption: the worker dies mid-task like a
                # plain death, but _drain requeues the task and retires
                # the worker instead of failing and respawning
                handle.pending_revoke = True
                die = True
            try:
                if (
                    segment_key is not None
                    and segment_key not in handle.segments
                ):
                    # ship the shared (problem, decoder, class) triple
                    # once per worker process; the pipe is FIFO, so the
                    # segment always lands before the task that needs it
                    handle.conn.send(
                        (
                            "segment",
                            segment_key,
                            self._segment_payloads[segment_key],
                        )
                    )
                    handle.segments.add(segment_key)
                handle.conn.send(
                    (kind, task_id, payload, delay, die, trace, attempt)
                )
            except (BrokenPipeError, OSError):
                # worker already gone: fail this task, replace, retry
                # dispatching the rest on the successor
                self._fail_task(
                    task_id,
                    WorkerFailure(handle.name, "died before dispatch"),
                )
                self._replace(handle)
                continue
            handle.busy_task = task_id
            handle.dispatched_at = time.monotonic()
            self._publish_worker(handle, "busy", task=task_id)

    def _drain(self) -> None:
        """Collect finished work, bury dead workers, enforce deadlines,
        and refill idle workers.  Called from the engine's poll loop via
        ``future.done()`` — always on the driver thread."""
        now = time.monotonic()
        for handle in list(self._workers):
            # 1. everything the worker managed to send
            while True:
                try:
                    if not handle.conn.poll():
                        break
                    msg = handle.conn.recv()
                except (EOFError, OSError):
                    break
                kind, task_id = msg[0], msg[1]
                # last element is the worker-side trace record list;
                # merge it into the parent stream with fresh span ids
                records = msg[-1]
                if records and getattr(self.tracer, "enabled", False):
                    for rec in records:
                        self.tracer.ingest(rec)
                future = self._futures.pop(task_id, None)
                if handle.busy_task == task_id:
                    handle.busy_task = None
                    self._publish_worker(handle, "idle")
                if future is None:
                    # task already failed (deadline) or was cancelled
                    # (speculation loser): discard the late result —
                    # its fate was sealed, and its terminal trace event
                    # already emitted, when the future resolved
                    continue
                self._tasks.pop(task_id, None)
                if getattr(self.tracer, "enabled", False):
                    self.tracer.event(
                        "task.done" if kind != "raised" else "task.err",
                        task=f"pool-task-{task_id}",
                    )
                if kind == "done":
                    future._resolve(RemoteEvaluation(msg[2], msg[3]))
                elif kind == "batchdone":
                    # per-slot outcomes: (fitness, metadata) tuples or
                    # exception instances, in submission order
                    future._resolve(result=msg[2])
                else:  # "raised": re-raise the worker-side exception
                    future._resolve(exception=msg[2])
            # 2. death: a busy worker that is gone takes its task down
            #    (→ WorkerFailure → MAXINT in the engine) — unless this
            #    was a revocation, which requeues instead
            if not handle.process.is_alive():
                if handle.pending_revoke and not self._closed:
                    self._bury_revoked(handle)
                    continue
                if handle.busy_task is not None:
                    exitcode = handle.process.exitcode
                    self.tracer.event(
                        "pool.worker_death",
                        worker=handle.name,
                        task=handle.busy_task,
                        exitcode=exitcode,
                    )
                    self._publish_worker(
                        handle, "dead", task=handle.busy_task
                    )
                    self._fail_task(
                        handle.busy_task,
                        WorkerFailure(
                            handle.name,
                            "died mid-evaluation "
                            f"(exitcode {exitcode})",
                        ),
                    )
                    handle.busy_task = None
                if not self._closed:
                    self._replace(handle)
            # 3. deadline: kill an overrunning worker, fail its task
            elif (
                self.deadline is not None
                and handle.busy_task is not None
                and now - handle.dispatched_at > self.deadline
            ):
                elapsed = now - handle.dispatched_at
                self.tracer.event(
                    "pool.deadline_kill",
                    worker=handle.name,
                    task=handle.busy_task,
                    elapsed=elapsed,
                )
                self._c_deadline.inc()
                self._fail_task(
                    handle.busy_task,
                    TrainingTimeoutError(elapsed, self.deadline),
                )
                handle.busy_task = None
                self._replace(handle)
        self._dispatch_idle()
        self._sample_gauges()

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Graceful shutdown: stop workers, fail anything unresolved.

        Safe to call twice.  Queued-but-undispatched and in-flight
        tasks fail with :class:`WorkerFailure` — under the engine they
        become ``MAXINT``, they do not hang."""
        if self._closed:
            return
        self._closed = True
        for task_id in list(self._queue):
            self._fail_task(
                task_id, WorkerFailure("pool", "closed before dispatch")
            )
        self._queue.clear()
        for handle in self._workers:
            if handle.busy_task is not None:
                self._fail_task(
                    handle.busy_task,
                    WorkerFailure(handle.name, "pool closed mid-task"),
                )
                handle.busy_task = None
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for handle in self._workers:
            handle.process.join(_JOIN_TIMEOUT)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.kill()
                handle.process.join(_JOIN_TIMEOUT)
            try:
                handle.conn.close()
            except Exception:  # noqa: BLE001 - already broken
                pass

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:  # noqa: BLE001 - best effort
            pass

"""Futures: handles to in-flight task results."""

from __future__ import annotations

import enum
import threading
from typing import Any, Optional


class TaskState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"
    ERRED = "erred"
    CANCELLED = "cancelled"


class Future:
    """A thread-safe, single-assignment result container."""

    def __init__(self, key: str) -> None:
        self.key = key
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._state = TaskState.PENDING
        self._result: Any = None
        self._exception: Optional[BaseException] = None

    @property
    def state(self) -> TaskState:
        return self._state

    def done(self) -> bool:
        return self._event.is_set()

    def set_running(self) -> None:
        with self._lock:
            if self._state is TaskState.PENDING:
                self._state = TaskState.RUNNING

    def set_pending(self) -> None:
        """Return to the queue (task reassignment after a worker death)."""
        with self._lock:
            if not self._event.is_set():
                self._state = TaskState.PENDING

    def set_result(self, value: Any) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._result = value
            self._state = TaskState.FINISHED
            self._event.set()

    def set_exception(self, exc: BaseException) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._exception = exc
            self._state = TaskState.ERRED
            self._event.set()

    def cancel(self) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._state = TaskState.CANCELLED
            self._event.set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the task completes; re-raises task exceptions."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"task {self.key} did not complete within {timeout}s"
            )
        if self._state is TaskState.CANCELLED:
            raise RuntimeError(f"task {self.key} was cancelled")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self, timeout: Optional[float] = None):
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"task {self.key} did not complete within {timeout}s"
            )
        return self._exception

    def __repr__(self) -> str:  # pragma: no cover
        return f"Future({self.key!r}, state={self._state.value})"

"""The scheduler: task queue, assignment, and reassignment.

§2.2.5's operational findings are encoded here:

* tasks whose worker dies are put back on the queue and picked up by a
  surviving worker, up to ``max_retries`` attempts;
* when retries are exhausted (or no workers remain) the task's future
  receives the :class:`~repro.exceptions.WorkerFailure`, which the
  robust individual converts to ``MAXINT`` fitness.

Every task carries a timeline (submit → queued → running →
done/err/retry/stranded timestamps on the :class:`TaskRecord`), the
old ad-hoc ``tasks_*`` integers are backed by a
:class:`~repro.obs.metrics.MetricsRegistry` (counters plus queue-wait
and run-time histograms), and state transitions emit tracer events —
with the default :class:`~repro.obs.trace.NullTracer` all of this is
no-op cheap (see ``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.distributed.future import Future
from repro.exceptions import SchedulerError, WorkerFailure
from repro.injection import FaultInjector, get_injector
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullTracer, Tracer, get_tracer


@dataclass
class TaskRecord:
    """A unit of work plus its bookkeeping.

    ``timeline`` accumulates ``(event, monotonic_time)`` pairs over the
    task's life — ``submit``/``queued`` at submission, ``running`` each
    time a worker picks it up, then ``done``, ``err``, ``retry``,
    ``abandoned``, or ``stranded``.
    """

    key: str
    fn: Callable[..., Any]
    args: tuple
    kwargs: dict
    future: Future
    attempts: int = 0
    failed_workers: list[str] = field(default_factory=list)
    timeline: list[tuple[str, float]] = field(default_factory=list)

    def mark(self, event: str) -> float:
        now = time.monotonic()
        self.timeline.append((event, now))
        return now

    def last(self, event: str) -> Optional[float]:
        """Most recent timestamp of ``event`` (None if never marked)."""
        for name, ts in reversed(self.timeline):
            if name == event:
                return ts
        return None


class Scheduler:
    """Thread-safe task queue with failure-driven reassignment.

    ``tracer`` defaults to the process-wide tracer (normally the null
    tracer); ``metrics`` defaults to a private registry so concurrent
    schedulers don't share counters.  The legacy ``tasks_submitted`` /
    ``tasks_completed`` / ``tasks_failed`` / ``reassignments``
    attributes remain readable as properties backed by the registry.
    """

    def __init__(
        self,
        max_retries: int = 2,
        worker_grace_seconds: float = 1.0,
        tracer: Optional[NullTracer | Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        self._queue: "queue.Queue[Optional[TaskRecord]]" = queue.Queue()
        self._counter = itertools.count()
        self._lock = threading.Lock()
        self._workers: dict[str, Any] = {}
        self._closed = False
        self._strand_timer: Optional[threading.Timer] = None
        self.max_retries = int(max_retries)
        #: how long the scheduler waits for a replacement worker (a
        #: nanny restart, a late jsrun) before declaring queued tasks
        #: stranded when the last worker has died
        self.worker_grace_seconds = float(worker_grace_seconds)
        self.tracer = tracer if tracer is not None else get_tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._c_submitted = self.metrics.counter(
            "scheduler_tasks_submitted_total"
        )
        self._c_completed = self.metrics.counter(
            "scheduler_tasks_completed_total"
        )
        self._c_failed = self.metrics.counter("scheduler_tasks_failed_total")
        self._c_reassigned = self.metrics.counter(
            "scheduler_reassignments_total"
        )
        self._c_requeued = self.metrics.counter(
            "scheduler_tasks_requeued_total"
        )
        self._c_cached = self.metrics.counter(
            "scheduler_tasks_cached_total"
        )
        self._g_workers = self.metrics.gauge("scheduler_workers")
        #: sampled on every enqueue/dequeue transition (live plane)
        self._g_queue_depth = self.metrics.gauge("scheduler_queue_depth")
        self._h_queue_wait = self.metrics.histogram(
            "scheduler_task_queue_wait_seconds"
        )
        self._h_run_time = self.metrics.histogram(
            "scheduler_task_run_seconds"
        )
        #: one cached flag gates every per-task mark/event/histogram so
        #: the disabled (null-tracer) path costs only counter ticks
        self._obs = bool(getattr(self.tracer, "enabled", False))
        #: chaos seam: submit-delay injection (None outside chaos runs)
        self._injector = (
            fault_injector if fault_injector is not None else get_injector()
        )

    # ------------------------------------------------------------------
    # legacy counter API (registry-backed)
    # ------------------------------------------------------------------
    @property
    def tasks_submitted(self) -> int:
        return int(self._c_submitted.value)

    @property
    def tasks_completed(self) -> int:
        return int(self._c_completed.value)

    @property
    def tasks_failed(self) -> int:
        return int(self._c_failed.value)

    @property
    def reassignments(self) -> int:
        return int(self._c_reassigned.value)

    @property
    def tasks_requeued(self) -> int:
        return int(self._c_requeued.value)

    @property
    def tasks_cached(self) -> int:
        return int(self._c_cached.value)

    # ------------------------------------------------------------------
    def task_cached(self, key: str) -> None:
        """A client resolved ``key`` from the evaluation cache instead
        of submitting it — account for the skipped task."""
        self._c_cached.inc()
        if self._obs:
            self.tracer.event("task.cached", task=key)

    # ------------------------------------------------------------------
    # client-facing
    # ------------------------------------------------------------------
    def submit(
        self, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Future:
        if self._closed:
            raise SchedulerError("scheduler is closed")
        key = f"task-{next(self._counter)}"
        if self._injector is not None:
            delay = self._injector.submit_delay(key)
            if delay > 0.0:
                if self._obs:
                    self.tracer.event(
                        "task.submit_delayed", task=key, seconds=delay
                    )
                time.sleep(delay)
        future = Future(key)
        record = TaskRecord(
            key=key, fn=fn, args=args, kwargs=kwargs, future=future
        )
        self._c_submitted.inc()
        if self._obs:
            record.mark("submit")
            self.tracer.event("task.submit", task=key)
            record.mark("queued")
        self._queue.put(record)
        self._g_queue_depth.set(self._queue.qsize())
        # a submission onto a worker-less scheduler must not wait
        # forever either: arm the same grace timer used on last-worker
        # death, so the task fails unless a worker registers in time
        with self._lock:
            if not self._workers and self._strand_timer is None:
                self._strand_timer = threading.Timer(
                    self.worker_grace_seconds,
                    self._strand_check,
                    args=("<none>",),
                )
                self._strand_timer.daemon = True
                self._strand_timer.start()
        return future

    # ------------------------------------------------------------------
    # worker-facing
    # ------------------------------------------------------------------
    def register_worker(self, worker: Any) -> None:
        with self._lock:
            self._workers[worker.name] = worker
            self._g_workers.set(len(self._workers))
            if self._strand_timer is not None:
                self._strand_timer.cancel()
                self._strand_timer = None
        self.tracer.event("worker.register", worker=worker.name)

    def unregister_worker(self, worker: Any) -> None:
        with self._lock:
            self._workers.pop(worker.name, None)
            self._g_workers.set(len(self._workers))
            none_left = not self._workers and not self._closed
            if none_left and self._strand_timer is None:
                # give nannies / late workers a grace window before
                # declaring the queue stranded
                self._strand_timer = threading.Timer(
                    self.worker_grace_seconds,
                    self._strand_check,
                    args=(worker.name,),
                )
                self._strand_timer.daemon = True
                self._strand_timer.start()
        self.tracer.event("worker.unregister", worker=worker.name)

    def _strand_check(self, last_worker: str) -> None:
        with self._lock:
            self._strand_timer = None
            if self._workers or self._closed:
                return
        self._fail_pending(last_worker)

    def _fail_pending(self, last_worker: str) -> None:
        """No workers remain (and none arrived within the grace
        window): fail everything still queued.

        Without this, tasks submitted before the last worker died would
        wait forever and ``gather`` would deadlock.  A worker (or
        nanny) registering later can still accept *new* submissions.
        """
        drained: list[TaskRecord] = []
        while True:
            try:
                record = self._queue.get_nowait()
            except queue.Empty:
                break
            if record is None:
                self._queue.put(None)
                break
            drained.append(record)
        if not drained:
            return
        for record in drained:
            if self._obs:
                record.mark("stranded")
            record.future.set_exception(
                WorkerFailure(
                    last_worker,
                    f"task {record.key} stranded: no workers remain",
                )
            )
        # one batched update instead of a lock round-trip per record
        self._c_failed.inc(len(drained))
        self._g_queue_depth.set(self._queue.qsize())
        self.tracer.event(
            "task.stranded", count=len(drained), last_worker=last_worker
        )

    @property
    def n_workers(self) -> int:
        with self._lock:
            return len(self._workers)

    def next_task(self, timeout: float = 0.05) -> Optional[TaskRecord]:
        """Called by worker threads; returns None on idle timeout."""
        try:
            record = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        if record is None:  # shutdown sentinel: re-emit for siblings
            self._queue.put(None)
            return None
        self._g_queue_depth.set(self._queue.qsize())
        if self._obs:
            queued_at = record.last("queued")
            started = record.mark("running")
            if queued_at is not None:
                self._h_queue_wait.observe(started - queued_at)
        record.future.set_running()
        return record

    def task_done(self, record: TaskRecord, result: Any) -> None:
        if self._obs:
            finished = record.mark("done")
            started = record.last("running")
            if started is not None:
                self._h_run_time.observe(finished - started)
        record.future.set_result(result)
        self._c_completed.inc()
        if self._obs:
            self.tracer.event("task.done", task=record.key)

    def task_erred(self, record: TaskRecord, exc: BaseException) -> None:
        """An *application* error: propagate to the future, no retry.

        (Bad hyperparameters will fail on any node; retrying would
        waste a node-fraction of the allocation.)
        """
        if self._obs:
            finished = record.mark("err")
            started = record.last("running")
            if started is not None:
                self._h_run_time.observe(finished - started)
        record.future.set_exception(exc)
        self._c_failed.inc()
        if self._obs:
            self.tracer.event(
                "task.err", task=record.key, error=type(exc).__name__
            )

    def worker_died(self, record: TaskRecord, worker_name: str) -> None:
        """A worker crashed mid-task: requeue or give up."""
        record.attempts += 1
        record.failed_workers.append(worker_name)
        if record.attempts > self.max_retries or self.n_workers == 0:
            if self._obs:
                record.mark("abandoned")
            record.future.set_exception(
                WorkerFailure(
                    worker_name,
                    f"task {record.key} abandoned after "
                    f"{record.attempts} attempt(s) on "
                    f"{record.failed_workers}",
                )
            )
            self._c_failed.inc()
            if self._obs:
                self.tracer.event(
                    "task.abandoned",
                    task=record.key,
                    worker=worker_name,
                    attempts=record.attempts,
                )
            return
        record.future.set_pending()
        self._c_reassigned.inc()
        self._c_requeued.inc()
        if self._obs:
            self.tracer.event(
                "task.retry",
                task=record.key,
                worker=worker_name,
                attempt=record.attempts,
            )
            # recovery-path accounting: the InvariantChecker pairs this
            # with the task's terminal event to prove requeued work
            # completed elsewhere
            self.tracer.event(
                "task.requeued",
                task=record.key,
                from_worker=worker_name,
                attempt=record.attempts,
            )
            record.mark("queued")
        self._queue.put(record)
        self._g_queue_depth.set(self._queue.qsize())

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting work and release waiting workers."""
        self._closed = True
        self._queue.put(None)

    def stats(self) -> dict[str, int]:
        with self._lock:
            n_workers = len(self._workers)
        return {
            "submitted": self.tasks_submitted,
            "completed": self.tasks_completed,
            "failed": self.tasks_failed,
            "reassignments": self.reassignments,
            "requeued": self.tasks_requeued,
            "cached": self.tasks_cached,
            "workers": n_workers,
        }

"""The scheduler: task queue, assignment, and reassignment.

§2.2.5's operational findings are encoded here:

* tasks whose worker dies are put back on the queue and picked up by a
  surviving worker, up to ``max_retries`` attempts;
* when retries are exhausted (or no workers remain) the task's future
  receives the :class:`~repro.exceptions.WorkerFailure`, which the
  robust individual converts to ``MAXINT`` fitness.
"""

from __future__ import annotations

import itertools
import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.distributed.future import Future
from repro.exceptions import SchedulerError, WorkerFailure


@dataclass
class TaskRecord:
    """A unit of work plus its bookkeeping."""

    key: str
    fn: Callable[..., Any]
    args: tuple
    kwargs: dict
    future: Future
    attempts: int = 0
    failed_workers: list[str] = field(default_factory=list)


class Scheduler:
    """Thread-safe task queue with failure-driven reassignment."""

    def __init__(
        self, max_retries: int = 2, worker_grace_seconds: float = 1.0
    ) -> None:
        self._queue: "queue.Queue[Optional[TaskRecord]]" = queue.Queue()
        self._counter = itertools.count()
        self._lock = threading.Lock()
        self._workers: dict[str, Any] = {}
        self._closed = False
        self._strand_timer: Optional[threading.Timer] = None
        self.max_retries = int(max_retries)
        #: how long the scheduler waits for a replacement worker (a
        #: nanny restart, a late jsrun) before declaring queued tasks
        #: stranded when the last worker has died
        self.worker_grace_seconds = float(worker_grace_seconds)
        self.tasks_submitted = 0
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.reassignments = 0

    # ------------------------------------------------------------------
    # client-facing
    # ------------------------------------------------------------------
    def submit(
        self, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Future:
        if self._closed:
            raise SchedulerError("scheduler is closed")
        key = f"task-{next(self._counter)}"
        future = Future(key)
        record = TaskRecord(
            key=key, fn=fn, args=args, kwargs=kwargs, future=future
        )
        with self._lock:
            self.tasks_submitted += 1
        self._queue.put(record)
        # a submission onto a worker-less scheduler must not wait
        # forever either: arm the same grace timer used on last-worker
        # death, so the task fails unless a worker registers in time
        with self._lock:
            if not self._workers and self._strand_timer is None:
                self._strand_timer = threading.Timer(
                    self.worker_grace_seconds,
                    self._strand_check,
                    args=("<none>",),
                )
                self._strand_timer.daemon = True
                self._strand_timer.start()
        return future

    # ------------------------------------------------------------------
    # worker-facing
    # ------------------------------------------------------------------
    def register_worker(self, worker: Any) -> None:
        with self._lock:
            self._workers[worker.name] = worker
            if self._strand_timer is not None:
                self._strand_timer.cancel()
                self._strand_timer = None

    def unregister_worker(self, worker: Any) -> None:
        with self._lock:
            self._workers.pop(worker.name, None)
            none_left = not self._workers and not self._closed
            if none_left and self._strand_timer is None:
                # give nannies / late workers a grace window before
                # declaring the queue stranded
                self._strand_timer = threading.Timer(
                    self.worker_grace_seconds,
                    self._strand_check,
                    args=(worker.name,),
                )
                self._strand_timer.daemon = True
                self._strand_timer.start()

    def _strand_check(self, last_worker: str) -> None:
        with self._lock:
            self._strand_timer = None
            if self._workers or self._closed:
                return
        self._fail_pending(last_worker)

    def _fail_pending(self, last_worker: str) -> None:
        """No workers remain (and none arrived within the grace
        window): fail everything still queued.

        Without this, tasks submitted before the last worker died would
        wait forever and ``gather`` would deadlock.  A worker (or
        nanny) registering later can still accept *new* submissions.
        """
        drained: list[TaskRecord] = []
        while True:
            try:
                record = self._queue.get_nowait()
            except queue.Empty:
                break
            if record is None:
                self._queue.put(None)
                break
            drained.append(record)
        for record in drained:
            record.future.set_exception(
                WorkerFailure(
                    last_worker,
                    f"task {record.key} stranded: no workers remain",
                )
            )
            with self._lock:
                self.tasks_failed += 1

    @property
    def n_workers(self) -> int:
        with self._lock:
            return len(self._workers)

    def next_task(self, timeout: float = 0.05) -> Optional[TaskRecord]:
        """Called by worker threads; returns None on idle timeout."""
        try:
            record = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        if record is None:  # shutdown sentinel: re-emit for siblings
            self._queue.put(None)
            return None
        record.future.set_running()
        return record

    def task_done(self, record: TaskRecord, result: Any) -> None:
        record.future.set_result(result)
        with self._lock:
            self.tasks_completed += 1

    def task_erred(self, record: TaskRecord, exc: BaseException) -> None:
        """An *application* error: propagate to the future, no retry.

        (Bad hyperparameters will fail on any node; retrying would
        waste a node-fraction of the allocation.)
        """
        record.future.set_exception(exc)
        with self._lock:
            self.tasks_failed += 1

    def worker_died(self, record: TaskRecord, worker_name: str) -> None:
        """A worker crashed mid-task: requeue or give up."""
        record.attempts += 1
        record.failed_workers.append(worker_name)
        if record.attempts > self.max_retries or self.n_workers == 0:
            record.future.set_exception(
                WorkerFailure(
                    worker_name,
                    f"task {record.key} abandoned after "
                    f"{record.attempts} attempt(s) on "
                    f"{record.failed_workers}",
                )
            )
            with self._lock:
                self.tasks_failed += 1
            return
        record.future.set_pending()
        with self._lock:
            self.reassignments += 1
        self._queue.put(record)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting work and release waiting workers."""
        self._closed = True
        self._queue.put(None)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "submitted": self.tasks_submitted,
                "completed": self.tasks_completed,
                "failed": self.tasks_failed,
                "reassignments": self.reassignments,
                "workers": len(self._workers),
            }

"""The client: the user-facing submit/map/gather interface.

Mirrors ``dask.distributed.Client`` closely enough that
:func:`repro.evo.ops.eval_pool` works with either.  The
:class:`LocalCluster` convenience stands up a scheduler plus N workers
in one call — the reproduction analogue of the paper's batch script
launching the Dask scheduler and one worker per Summit node.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.distributed.faults import FaultPolicy
from repro.distributed.future import Future
from repro.distributed.scheduler import Scheduler
from repro.distributed.worker import Nanny, Worker


class Client:
    """Submit tasks to a scheduler and gather their results.

    ``map`` fan-outs and ``gather`` waits are traced (on the
    scheduler's tracer) so a campaign trace shows how long the EA loop
    blocked on each generation's evaluations.
    """

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler

    def submit(
        self, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Future:
        return self.scheduler.submit(fn, *args, **kwargs)

    def map(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> list[Future]:
        with self.scheduler.tracer.span("client.map") as span:
            futures = [self.scheduler.submit(fn, item) for item in items]
            span.tag(n_tasks=len(futures))
        return futures

    def gather(
        self, futures: Sequence[Future], timeout: Optional[float] = None
    ) -> list[Any]:
        """Block for all results; task exceptions re-raise here."""
        with self.scheduler.tracer.span(
            "client.gather", n_futures=len(futures)
        ):
            return [f.result(timeout=timeout) for f in futures]


class LocalCluster:
    """Scheduler + N workers (optionally nannied), context-managed.

    Parameters
    ----------
    n_workers:
        One per simulated node (the paper used 100).
    use_nannies:
        Restart dead workers; the paper's production setting is False.
    fault_policy:
        Shared fault-injection policy for all workers.
    tracer / metrics:
        Forwarded to the :class:`Scheduler`; the tracer defaults to
        the process-wide one and the registry to a private instance.
    """

    def __init__(
        self,
        n_workers: int = 4,
        use_nannies: bool = False,
        fault_policy: Optional[FaultPolicy] = None,
        max_retries: int = 2,
        tracer: Any = None,
        metrics: Any = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.scheduler = Scheduler(
            max_retries=max_retries, tracer=tracer, metrics=metrics
        )
        self.use_nannies = use_nannies
        self._members: list[Any] = []
        for i in range(n_workers):
            name = f"node-{i:03d}"
            if use_nannies:
                self._members.append(
                    Nanny(self.scheduler, name, fault_policy)
                )
            else:
                self._members.append(
                    Worker(self.scheduler, name, fault_policy)
                )

    def start(self) -> "LocalCluster":
        self.scheduler.tracer.event(
            "cluster.start",
            n_workers=len(self._members),
            nannies=self.use_nannies,
        )
        for member in self._members:
            member.start()
        return self

    def client(self) -> Client:
        return Client(self.scheduler)

    def shutdown(self) -> None:
        self.scheduler.tracer.event(
            "cluster.shutdown", n_alive=self.scheduler.n_workers
        )
        self.scheduler.close()
        for member in self._members:
            member.stop()

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    @property
    def n_alive(self) -> int:
        return self.scheduler.n_workers

"""The client: the user-facing submit/map/gather interface.

Mirrors ``dask.distributed.Client`` closely enough that
:func:`repro.evo.ops.eval_pool` works with either.  The
:class:`LocalCluster` convenience stands up a scheduler plus N workers
in one call — the reproduction analogue of the paper's batch script
launching the Dask scheduler and one worker per Summit node.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.distributed.faults import FaultPolicy
from repro.distributed.future import Future
from repro.distributed.scheduler import Scheduler
from repro.distributed.worker import Nanny, Worker
from repro.injection import FaultInjector


class Client:
    """Submit tasks to a scheduler and gather their results.

    ``map`` fan-outs and ``gather`` waits are traced (on the
    scheduler's tracer) so a campaign trace shows how long the EA loop
    blocked on each generation's evaluations.

    When an item is an individual whose problem carries an evaluation
    cache (:class:`repro.store.cache.EvaluationCache` via a ``cache``
    attribute plus a ``cache_key`` method), ``map`` resolves cached
    evaluations inline instead of submitting them — a cache hit never
    crosses the scheduler queue, occupies a worker, or waits behind a
    2-hour training.
    """

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler

    @property
    def n_workers(self) -> int:
        """Live worker count — the fleet capacity a multi-campaign
        scheduler sizes its dispatch window against."""
        return self.scheduler.n_workers

    def submit(
        self, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Future:
        return self.scheduler.submit(fn, *args, **kwargs)

    def _cached_future(
        self, fn: Callable[[Any], Any], item: Any
    ) -> Optional[Future]:
        """A pre-resolved future for a cache-hit item (None = submit)."""
        problem = getattr(item, "problem", None)
        cache = getattr(problem, "cache", None)
        key_fn = getattr(problem, "cache_key", None)
        if cache is None or key_fn is None:
            return None
        try:
            if not cache.contains(key_fn(item.decode())):
                return None
        except Exception:  # noqa: BLE001 - undecodable: submit normally
            return None
        future = Future(f"cached-{getattr(item, 'uuid', id(item))}")
        try:
            # hits the cache inside the problem; no training runs
            future.set_result(fn(item))
        except Exception as exc:  # noqa: BLE001
            future.set_exception(exc)
        self.scheduler.task_cached(future.key)
        return future

    def map(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> list[Future]:
        with self.scheduler.tracer.span("client.map") as span:
            futures = []
            n_cached = 0
            for item in items:
                future = self._cached_future(fn, item)
                if future is not None:
                    n_cached += 1
                else:
                    future = self.scheduler.submit(fn, item)
                futures.append(future)
            span.tag(n_tasks=len(futures), n_cached=n_cached)
        return futures

    def gather(
        self, futures: Sequence[Future], timeout: Optional[float] = None
    ) -> list[Any]:
        """Block for all results; task exceptions re-raise here."""
        with self.scheduler.tracer.span(
            "client.gather", n_futures=len(futures)
        ):
            return [f.result(timeout=timeout) for f in futures]


class LocalCluster:
    """Scheduler + N workers (optionally nannied), context-managed.

    Parameters
    ----------
    n_workers:
        One per simulated node (the paper used 100).
    use_nannies:
        Restart dead workers; the paper's production setting is False.
    fault_policy:
        Shared fault-injection policy for all workers.
    tracer / metrics:
        Forwarded to the :class:`Scheduler`; the tracer defaults to
        the process-wide one and the registry to a private instance.
    """

    def __init__(
        self,
        n_workers: int = 4,
        use_nannies: bool = False,
        fault_policy: Optional[FaultPolicy] = None,
        max_retries: int = 2,
        tracer: Any = None,
        metrics: Any = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        # a chaos Injector is both a FaultPolicy (worker deaths) and a
        # FaultInjector (scheduler-side delays): hand it to both layers
        self.scheduler = Scheduler(
            max_retries=max_retries,
            tracer=tracer,
            metrics=metrics,
            fault_injector=(
                fault_policy
                if isinstance(fault_policy, FaultInjector)
                else None
            ),
        )
        self.use_nannies = use_nannies
        self._members: list[Any] = []
        for i in range(n_workers):
            name = f"node-{i:03d}"
            if use_nannies:
                self._members.append(
                    Nanny(self.scheduler, name, fault_policy)
                )
            else:
                self._members.append(
                    Worker(self.scheduler, name, fault_policy)
                )

    def start(self) -> "LocalCluster":
        self.scheduler.tracer.event(
            "cluster.start",
            n_workers=len(self._members),
            nannies=self.use_nannies,
        )
        for member in self._members:
            member.start()
        return self

    def client(self) -> Client:
        return Client(self.scheduler)

    def shutdown(self) -> None:
        self.scheduler.tracer.event(
            "cluster.shutdown", n_alive=self.scheduler.n_workers
        )
        self.scheduler.close()
        for member in self._members:
            member.stop()

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    @property
    def n_alive(self) -> int:
        return self.scheduler.n_workers

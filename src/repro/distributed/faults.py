"""Worker fault injection.

Summit-scale runs see real node failures; the paper tuned its Dask
deployment around them (disabling nannies, letting the scheduler
reassign).  These policies let tests and benchmarks trigger the same
failure paths deterministically.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.rng import RngLike, ensure_rng


class FaultPolicy:
    """Decides whether a worker dies while executing a task."""

    def should_fail(self, worker_name: str, task_index: int) -> bool:
        raise NotImplementedError  # pragma: no cover


class NoFaults(FaultPolicy):
    """Healthy hardware."""

    def should_fail(self, worker_name: str, task_index: int) -> bool:
        return False


class RandomFaults(FaultPolicy):
    """Each task execution kills its worker with probability ``rate``.

    Optionally capped at ``max_failures`` total so a run cannot lose
    every worker.  The policy is shared across worker threads, so the
    cap check, the rate draw, and the counter increment happen in one
    critical section — two workers racing at ``max_failures - 1``
    cannot both observe headroom and overshoot the cap (and the
    generator itself is not thread-safe to begin with).
    """

    def __init__(
        self,
        rate: float,
        max_failures: Optional[int] = None,
        rng: RngLike = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("failure rate must be in [0, 1]")
        self.rate = float(rate)
        self.max_failures = max_failures
        self.failures = 0
        self._seed = rng
        self._rng = ensure_rng(rng)
        self._lock = threading.Lock()

    def should_fail(self, worker_name: str, task_index: int) -> bool:
        # cap check + draw + increment under one lock: atomic per task
        with self._lock:
            if (
                self.max_failures is not None
                and self.failures >= self.max_failures
            ):
                return False
            if self._rng.random() < self.rate:
                self.failures += 1
                return True
            return False

    def reset(self) -> None:
        """Restart the failure budget (and, when the policy was built
        from a seed, the random stream) so one policy can drive
        repeated benchmark runs with identical behavior."""
        with self._lock:
            self.failures = 0
            self._rng = ensure_rng(self._seed)


class ScriptedFaults(FaultPolicy):
    """Fail exactly the scripted ``(worker_name, task_index)`` pairs —
    for precise failure-path tests."""

    def __init__(self, script: set[tuple[str, int]]) -> None:
        self.script = set(script)

    def should_fail(self, worker_name: str, task_index: int) -> bool:
        return (worker_name, task_index) in self.script

"""A Dask-like distributed task executor.

Reproduces the execution semantics the paper relied on (§2.2.5):

* a **scheduler** that receives tasks from a client, assigns them to
  workers, and *reassigns* tasks whose worker died mid-task ("let
  workers fail, and have the scheduler reassign tasks to other workers
  in those scenarios");
* **workers** that each run one fitness evaluation at a time (the paper
  gave each Dask worker an entire Summit node);
* optional **nannies** that restart dead workers — with the paper's
  recommendation to disable them available (and benchmarked: restarts
  cannot fix hardware faults);
* a **client** with ``submit`` / ``map`` / ``gather``, the interface
  :func:`repro.evo.ops.eval_pool` fans evaluations out through;
* **fault injection** so the failure-handling paths are exercised
  deterministically in tests and benchmarks.

Execution is thread-based: the DeePMD surrogate's work is NumPy-bound
(which releases the GIL for large operations), and — decisively for a
reproduction — threads give deterministic, dependency-free behavior on
any machine.  The interface mirrors ``dask.distributed`` closely enough
that swapping a real Dask client into ``eval_pool`` is a one-line
change.
"""

from repro.distributed.future import Future, TaskState
from repro.distributed.scheduler import Scheduler, TaskRecord
from repro.distributed.worker import Nanny, Worker
from repro.distributed.client import Client, LocalCluster
from repro.distributed.faults import (
    FaultPolicy,
    NoFaults,
    RandomFaults,
    ScriptedFaults,
)

__all__ = [
    "Future",
    "TaskState",
    "Scheduler",
    "TaskRecord",
    "Worker",
    "Nanny",
    "Client",
    "LocalCluster",
    "FaultPolicy",
    "NoFaults",
    "RandomFaults",
    "ScriptedFaults",
]

"""Workers and nannies.

Each :class:`Worker` runs a thread that pulls tasks from the scheduler
— the analogue of one Dask worker owning one Summit node.  A worker
"dies" either when its fault policy fires (simulated hardware failure)
or when the task function raises :class:`WorkerFailure` directly; the
in-flight task is reported to the scheduler for reassignment.

A :class:`Nanny` watches a worker and restarts it on death.  The paper
found nannies counterproductive on Summit ("if the nanny observes that
its worker has prematurely terminated, the nanny will restart the
worker.  Worker failures may be due to hardware failures, in which case
a restart will not correct anything.  We found it best to disable
nannies"), so the default deployment runs without them; the scaling
benchmark measures both configurations.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.distributed.faults import FaultPolicy, NoFaults
from repro.distributed.scheduler import Scheduler
from repro.exceptions import WorkerFailure
from repro.injection import get_injector


class Worker:
    """A single-task-at-a-time execution thread.

    Each executed task is wrapped in a ``worker.task`` span (tags:
    worker, task, attempt) on the scheduler's tracer, and a
    ``workers_busy`` gauge on the scheduler's metrics registry tracks
    how many workers are mid-task — the worker-utilization view the
    trace report aggregates.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        name: str,
        fault_policy: Optional[FaultPolicy] = None,
    ) -> None:
        self.scheduler = scheduler
        self.name = name
        # with no explicit policy, a chaos injector installed via
        # repro.injection drives this worker's faults too
        self.fault_policy = fault_policy or get_injector() or NoFaults()
        #: slow-worker hook: only chaos injectors provide delays, plain
        #: fault policies don't
        self._delay_of = getattr(self.fault_policy, "worker_delay", None)
        self.tasks_executed = 0
        self._alive = False
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._busy_gauge = scheduler.metrics.gauge("workers_busy")
        self._executed_counter = scheduler.metrics.counter(
            "worker_tasks_executed_total"
        )

    @property
    def alive(self) -> bool:
        return self._alive

    def start(self) -> None:
        if self._alive:
            raise RuntimeError(f"worker {self.name} already running")
        self._stop.clear()
        self._alive = True
        self.scheduler.register_worker(self)
        self._thread = threading.Thread(
            target=self._run, name=f"worker-{self.name}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Graceful shutdown (finishes the current task)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()

    def join(self) -> None:
        if self._thread is not None:
            self._thread.join()

    def _run(self) -> None:
        tracer = self.scheduler.tracer
        obs = bool(getattr(tracer, "enabled", False))
        try:
            while not self._stop.is_set():
                record = self.scheduler.next_task()
                if record is None:
                    continue
                if self.fault_policy.should_fail(
                    self.name, self.tasks_executed
                ):
                    # simulated node failure: drop the task and die
                    if obs:
                        tracer.event(
                            "worker.fault",
                            worker=self.name,
                            task=record.key,
                        )
                    self.scheduler.worker_died(record, self.name)
                    return
                if self._delay_of is not None:
                    # injected straggler: stall before executing
                    delay = self._delay_of(self.name, self.tasks_executed)
                    if delay > 0.0:
                        if obs:
                            tracer.event(
                                "worker.slow",
                                worker=self.name,
                                task=record.key,
                                seconds=delay,
                            )
                        time.sleep(delay)
                if obs:
                    self._busy_gauge.inc()
                try:
                    if obs:
                        with tracer.span(
                            "worker.task",
                            worker=self.name,
                            task=record.key,
                            attempt=record.attempts,
                        ):
                            result = record.fn(
                                *record.args, **record.kwargs
                            )
                    else:
                        result = record.fn(*record.args, **record.kwargs)
                except WorkerFailure:
                    # the task function itself detected a node problem
                    if obs:
                        tracer.event(
                            "worker.fault",
                            worker=self.name,
                            task=record.key,
                        )
                    self.scheduler.worker_died(record, self.name)
                    return
                except BaseException as exc:  # noqa: BLE001
                    self.scheduler.task_erred(record, exc)
                else:
                    self.scheduler.task_done(record, result)
                finally:
                    if obs:
                        self._busy_gauge.dec()
                    self._executed_counter.inc()
                    self.tasks_executed += 1
        finally:
            self._alive = False
            self.scheduler.unregister_worker(self)


class Nanny:
    """Restarts its worker whenever it dies, until told to stop.

    ``max_restarts`` bounds futile restarting on genuinely broken
    hardware (the scenario that led the paper to disable nannies).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        name: str,
        fault_policy: Optional[FaultPolicy] = None,
        max_restarts: int = 10,
        poll_interval: float = 0.02,
    ) -> None:
        self.scheduler = scheduler
        self.name = name
        self.fault_policy = fault_policy
        self.max_restarts = int(max_restarts)
        self.poll_interval = float(poll_interval)
        self.restarts = 0
        self.worker = Worker(scheduler, name, fault_policy)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self.worker.start()
        self._thread = threading.Thread(
            target=self._watch, name=f"nanny-{self.name}", daemon=True
        )
        self._thread.start()

    def _watch(self) -> None:
        while not self._stop.is_set():
            if not self.worker.alive:
                if self.restarts >= self.max_restarts:
                    return
                self.restarts += 1
                self.worker = Worker(
                    self.scheduler, self.name, self.fault_policy
                )
                self.worker.start()
            time.sleep(self.poll_interval)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
        if self.worker.alive:
            self.worker.stop()

"""The fault-injection seam every layer consults.

The chaos harness (:mod:`repro.chaos`) needs to trigger failures deep
inside the scheduler, the workers, the evaluation engine, and the
durable store — but those layers must not import the harness (the
harness imports *them* for its invariant checks).  This module is the
dependency-free meeting point: a no-op :class:`FaultInjector` base
class plus a process-wide registry mirroring
:func:`repro.obs.trace.get_tracer` / ``set_tracer`` / ``use_tracer``.

Instrumented call sites resolve :func:`get_injector` at construction
time and consult it on their hot paths; with no injector installed
every hook is ``None``-cheap.  :class:`repro.chaos.Injector` subclasses
:class:`FaultInjector` (and the distributed layer's ``FaultPolicy``) to
drive all hooks from one scripted, seed-deterministic
:class:`repro.chaos.FaultPlan`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True)
class EvalFault:
    """What the engine should do to one dispatched candidate.

    ``exception`` simulates a transient evaluator crash (the candidate
    never reaches the backend); ``timeout`` marks the dispatch so the
    engine's pump treats it as overrunning its wall-clock budget even
    if the backend finishes.
    """

    exception: Optional[BaseException] = None
    timeout: bool = False


class FaultInjector:
    """No-op base: every hook reports "no fault here".

    One hook per instrumented site.  Sites pass enough context for a
    scripted plan to match deterministically; the return value is the
    injected effect (or the site's "healthy" value).
    """

    def should_fail(self, worker_name: str, task_index: int) -> bool:
        """Worker death before executing its next task (the
        ``FaultPolicy`` protocol — an injector is also a policy)."""
        return False

    def worker_delay(self, worker_name: str, task_index: int) -> float:
        """Seconds a slow worker sleeps before executing a task."""
        return 0.0

    def should_revoke(self, worker_name: str, task_index: int) -> bool:
        """Spot-style preemption: the worker is revoked mid-task and
        **not** replaced (capacity shrinks); its in-flight task is
        requeued to a survivor instead of failing."""
        return False

    def submit_delay(self, key: str) -> float:
        """Seconds the scheduler stalls one task submission."""
        return 0.0

    def evaluation_fault(self) -> Optional[EvalFault]:
        """Consulted by the engine once per backend dispatch."""
        return None

    def corrupt_cache_entry(self, path) -> bool:
        """Given the on-disk path of a just-inserted cache entry,
        garble it and return True; the cache then evicts its in-memory
        copy so the corruption is actually observable."""
        return False

    def journal_truncation(self) -> Optional[int]:
        """Bytes to chop from the journal tail after an append (a
        simulated torn write), or None for a clean commit."""
        return None


_global_injector: Optional[FaultInjector] = None
_global_lock = threading.Lock()


def get_injector() -> Optional[FaultInjector]:
    """The process-wide injector (None unless a chaos plan is active)."""
    return _global_injector


def set_injector(
    injector: Optional[FaultInjector],
) -> Optional[FaultInjector]:
    """Install ``injector`` globally (``None`` disables injection);
    returns the previous injector."""
    global _global_injector
    with _global_lock:
        previous = _global_injector
        _global_injector = injector
        return previous


@contextmanager
def use_injector(
    injector: Optional[FaultInjector],
) -> Iterator[Optional[FaultInjector]]:
    """Scoped :func:`set_injector` — restores the previous injector on
    exit.  ``use_injector(None)`` is a no-op scope, convenient for
    chaos-optional code paths."""
    previous = set_injector(injector)
    try:
        yield injector
    finally:
        set_injector(previous)

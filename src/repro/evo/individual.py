"""Individuals: genomes, fitnesses, UUIDs, and robust evaluation.

§2.2.4: "the LEAP ``DistributedIndividual`` class ... catches
exceptions that are raised during evaluation and assigns an IEEE 754
``NaN`` as the fitnesses.  However, NSGA-II sorts all individuals by
their fitnesses, and sorting values that include ``NaN``\\ s yields
undefined behavior.  Therefore we implemented a subclass ... that
overrode the default exception handling behavior and assigned
``MAXINT`` as fitnesses instead."  :class:`RobustIndividual` is that
subclass.
"""

from __future__ import annotations

import uuid as uuid_module
from typing import Any, Optional

import numpy as np

# re-exported for compatibility; repro.exceptions is the source of truth
from repro.exceptions import MAXINT


class Individual:
    """A candidate solution.

    Parameters
    ----------
    genome:
        Real-valued gene vector (copied to a float64 array).
    decoder / problem:
        Optional; when provided, :meth:`evaluate` decodes the genome
        and scores the phenome.

    Every individual is automatically assigned a UUID on creation
    (§2.2.4 step 2a) — the EA uses it to name training directories.
    """

    def __init__(
        self,
        genome,
        decoder: Optional[Any] = None,
        problem: Optional[Any] = None,
    ) -> None:
        self.genome = np.asarray(genome, dtype=np.float64).copy()
        self.decoder = decoder
        self.problem = problem
        self.fitness: Optional[np.ndarray] = None
        self.uuid: str = str(uuid_module.uuid4())
        self.rank: Optional[int] = None
        self.distance: Optional[float] = None
        #: arbitrary evaluation metadata (runtime, error strings, ...)
        self.metadata: dict[str, Any] = {}

    def decode(self) -> Any:
        """The phenome: decoded genome, or the raw genome if no decoder."""
        if self.decoder is None:
            return self.genome
        return self.decoder.decode(self.genome)

    def evaluate(self) -> "Individual":
        """Score this individual in place; exceptions propagate.

        Problems exposing ``evaluate_with_metadata`` (returning a
        ``(fitness, metadata_dict)`` pair) get their metadata — e.g.
        the training runtime the paper tracks — merged into
        :attr:`metadata`.
        """
        if self.problem is None:
            raise ValueError("individual has no problem to evaluate against")
        if hasattr(self.problem, "evaluate_with_metadata"):
            fitness, meta = self.problem.evaluate_with_metadata(
                self.decode(), uuid=self.uuid
            )
            self.metadata.update(meta)
        else:
            fitness = self.problem.evaluate(self.decode())
        self.fitness = np.atleast_1d(np.asarray(fitness, dtype=np.float64))
        return self

    @property
    def is_evaluated(self) -> bool:
        return self.fitness is not None

    @property
    def is_viable(self) -> bool:
        """False when evaluation failed (any fitness at MAXINT)."""
        return self.fitness is not None and bool(
            np.all(self.fitness < MAXINT)
        )

    def clone(self) -> "Individual":
        """A fresh unevaluated copy with its own UUID."""
        child = type(self)(
            self.genome.copy(), decoder=self.decoder, problem=self.problem
        )
        return child

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fit = (
            np.array2string(self.fitness, precision=4)
            if self.fitness is not None
            else "unevaluated"
        )
        return (
            f"{type(self).__name__}(genome={np.array2string(self.genome, precision=4)},"
            f" fitness={fit})"
        )


class RobustIndividual(Individual):
    """Evaluation failures become ``MAXINT`` fitnesses (§2.2.4).

    Timeouts, divergence, bad configurations, and worker faults all
    raise; this subclass catches them, records the error message in
    :attr:`Individual.metadata`, and assigns the all-``MAXINT`` fitness
    so the individual sorts strictly worse than every viable solution —
    implicitly optimizing away from fatal hyperparameter combinations
    and long runtimes.
    """

    #: number of objectives to fill with MAXINT on failure
    n_objectives: int = 2

    def evaluate(self) -> "RobustIndividual":
        try:
            return super().evaluate()  # type: ignore[return-value]
        except Exception as exc:  # noqa: BLE001 - the paper catches all
            self.fitness = np.full(self.n_objectives, MAXINT)
            self.metadata["error"] = f"{type(exc).__name__}: {exc}"
            # evaluators may attach partial metadata (e.g. the short
            # runtime of an aborted training) to the exception
            self.metadata.update(getattr(exc, "metadata", {}))
            # a MAXINT fitness alone is ambiguous downstream (a
            # genuinely terrible-but-finished training looks the same);
            # the explicit flag disambiguates
            self.metadata.setdefault("failed", True)
            self.metadata.setdefault(
                "failure_cause", f"{type(exc).__name__}: {exc}"
            )
            return self

"""LEAP-style evolutionary-computation toolkit.

Reimplements, from scratch, the slice of the Library for Evolutionary
Algorithms in Python (LEAP) that the paper builds on (§2.1.4, §2.2.3):

* individuals carrying real-valued genomes, UUIDs, and array fitnesses,
  including the paper's robust subclass that converts evaluation
  exceptions into ``MAXINT`` fitnesses instead of LEAP's NaN default
  (NaNs make non-dominated sorting undefined — §2.2.4);
* decoders, including the floor-modulus categorical decoder (§2.2.2);
* generator-based pipeline operators composed with :func:`pipe`
  (Listing 1): ``random_selection``, ``clone``, ``mutate_gaussian``
  with per-gene standard deviations and hard bounds, ``eval_pool`` for
  distributed evaluation, and ``truncation_selection``;
* NSGA-II support: the classic fast non-dominated sort (Deb 2002) and
  the faster rank-ordinal sort (Burlacu 2022) the paper adopted, plus
  crowding-distance calculation, as both plain functions and pipeline
  operators;
* mutation annealing (×0.85 per generation) and the optional
  1/5-success rule the paper mentions but disables.
"""

from repro.evo.individual import Individual, RobustIndividual, MAXINT
from repro.evo.decoder import (
    Decoder,
    FloorModDecoder,
    IdentityDecoder,
    MixedVectorDecoder,
)
from repro.evo.problem import (
    ConstantProblem,
    FunctionProblem,
    Problem,
)
from repro.evo.ops import (
    clone,
    eval_pool,
    evaluate,
    mutate_gaussian,
    pipe,
    pool,
    random_selection,
    tournament_selection,
    truncation_selection,
)
from repro.evo.nsga2 import (
    crowding_distance,
    crowding_distance_calc,
    fast_nondominated_sort,
    rank_ordinal_sort,
    rank_ordinal_sort_op,
    nsga2_select,
)
from repro.evo.annealing import AnnealingSchedule, OneFifthSuccessRule
from repro.evo.algorithm import GenerationRecord, generational_nsga2
from repro.evo.asynchronous import SteadyStateRecord, steady_state_nsga2
from repro.evo.crossover import (
    blend_crossover,
    sbx_crossover,
    uniform_crossover,
)

__all__ = [
    "Individual",
    "RobustIndividual",
    "MAXINT",
    "Decoder",
    "IdentityDecoder",
    "FloorModDecoder",
    "MixedVectorDecoder",
    "Problem",
    "FunctionProblem",
    "ConstantProblem",
    "pipe",
    "random_selection",
    "clone",
    "mutate_gaussian",
    "evaluate",
    "eval_pool",
    "pool",
    "tournament_selection",
    "truncation_selection",
    "fast_nondominated_sort",
    "rank_ordinal_sort",
    "rank_ordinal_sort_op",
    "crowding_distance",
    "crowding_distance_calc",
    "nsga2_select",
    "AnnealingSchedule",
    "OneFifthSuccessRule",
    "GenerationRecord",
    "generational_nsga2",
    "SteadyStateRecord",
    "steady_state_nsga2",
    "uniform_crossover",
    "blend_crossover",
    "sbx_crossover",
]

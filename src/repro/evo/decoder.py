"""Genome decoders.

§2.2.2: real-valued genes that stand for categorical parameters are
mapped to strings by "taking the floor of the random float then taking
the modulus of the resulting value against the number of possible
string values".  E.g. a gene value 5.78 over the 3 choices
{"linear", "sqrt", "none"} decodes as ``floor(5.78) % 3 == 2`` →
``"none"``.  This keeps Gaussian mutation applicable to every gene.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.exceptions import DecodeError


class Decoder:
    """Base decoder: genome (ndarray) → phenome (problem-specific)."""

    def decode(self, genome: np.ndarray) -> Any:  # pragma: no cover
        raise NotImplementedError


class IdentityDecoder(Decoder):
    """Phenome is the genome itself (fully phenotypic representation)."""

    def decode(self, genome: np.ndarray) -> np.ndarray:
        return genome


def floor_mod_choice(value: float, choices: Sequence[str]) -> str:
    """The paper's floor-then-modulus categorical mapping (§2.2.2).

    Works for any real gene value, including negatives (Python's
    modulus keeps the result in range).
    """
    if not choices:
        raise DecodeError("no choices to decode into")
    if not math.isfinite(value):
        raise DecodeError(f"cannot decode non-finite gene value {value!r}")
    return choices[int(math.floor(value)) % len(choices)]


class FloorModDecoder(Decoder):
    """Decode an all-categorical genome into a tuple of strings."""

    def __init__(self, choices_per_gene: Sequence[Sequence[str]]) -> None:
        self.choices_per_gene = [list(c) for c in choices_per_gene]

    def decode(self, genome: np.ndarray) -> tuple[str, ...]:
        if len(genome) != len(self.choices_per_gene):
            raise DecodeError(
                f"genome length {len(genome)} != expected "
                f"{len(self.choices_per_gene)}"
            )
        return tuple(
            floor_mod_choice(float(g), choices)
            for g, choices in zip(genome, self.choices_per_gene)
        )


class MixedVectorDecoder(Decoder):
    """Decode a genome of mixed real and categorical genes into a dict.

    ``spec`` is an ordered list of ``(name, None)`` for real genes or
    ``(name, choices)`` for categorical genes; the decoded phenome maps
    each name to either the float value or the chosen string.  This is
    the general form of the paper's seven-gene representation.
    """

    def __init__(
        self, spec: Sequence[tuple[str, Sequence[str] | None]]
    ) -> None:
        if not spec:
            raise DecodeError("decoder spec is empty")
        names = [name for name, _ in spec]
        if len(set(names)) != len(names):
            raise DecodeError("duplicate gene names in decoder spec")
        self.spec = [
            (name, list(choices) if choices is not None else None)
            for name, choices in spec
        ]

    def __len__(self) -> int:
        return len(self.spec)

    def decode(self, genome: np.ndarray) -> dict[str, Any]:
        if len(genome) != len(self.spec):
            raise DecodeError(
                f"genome length {len(genome)} != spec length {len(self.spec)}"
            )
        phenome: dict[str, Any] = {}
        for value, (name, choices) in zip(genome, self.spec):
            if choices is None:
                phenome[name] = float(value)
            else:
                phenome[name] = floor_mod_choice(float(value), choices)
        return phenome

"""Generator-based pipeline operators (the Listing 1 vocabulary).

LEAP composes EAs from operators connected by :func:`pipe`: a source
population feeds a chain of generator functions, and a *sink* operator
(here :func:`eval_pool` / :func:`pool`) pulls as many individuals
through the chain as it needs.  The operators below reproduce the ones
the paper's reproduction pipeline uses, with the same semantics:

* :func:`random_selection` — an infinite stream of uniformly chosen
  parents ("For each offspring, a parent is randomly selected");
* :func:`clone` — fresh copies with new UUIDs;
* :func:`mutate_gaussian` — Gaussian mutation of **all** genes
  (``expected_num_mutations='isotropic'``) with per-gene standard
  deviations and hard bounds;
* :func:`eval_pool` — accumulate ``size`` offspring, then evaluate
  them (optionally fanning out through a distributed client);
* :func:`truncation_selection` — keep the best ``size`` by a sort key
  (the NSGA-II ``(-rank, distance)`` key in the paper).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.engine import (
    EvaluationEngine,
    evaluate_individual,
    evaluate_stream,
)
from repro.evo.individual import Individual
from repro.rng import RngLike, ensure_rng


def pipe(source: Any, *operators: Callable[[Any], Any]) -> Any:
    """``toolz.pipe`` clone: thread ``source`` through ``operators``."""
    value = source
    for op in operators:
        value = op(value)
    return value


# ----------------------------------------------------------------------
# stream sources / transforms
# ----------------------------------------------------------------------
def random_selection(
    population: Sequence[Individual], rng: RngLike = None
) -> Iterator[Individual]:
    """Infinite stream of uniformly random parents from ``population``."""
    gen = ensure_rng(rng)
    pop = list(population)
    if not pop:
        raise ValueError("cannot select from an empty population")
    while True:
        yield pop[int(gen.integers(len(pop)))]


def clone(stream: Iterable[Individual]) -> Iterator[Individual]:
    """Copy each incoming individual (fresh UUID, unevaluated)."""
    for ind in stream:
        yield ind.clone()


def mutate_gaussian(
    std: np.ndarray | float,
    expected_num_mutations: str | float = "isotropic",
    hard_bounds: Optional[np.ndarray] = None,
    rng: RngLike = None,
) -> Callable[[Iterable[Individual]], Iterator[Individual]]:
    """Gaussian mutation operator factory.

    Parameters
    ----------
    std:
        Per-gene standard deviations (or a scalar).  **Read at mutation
        time**, so passing the array stored in ``context['std']`` lets
        the annealing schedule update it between generations (Listing 1
        reads ``context['std']`` for exactly this reason).
    expected_num_mutations:
        ``'isotropic'`` mutates every gene (the paper's setting); a
        number ``k`` mutates each gene with probability ``k / n_genes``.
    hard_bounds:
        ``(n_genes, 2)`` array of ``(low, high)`` clip limits.
    """
    bounds = None if hard_bounds is None else np.asarray(hard_bounds, float)
    gen = ensure_rng(rng)

    def op(stream: Iterable[Individual]) -> Iterator[Individual]:
        for ind in stream:
            sigmas = np.broadcast_to(
                np.asarray(std, dtype=np.float64), ind.genome.shape
            )
            noise = gen.normal(0.0, 1.0, size=ind.genome.shape) * sigmas
            if expected_num_mutations == "isotropic":
                mask = 1.0
            else:
                p = float(expected_num_mutations) / len(ind.genome)
                mask = (gen.random(ind.genome.shape) < p).astype(float)
            ind.genome = ind.genome + noise * mask
            if bounds is not None:
                ind.genome = np.clip(ind.genome, bounds[:, 0], bounds[:, 1])
            ind.fitness = None
            yield ind

    return op


def evaluate(stream: Iterable[Individual]) -> Iterator[Individual]:
    """Evaluate each individual inline as it flows through.

    The per-individual loop lives in the engine layer
    (:func:`repro.engine.backends.evaluate_stream`) — the one
    sanctioned scalar evaluation loop outside the batch path.
    """
    return evaluate_stream(stream)


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
def pool(size: int) -> Callable[[Iterable[Individual]], list[Individual]]:
    """Pull exactly ``size`` individuals from the stream into a list."""
    if size < 1:
        raise ValueError("pool size must be >= 1")

    def op(stream: Iterable[Individual]) -> list[Individual]:
        it = iter(stream)
        out = []
        for _ in range(size):
            try:
                out.append(next(it))
            except StopIteration:
                raise ValueError(
                    f"stream exhausted after {len(out)} of {size} individuals"
                ) from None
        return out

    return op


#: module-level alias kept for distributed backends and older callers
_evaluate_individual = evaluate_individual


def eval_pool(
    client: Any = None,
    size: int = 1,
    dedup: bool = False,
    engine: Optional[EvaluationEngine] = None,
) -> Callable[[Iterable[Individual]], list[Individual]]:
    """Accumulate ``size`` offspring, then evaluate them all.

    The actual lifecycle — dedup of genome-identical offspring, cache
    probing, fan-out through a client, worker-death → MAXINT policy —
    lives in :class:`repro.engine.EvaluationEngine`; this sink just
    feeds it one batch.  Pass ``engine`` to share one engine (and its
    statistics) across generations; otherwise a transient engine is
    built from ``client``/``dedup``, which evaluates in-process when
    ``client`` is None and fans out through the client's futures
    otherwise (the Dask pattern of §2.2.5).
    """
    take = pool(size)

    def op(stream: Iterable[Individual]) -> list[Individual]:
        offspring = take(stream)
        eng = (
            engine
            if engine is not None
            else EvaluationEngine(client=client, dedup=dedup)
        )
        return eng.evaluate(offspring)

    return op


# ----------------------------------------------------------------------
# selection over materialized pools
# ----------------------------------------------------------------------
def truncation_selection(
    size: int, key: Optional[Callable[[Individual], Any]] = None
) -> Callable[[Sequence[Individual]], list[Individual]]:
    """Keep the ``size`` best individuals, largest key first.

    With no ``key``, single-objective minimization fitness is used
    (smaller is better).  The paper's NSGA-II pipeline passes
    ``key=lambda x: (-x.rank, x.distance)`` so lower ranks win and ties
    break toward larger crowding distance.
    """

    def op(population: Sequence[Individual]) -> list[Individual]:
        pop = list(population)
        if len(pop) < size:
            raise ValueError(
                f"cannot truncate {len(pop)} individuals down to {size}"
            )
        if key is None:
            ordered = sorted(pop, key=lambda ind: float(ind.fitness[0]))
        else:
            ordered = sorted(pop, key=key, reverse=True)
        return ordered[:size]

    return op


def tournament_selection(
    population: Sequence[Individual],
    rng: RngLike = None,
    k: int = 2,
    key: Optional[Callable[[Individual], Any]] = None,
) -> Iterator[Individual]:
    """Infinite stream of ``k``-way tournament winners.

    Used by the single-objective weighted-sum baseline; the default
    key is scalar minimization fitness.
    """
    gen = ensure_rng(rng)
    pop = list(population)
    if not pop:
        raise ValueError("cannot select from an empty population")

    def better(a: Individual, b: Individual) -> Individual:
        if key is not None:
            return a if key(a) > key(b) else b
        return a if float(a.fitness[0]) <= float(b.fitness[0]) else b

    while True:
        winner = pop[int(gen.integers(len(pop)))]
        for _ in range(k - 1):
            challenger = pop[int(gen.integers(len(pop)))]
            winner = better(winner, challenger)
        yield winner

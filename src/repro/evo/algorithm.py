"""A generational NSGA-II driver assembled from the pipeline operators.

This is the reproduction of the paper's custom NSGA-II (§2.2.3): LEAP's
``nsga2()`` convenience function was bypassed in favour of composing
the lower-level operators directly, so that the per-generation mutation
annealing could be inserted.  Each generation rebuilds exactly the
Listing 1 pipeline::

    offspring = pipe(parents,
                     ops.random_selection,
                     ops.clone,
                     mutate_gaussian(std=context['std'],
                                     expected_num_mutations='isotropic',
                                     hard_bounds=bounds),
                     eval_pool(client=client, size=len(parents)),
                     rank_ordinal_sort(parents=parents),
                     crowding_distance_calc,
                     ops.truncation_selection(size=len(parents),
                                              key=lambda x: (-x.rank,
                                                             x.distance)))

after which the standard-deviation vector is multiplied by the
annealing factor (0.85).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Type

import numpy as np

from repro.context import Context
from repro.engine import EvaluationEngine
from repro.evo import ops
from repro.evo.annealing import AnnealingSchedule
from repro.evo.decoder import Decoder
from repro.evo.individual import Individual, RobustIndividual
from repro.evo.nsga2 import (
    crowding_distance_calc,
    rank_ordinal_sort_op,
)
from repro.evo.problem import Problem
from repro.obs.live import ConvergenceTelemetry
from repro.obs.trace import NullTracer, Tracer, get_tracer
from repro.rng import RngLike, ensure_rng


@dataclass
class GenerationRecord:
    """What happened in one generation of one EA run.

    ``evaluated`` holds every model trained this generation (the data
    behind the paper's Fig. 1 level plots); ``population`` is the
    post-selection parent pool.
    """

    generation: int
    population: list[Individual]
    evaluated: list[Individual]
    std: np.ndarray
    n_failures: int = 0

    def fitness_matrix(self) -> np.ndarray:
        return np.asarray([ind.fitness for ind in self.population])

    def evaluated_fitness_matrix(self) -> np.ndarray:
        return np.asarray([ind.fitness for ind in self.evaluated])


def _make_individual(
    genome: np.ndarray,
    decoder: Optional[Decoder],
    problem: Problem,
    individual_cls: Type[Individual],
) -> Individual:
    ind = individual_cls(genome, decoder=decoder, problem=problem)
    # robust individuals fill this many objectives with MAXINT on failure
    ind.n_objectives = problem.n_objectives  # type: ignore[attr-defined]
    return ind


def random_initial_population(
    pop_size: int,
    init_ranges: np.ndarray,
    problem: Problem,
    decoder: Optional[Decoder] = None,
    individual_cls: Type[Individual] = RobustIndividual,
    rng: RngLike = None,
) -> list[Individual]:
    """Uniform random genomes within the per-gene initialization ranges
    (Table 1, column 2)."""
    gen = ensure_rng(rng)
    ranges = np.asarray(init_ranges, dtype=np.float64)
    if ranges.ndim != 2 or ranges.shape[1] != 2:
        raise ValueError("init_ranges must be an (n_genes, 2) array")
    population = []
    for _ in range(pop_size):
        genome = gen.uniform(ranges[:, 0], ranges[:, 1])
        population.append(
            _make_individual(genome, decoder, problem, individual_cls)
        )
    return population


def _count_failures(individuals: Sequence[Individual]) -> int:
    return sum(1 for ind in individuals if not ind.is_viable)


@dataclass
class ResumeState:
    """Mid-run EA state reconstructed from a campaign journal.

    ``parents`` is the post-selection population of ``generation``,
    ``std`` the annealed deviations journaled with it, and ``rng`` a
    generator restored to the exact post-generation bit-generator
    state — together they make the continued run bit-identical to an
    uninterrupted one.
    """

    parents: list[Individual]
    generation: int
    std: np.ndarray
    rng: np.random.Generator


def _capture_rng_state(rng: np.random.Generator) -> Any:
    """JSON-able bit-generator state (None for exotic generators)."""
    try:
        return rng.bit_generator.state
    except AttributeError:  # pragma: no cover - non-numpy generator
        return None


def generational_nsga2(
    problem: Problem,
    init_ranges: np.ndarray,
    initial_std: np.ndarray,
    pop_size: int,
    generations: int,
    hard_bounds: Optional[np.ndarray] = None,
    decoder: Optional[Decoder] = None,
    individual_cls: Type[Individual] = RobustIndividual,
    client: Any = None,
    anneal_factor: float = 0.85,
    sort_algorithm: str = "rank_ordinal",
    rng: RngLike = None,
    context: Optional[Context] = None,
    callback: Optional[Callable[[GenerationRecord], None]] = None,
    tracer: Optional[NullTracer | Tracer] = None,
    dedup: bool = False,
    journal: Any = None,
    resume_from: Optional[ResumeState] = None,
    engine: Optional[EvaluationEngine] = None,
    batch: bool = False,
    pipeline: bool = False,
    batch_chunk: Optional[int] = None,
    stopper: Any = None,
) -> list[GenerationRecord]:
    """Run one NSGA-II deployment; returns one record per generation.

    ``generations`` counts EA steps after the random initialization, so
    the returned list has ``generations + 1`` records with generation 0
    being the initial population — matching the paper's accounting
    ("Generation 0 was the initial random population", 7 generations of
    trainings total for 6 EA steps).

    Each generation runs inside an ``ea.generation`` span on ``tracer``
    (default: the process-wide tracer), which parents the in-process
    evaluation spans and frames the distributed ones.

    ``dedup`` collapses genome-identical offspring to one evaluation
    per generation; ``journal`` (a
    :class:`repro.store.journal.CampaignJournal`, duck-typed) receives
    each generation record plus the post-generation RNG state before
    the generation commits; ``resume_from`` continues a journaled run
    mid-stream — the returned list then holds only the *new*
    generations (the caller already has the restored prefix).

    All evaluations flow through one
    :class:`repro.engine.EvaluationEngine` (batch-scoped dedup, so the
    within-generation semantics — and bit-identical resume — are
    preserved); pass ``engine`` to supply a configured one, otherwise
    it is built from ``client``/``dedup``.

    ``batch`` routes each generation through the engine's batch data
    plane (:meth:`~repro.engine.EvaluationEngine.evaluate_batch`) —
    one submission per generation, chunked by ``batch_chunk`` (or the
    backend's hint) — instead of the scalar submit-per-individual
    loop.  Fronts, journal records, and engine statistics are
    bit-identical either way; batch is purely a throughput choice.
    ``pipeline`` (implies ``batch``) additionally overlaps each
    generation's commit bookkeeping — the journal write, telemetry,
    and ``callback`` — with the *next* generation's evaluations:
    offspring are submitted non-blocking, the previous record commits
    while workers evaluate, then the batch is drained.  Records,
    fronts, and journaled RNG states are unchanged (states are
    captured eagerly, before the next generation's draws); only the
    wall-clock instant the callback fires moves.

    ``stopper`` (a :class:`repro.mo.stopping.HypervolumeStopper`,
    duck-typed: ``observe(record) -> bool``) is consulted after every
    generation; True halts the run early.  Stopping only truncates the
    deterministic generation sequence, so a stopped run's records are
    bit-identical to the same-length prefix of the unstopped run.
    """
    if pipeline:
        batch = True
    trc = tracer if tracer is not None else get_tracer()
    ctx = context if context is not None else Context()
    #: campaign-fixed reference point → comparable hypervolume gauges
    telemetry = ConvergenceTelemetry()
    eng = (
        engine
        if engine is not None
        else EvaluationEngine(
            client=client, dedup=dedup, dedup_scope="batch", tracer=trc
        )
    )
    def _evaluate(offspring: list[Individual]) -> list[Individual]:
        if batch:
            return eng.evaluate_batch(offspring, chunk_size=batch_chunk)
        return eng.evaluate(offspring)

    def _commit(record: GenerationRecord, rng_state: Any) -> None:
        """Journal + telemetry + callback for one finished generation
        (write-ahead: the journal sees it before the in-memory list)."""
        if journal is not None:
            journal.append_generation(record, rng_state=rng_state)
        records.append(record)
        telemetry.observe_generation(
            record.generation,
            record.population,
            evaluated=len(record.evaluated),
            failures=record.n_failures,
        )
        if callback is not None:
            callback(record)

    #: pipeline mode: the latest finished generation, not yet
    #: committed — its commit overlaps the next generation's batch
    pending: Optional[tuple[GenerationRecord, Any]] = None
    if resume_from is not None:
        gen_rng = resume_from.rng
        schedule = AnnealingSchedule(
            resume_from.std, factor=anneal_factor, context=ctx
        )
        parents = list(resume_from.parents)
        records: list[GenerationRecord] = []
        start_generation = resume_from.generation + 1
    else:
        gen_rng = ensure_rng(rng)
        schedule = AnnealingSchedule(
            initial_std, factor=anneal_factor, context=ctx
        )
        records = []
        with trc.span("ea.generation", generation=0) as span:
            parents = random_initial_population(
                pop_size,
                init_ranges,
                problem,
                decoder=decoder,
                individual_cls=individual_cls,
                rng=gen_rng,
            )
            parents = _evaluate(parents)
            record0 = GenerationRecord(
                generation=0,
                population=list(parents),
                evaluated=list(parents),
                std=schedule.current.copy(),
                n_failures=_count_failures(parents),
            )
            span.tag(evaluated=len(parents), failures=record0.n_failures)
        if pipeline:
            pending = (record0, _capture_rng_state(gen_rng))
        else:
            _commit(record0, _capture_rng_state(gen_rng))
        if stopper is not None and stopper.observe(record0):
            if pending is not None:
                _commit(*pending)
            return records
        start_generation = 1
    for generation in range(start_generation, generations + 1):
        with trc.span("ea.generation", generation=generation) as span:
            offspring = ops.pipe(
                parents,
                lambda pop: ops.random_selection(pop, rng=gen_rng),
                ops.clone,
                ops.mutate_gaussian(
                    std=ctx["std"],
                    expected_num_mutations="isotropic",
                    hard_bounds=hard_bounds,
                    rng=gen_rng,
                ),
                ops.pool(len(parents)),
            )
            if pipeline:
                # non-blocking submission: workers start on this
                # generation while the previous one's commit (journal
                # write, telemetry, callback) runs, then drain
                eng.submit_batch(
                    offspring, chunk_size=batch_chunk, new_batch=True
                )
                if pending is not None:
                    _commit(*pending)
                    pending = None
                eng.finish_batch()
            else:
                offspring = _evaluate(offspring)
            combined = rank_ordinal_sort_op(
                parents=parents, algorithm=sort_algorithm
            )(offspring)
            crowded = crowding_distance_calc(combined)
            parents = ops.truncation_selection(
                size=pop_size, key=lambda x: (-x.rank, x.distance)
            )(crowded)
            schedule.step()
            record = GenerationRecord(
                generation=generation,
                population=list(parents),
                evaluated=list(offspring),
                std=schedule.current.copy(),
                n_failures=_count_failures(offspring),
            )
            span.tag(evaluated=len(offspring), failures=record.n_failures)
        # the RNG state is captured here, before the next generation
        # draws, even when the commit itself is deferred (pipeline)
        if pipeline:
            pending = (record, _capture_rng_state(gen_rng))
        else:
            _commit(record, _capture_rng_state(gen_rng))
        if stopper is not None and stopper.observe(record):
            break
    if pending is not None:
        _commit(*pending)
    return records

"""Asynchronous steady-state multiobjective EA.

The paper's deployment is generational: all 100 evaluations of a
generation must finish before the next starts, so fast trainings idle
while the slowest (large-``rcut``) training holds the barrier.  The
authors' own prior work (Scott, Coletti et al., "Avoiding excess
computation in asynchronous evolutionary algorithms", cited in §2.2.5)
replaces the barrier with a steady-state scheme: whenever *any*
evaluation finishes, one new offspring is bred from the current
population and submitted immediately, keeping every node busy.

:func:`steady_state_nsga2` implements that scheme on top of the same
building blocks as the generational driver — robust individuals,
Gaussian mutation with annealed deviations, NSGA-II environmental
selection — using any client with ``submit``/futures semantics
(:class:`repro.distributed.Client` or a real Dask client).  The
``bench_async_vs_generational`` benchmark quantifies the barrier cost
the paper's synchronous deployment pays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional, Type

import numpy as np

from repro.context import Context
from repro.evo.annealing import AnnealingSchedule
from repro.evo.decoder import Decoder
from repro.evo.individual import Individual, RobustIndividual
from repro.evo.nsga2 import nsga2_select
from repro.evo.ops import _evaluate_individual
from repro.evo.problem import Problem
from repro.rng import RngLike, ensure_rng


@dataclass
class SteadyStateRecord:
    """Outcome of one steady-state run."""

    population: list[Individual]
    evaluated: list[Individual] = field(default_factory=list)
    evaluations: int = 0
    wall_time: float = 0.0
    n_failures: int = 0


def steady_state_nsga2(
    problem: Problem,
    init_ranges: np.ndarray,
    initial_std: np.ndarray,
    pop_size: int,
    max_evaluations: int,
    client: Any,
    hard_bounds: Optional[np.ndarray] = None,
    decoder: Optional[Decoder] = None,
    individual_cls: Type[Individual] = RobustIndividual,
    anneal_factor: float = 0.85,
    anneal_every: Optional[int] = None,
    rng: RngLike = None,
) -> SteadyStateRecord:
    """Barrier-free NSGA-II: breed-on-completion.

    Parameters mirror :func:`repro.evo.algorithm.generational_nsga2`;
    ``max_evaluations`` bounds the total budget (the generational
    equivalent of ``pop_size * (generations + 1)``), and
    ``anneal_every`` applies the ×``anneal_factor`` decay after that
    many completions (default: every ``pop_size`` completions, matching
    the generational schedule in expectation).
    """
    gen_rng = ensure_rng(rng)
    if max_evaluations < pop_size:
        raise ValueError("budget must cover the initial population")
    anneal_every = anneal_every or pop_size
    schedule = AnnealingSchedule(
        initial_std, factor=anneal_factor, context=Context()
    )
    ranges = np.asarray(init_ranges, dtype=np.float64)
    bounds = None if hard_bounds is None else np.asarray(hard_bounds)

    def make_random() -> Individual:
        genome = gen_rng.uniform(ranges[:, 0], ranges[:, 1])
        ind = individual_cls(genome, decoder=decoder, problem=problem)
        ind.n_objectives = problem.n_objectives  # type: ignore[attr-defined]
        return ind

    def breed(population: list[Individual]) -> Individual:
        parent = population[int(gen_rng.integers(len(population)))]
        child = parent.clone()
        sigmas = np.broadcast_to(schedule.current, child.genome.shape)
        child.genome = child.genome + gen_rng.normal(
            0.0, 1.0, size=child.genome.shape
        ) * sigmas
        if bounds is not None:
            child.genome = np.clip(
                child.genome, bounds[:, 0], bounds[:, 1]
            )
        return child

    start = time.monotonic()
    record = SteadyStateRecord(population=[])
    # seed the pipeline with the random initial population
    in_flight = {}
    for _ in range(pop_size):
        ind = make_random()
        in_flight[client.submit(_evaluate_individual, ind)] = ind
    submitted = pop_size
    population: list[Individual] = []
    completions = 0
    while in_flight:
        # poll for any completed future (as_completed semantics)
        done = [f for f in in_flight if f.done()]
        if not done:
            time.sleep(0.001)
            continue
        for future in done:
            in_flight.pop(future)
            evaluated = future.result()
            record.evaluated.append(evaluated)
            completions += 1
            if not evaluated.is_viable:
                record.n_failures += 1
            population.append(evaluated)
            if len(population) > pop_size:
                population = nsga2_select(population, pop_size)
            if completions % anneal_every == 0:
                schedule.step()
            if submitted < max_evaluations:
                child = breed(population)
                in_flight[
                    client.submit(_evaluate_individual, child)
                ] = child
                submitted += 1
    record.population = nsga2_select(
        population, min(pop_size, len(population))
    )
    record.evaluations = completions
    record.wall_time = time.monotonic() - start
    return record

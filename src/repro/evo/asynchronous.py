"""Asynchronous steady-state multiobjective EA.

The paper's deployment is generational: all 100 evaluations of a
generation must finish before the next starts, so fast trainings idle
while the slowest (large-``rcut``) training holds the barrier.  The
authors' own prior work (Scott, Coletti et al., "Avoiding excess
computation in asynchronous evolutionary algorithms", cited in §2.2.5)
replaces the barrier with a steady-state scheme: whenever *any*
evaluation finishes, one new offspring is bred from the current
population and submitted immediately, keeping every node busy.

:func:`steady_state_nsga2` implements that scheme on top of the same
:class:`repro.engine.EvaluationEngine` that powers the generational
driver, so it inherits the full evaluation lifecycle — run-scoped
genome dedup, cache probing (a revisited phenome never retrains),
per-evaluation journaling, tracer spans, and the exception→MAXINT
policy — instead of a bespoke submit loop.  The
``bench_async_vs_generational`` benchmark quantifies the barrier cost
the paper's synchronous deployment pays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Type

import numpy as np

from repro.context import Context
from repro.engine import EvaluationEngine
from repro.evo.annealing import AnnealingSchedule
from repro.evo.decoder import Decoder
from repro.evo.individual import Individual, RobustIndividual
from repro.evo.nsga2 import nsga2_select
from repro.evo.problem import Problem
from repro.obs.live import ConvergenceTelemetry
from repro.obs.trace import get_tracer
from repro.rng import RngLike, ensure_rng


@dataclass
class SteadyStateRecord:
    """Outcome of one steady-state run.

    ``completions`` counts every candidate the driver consumed;
    ``evaluations`` only the fresh trainings the engine actually ran —
    cache hits and duplicate genomes are broken out separately, so a
    resumed (cache-warm) run no longer reports replayed results as new
    trainings.
    """

    population: list[Individual]
    evaluated: list[Individual] = field(default_factory=list)
    evaluations: int = 0
    completions: int = 0
    cache_hits: int = 0
    dedup_hits: int = 0
    wall_time: float = 0.0
    n_failures: int = 0


def steady_state_nsga2(
    problem: Problem,
    init_ranges: np.ndarray,
    initial_std: np.ndarray,
    pop_size: int,
    max_evaluations: int,
    client: Any = None,
    hard_bounds: Optional[np.ndarray] = None,
    decoder: Optional[Decoder] = None,
    individual_cls: Type[Individual] = RobustIndividual,
    anneal_factor: float = 0.85,
    anneal_every: Optional[int] = None,
    rng: RngLike = None,
    engine: Optional[EvaluationEngine] = None,
    journal: Any = None,
    tracer: Any = None,
    callback: Optional[Callable[[Individual, int], None]] = None,
    stopper: Any = None,
) -> SteadyStateRecord:
    """Barrier-free NSGA-II: breed-on-completion.

    Parameters mirror :func:`repro.evo.algorithm.generational_nsga2`;
    ``max_evaluations`` bounds the total budget (the generational
    equivalent of ``pop_size * (generations + 1)``), and
    ``anneal_every`` applies the ×``anneal_factor`` decay after that
    many completions (default: every ``pop_size`` completions, matching
    the generational schedule in expectation).

    ``client=None`` evaluates inline (deterministic completion order,
    which is what makes cache-driven resume replay exactly); pass a
    futures client for real asynchrony, or a pre-configured ``engine``
    to control dedup/journal/timeout directly.  ``journal`` (duck-typed
    :class:`repro.store.journal.CampaignJournal`) receives every
    completed evaluation; ``callback(individual, completions)`` fires
    on each completion.

    ``stopper`` (duck-typed ``observe_front(window, population) ->
    bool``, e.g. a :class:`repro.mo.stopping.HypervolumeStopper`) is
    consulted at every annealing-window boundary — the steady-state
    generational analogue; True stops breeding new candidates and the
    run drains what is already in flight.
    """
    gen_rng = ensure_rng(rng)
    if max_evaluations < pop_size:
        raise ValueError("budget must cover the initial population")
    anneal_every = anneal_every or pop_size
    trc = tracer if tracer is not None else get_tracer()
    eng = (
        engine
        if engine is not None
        else EvaluationEngine(
            client=client,
            dedup=True,
            dedup_scope="run",
            journal=journal,
            tracer=trc,
        )
    )
    schedule = AnnealingSchedule(
        initial_std, factor=anneal_factor, context=Context()
    )
    ranges = np.asarray(init_ranges, dtype=np.float64)
    bounds = None if hard_bounds is None else np.asarray(hard_bounds)

    def make_random() -> Individual:
        genome = gen_rng.uniform(ranges[:, 0], ranges[:, 1])
        ind = individual_cls(genome, decoder=decoder, problem=problem)
        ind.n_objectives = problem.n_objectives  # type: ignore[attr-defined]
        return ind

    def breed(population: list[Individual]) -> Individual:
        parent = population[int(gen_rng.integers(len(population)))]
        child = parent.clone()
        sigmas = np.broadcast_to(schedule.current, child.genome.shape)
        child.genome = child.genome + gen_rng.normal(
            0.0, 1.0, size=child.genome.shape
        ) * sigmas
        if bounds is not None:
            child.genome = np.clip(
                child.genome, bounds[:, 0], bounds[:, 1]
            )
        return child

    start = time.monotonic()
    before = eng.stats.copy()
    record = SteadyStateRecord(population=[])
    #: annealing windows are the steady-state generational analogue;
    #: convergence is published at each window boundary and at the end
    telemetry = ConvergenceTelemetry()
    with trc.span(
        "ea.steady_state", budget=max_evaluations, pop_size=pop_size
    ) as span:
        # seed the pipeline with the random initial population
        for _ in range(pop_size):
            eng.submit(make_random())
        submitted = pop_size
        population: list[Individual] = []
        completions = 0
        halted = False
        while eng.has_pending():
            for evaluated in eng.wait_any():
                record.evaluated.append(evaluated)
                completions += 1
                population.append(evaluated)
                if len(population) > pop_size:
                    population = nsga2_select(population, pop_size)
                if completions % anneal_every == 0:
                    schedule.step()
                    window = completions // anneal_every - 1
                    telemetry.observe_generation(
                        window,
                        population,
                        completions=completions,
                    )
                    if (
                        stopper is not None
                        and not halted
                        and stopper.observe_front(window, population)
                    ):
                        # stop breeding; in-flight work still drains
                        halted = True
                if submitted < max_evaluations and not halted:
                    eng.submit(breed(population))
                    submitted += 1
                if callback is not None:
                    callback(evaluated, completions)
        record.population = nsga2_select(
            population, min(pop_size, len(population))
        )
        # final convergence point: the selected end-of-run population
        telemetry.observe_generation(
            max(0, (completions - 1) // anneal_every),
            record.population,
            completions=completions,
        )
        used = eng.stats.delta(before)
        record.evaluations = used.fresh
        record.completions = used.completed
        record.cache_hits = used.cache_hits
        record.dedup_hits = used.dedup_hits
        record.n_failures = used.failures
        record.wall_time = time.monotonic() - start
        span.tag(
            fresh=used.fresh,
            cache_hits=used.cache_hits,
            dedup_hits=used.dedup_hits,
            failures=used.failures,
        )
    return record


def steady_state_as_generations(
    record: SteadyStateRecord,
    pop_size: int,
    initial_std: np.ndarray,
    anneal_factor: float = 0.85,
    anneal_every: Optional[int] = None,
) -> list:
    """View a steady-state run as pseudo-generations.

    The campaign/report stack is built around
    :class:`repro.evo.algorithm.GenerationRecord` streams; this chunks
    the completion-ordered ``record.evaluated`` into ``anneal_every``
    windows (the annealing cadence, i.e. the generational analogue),
    attaching the deviation vector that was current for each window.
    The final window carries the run's selected population; earlier
    windows use their own completions, mirroring what the population
    roughly was at that point.
    """
    from repro.evo.algorithm import GenerationRecord

    anneal_every = anneal_every or pop_size
    std = np.asarray(initial_std, dtype=np.float64).copy()
    chunks = [
        record.evaluated[i : i + anneal_every]
        for i in range(0, len(record.evaluated), anneal_every)
    ]
    generations: list[GenerationRecord] = []
    for g, chunk in enumerate(chunks):
        last = g == len(chunks) - 1
        generations.append(
            GenerationRecord(
                generation=g,
                population=list(record.population) if last else list(chunk),
                evaluated=list(chunk),
                std=std.copy(),
                n_failures=sum(
                    1 for ind in chunk if not ind.is_viable
                ),
            )
        )
        std = std * anneal_factor
    return generations

"""Surrogate-assisted Pareto acquisition on the evaluation engine.

Thomas du Toit et al. show BO-style surrogate search dominating
evolutionary baselines for ACE potential tuning; this driver is that
scheme over the same genome/engine contract as the other drivers:

1. evaluate a random initial population (generation 0);
2. each iteration, fit an **RBF surrogate** (Gaussian kernel, ridge
   regularized, pure NumPy — one model per objective via a shared
   linear solve) over the normalized genome embedding of every viable
   evaluation so far;
3. score a large candidate pool (uniform explorers + Gaussian
   perturbations of the current front) with the surrogate and pick a
   batch of ``pop_size`` proposals by **greedy expected-hypervolume
   improvement** (EPDC/EHVI-style: each pick maximizes the dominated
   hypervolume the *predicted* point adds to the predicted front, so a
   batch spreads along the front instead of piling on one corner);
4. evaluate the proposal batch through the engine's batch data plane
   (``submit_batch``/``finish_batch`` — dedup, cache probe, MAXINT
   failure policy, journaling all apply unchanged).

Every stochastic draw flows through the single run RNG in a fixed
order and the surrogate refit is a pure function of the evaluation
history, so the whole trajectory is deterministic given (seed,
problem): a killed run resumes bit-identically by restoring the
journaled history and RNG state — no extra driver state is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Type

import numpy as np

from repro.engine import EvaluationEngine
from repro.evo.algorithm import (
    GenerationRecord,
    _capture_rng_state,
    _count_failures,
    _make_individual,
)
from repro.evo.decoder import Decoder
from repro.evo.individual import Individual, RobustIndividual
from repro.evo.nsga2 import nsga2_select
from repro.evo.problem import Problem
from repro.mo.dominance import non_dominated_mask
from repro.mo.metrics import default_reference, hypervolume
from repro.obs.live import ConvergenceTelemetry
from repro.obs.trace import get_tracer
from repro.rng import RngLike, ensure_rng


@dataclass
class SurrogateResumeState:
    """Mid-run state reconstructed from a campaign journal: the full
    evaluation history (the surrogate refits from it), the committed
    selection pool, and the restored run RNG."""

    history: list[Individual]
    population: list[Individual]
    generation: int
    rng: np.random.Generator


class RBFSurrogate:
    """Gaussian radial-basis interpolant over the unit-cube genome
    embedding, one output column per objective.

    ``fit`` solves ``(K + ridge·I) W = Y`` once; ``predict`` is a
    kernel matrix product.  The length scale is the median pairwise
    training distance (a standard, parameter-free choice).  Everything
    is deterministic, which the resume bit-identity contract requires.
    """

    def __init__(self, ridge: float = 1e-6) -> None:
        self.ridge = float(ridge)
        self._X: Optional[np.ndarray] = None
        self._W: Optional[np.ndarray] = None
        self._eps: float = 1.0

    @property
    def is_fit(self) -> bool:
        return self._W is not None

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "RBFSurrogate":
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
        D = np.linalg.norm(X[:, None, :] - X[None, :, :], axis=-1)
        off_diag = D[~np.eye(len(X), dtype=bool)]
        eps = float(np.median(off_diag)) if off_diag.size else 1.0
        self._eps = eps if eps > 0 else 1.0
        K = np.exp(-((D / self._eps) ** 2))
        K = K + self.ridge * np.eye(len(X))
        try:
            W = np.linalg.solve(K, Y)
        except np.linalg.LinAlgError:
            W = np.linalg.lstsq(K, Y, rcond=None)[0]
        self._X, self._W = X, W
        return self

    def predict(self, Xq: np.ndarray) -> np.ndarray:
        if self._X is None or self._W is None:
            raise RuntimeError("predict before fit")
        Xq = np.asarray(Xq, dtype=np.float64)
        D = np.linalg.norm(Xq[:, None, :] - self._X[None, :, :], axis=-1)
        return np.exp(-((D / self._eps) ** 2)) @ self._W


def _greedy_ehvi_picks(
    predicted: np.ndarray,
    base_front: np.ndarray,
    reference: np.ndarray,
    n_picks: int,
) -> list[int]:
    """Greedy batch selection by predicted hypervolume improvement.

    Each pick maximizes ``hv(front ∪ {ŷ}) − hv(front)`` against the
    *predicted* front, which then absorbs the pick — so later picks are
    pushed toward uncovered regions.  Ties (including the all-zero
    late-game case) resolve to the lowest candidate index, keeping the
    selection deterministic.
    """
    front = np.asarray(base_front, dtype=np.float64).reshape(
        -1, predicted.shape[1]
    )
    base_hv = hypervolume(front, reference)
    remaining = list(range(len(predicted)))
    picks: list[int] = []
    for _ in range(min(n_picks, len(remaining))):
        gains = np.empty(len(remaining))
        for slot, idx in enumerate(remaining):
            trial = np.vstack([front, predicted[idx][None, :]])
            gains[slot] = hypervolume(trial, reference) - base_hv
        best_slot = int(np.argmax(gains))
        best = remaining.pop(best_slot)
        picks.append(best)
        front = np.vstack([front, predicted[best][None, :]])
        front = front[non_dominated_mask(front)]
        base_hv = hypervolume(front, reference)
    return picks


def surrogate_assisted_search(
    problem: Problem,
    init_ranges: np.ndarray,
    initial_std: np.ndarray,
    pop_size: int,
    iterations: int,
    hard_bounds: Optional[np.ndarray] = None,
    decoder: Optional[Decoder] = None,
    individual_cls: Type[Individual] = RobustIndividual,
    client: Any = None,
    pool_multiplier: int = 4,
    explore_fraction: float = 0.5,
    perturb_scale: float = 2.0,
    ridge: float = 1e-6,
    reference: Optional[Any] = None,
    rng: RngLike = None,
    callback: Optional[Callable[[GenerationRecord], None]] = None,
    tracer: Any = None,
    dedup: bool = False,
    journal: Any = None,
    resume_from: Optional[SurrogateResumeState] = None,
    engine: Optional[EvaluationEngine] = None,
    batch_chunk: Optional[int] = None,
    stopper: Any = None,
) -> list[GenerationRecord]:
    """Run one surrogate-assisted deployment; one record per iteration.

    Budget and accounting mirror the other drivers: ``iterations``
    proposal batches of ``pop_size`` after the random initialization,
    ``iterations + 1`` records total.  ``reference`` fixes the
    acquisition's hypervolume corner (default: the campaign-fixed
    :func:`repro.mo.metrics.default_reference` for the problem's
    dimensionality).  ``journal``/``resume_from``/``stopper`` behave as
    in :func:`repro.evo.algorithm.generational_nsga2`.
    """
    trc = tracer if tracer is not None else get_tracer()
    telemetry = ConvergenceTelemetry()
    eng = (
        engine
        if engine is not None
        else EvaluationEngine(
            client=client, dedup=dedup, dedup_scope="batch", tracer=trc
        )
    )
    ranges = np.asarray(init_ranges, dtype=np.float64)
    bounds = (
        ranges
        if hard_bounds is None
        else np.asarray(hard_bounds, dtype=np.float64)
    )
    n_genes = ranges.shape[0]
    width = bounds[:, 1] - bounds[:, 0]
    width = np.where(width > 0, width, 1.0)
    std = np.asarray(initial_std, dtype=np.float64) * float(perturb_scale)
    n_objectives = int(getattr(problem, "n_objectives", 2))
    ref = (
        np.ravel(np.asarray(reference, dtype=np.float64))
        if reference is not None
        else np.asarray(default_reference(n_objectives))
    )

    def normalize(genomes: np.ndarray) -> np.ndarray:
        return (genomes - bounds[:, 0]) / width

    def make(genomes: np.ndarray) -> list[Individual]:
        return [
            _make_individual(g, decoder, problem, individual_cls)
            for g in genomes
        ]

    def evaluate_batch(batch: list[Individual]) -> list[Individual]:
        # the acquisition's unit of work is a proposal batch — route it
        # through the engine's batch plane in one submission
        eng.submit_batch(batch, chunk_size=batch_chunk, new_batch=True)
        eng.finish_batch()
        return batch

    def commit(record: GenerationRecord, rng_state: Any) -> None:
        if journal is not None:
            journal.append_generation(record, rng_state=rng_state)
        records.append(record)
        telemetry.observe_generation(
            record.generation,
            record.population,
            evaluated=len(record.evaluated),
            failures=record.n_failures,
        )
        if callback is not None:
            callback(record)

    records: list[GenerationRecord] = []
    if resume_from is not None:
        gen_rng = resume_from.rng
        history = list(resume_from.history)
        population = list(resume_from.population)
        start_iteration = resume_from.generation + 1
    else:
        gen_rng = ensure_rng(rng)
        with trc.span("surrogate.iteration", generation=0) as span:
            genomes = gen_rng.uniform(
                ranges[:, 0], ranges[:, 1], size=(pop_size, n_genes)
            )
            batch = evaluate_batch(make(genomes))
            history = list(batch)
            population = nsga2_select(list(batch), pop_size)
            record0 = GenerationRecord(
                generation=0,
                population=list(population),
                evaluated=list(batch),
                std=std.copy(),
                n_failures=_count_failures(batch),
            )
            span.tag(evaluated=len(batch), failures=record0.n_failures)
        commit(record0, _capture_rng_state(gen_rng))
        if stopper is not None and stopper.observe(record0):
            return records
        start_iteration = 1
    for iteration in range(start_iteration, iterations + 1):
        with trc.span(
            "surrogate.iteration", generation=iteration
        ) as span:
            viable = [ind for ind in history if ind.is_viable]
            n_pool = max(int(pool_multiplier) * pop_size, pop_size)
            n_explore = int(round(n_pool * float(explore_fraction)))
            explore = gen_rng.uniform(
                ranges[:, 0], ranges[:, 1], size=(n_explore, n_genes)
            )
            n_exploit = n_pool - n_explore
            if viable and n_exploit > 0:
                F = np.asarray([ind.fitness for ind in viable])
                front_members = [
                    ind
                    for ind, keep in zip(viable, non_dominated_mask(F))
                    if keep
                ]
                anchors = gen_rng.integers(
                    len(front_members), size=n_exploit
                )
                noise = gen_rng.normal(
                    0.0, 1.0, size=(n_exploit, n_genes)
                ) * std
                exploit = np.clip(
                    np.asarray(
                        [
                            front_members[int(a)].genome
                            for a in anchors
                        ]
                    )
                    + noise,
                    bounds[:, 0],
                    bounds[:, 1],
                )
                pool = np.vstack([explore, exploit])
            else:
                extra = gen_rng.uniform(
                    ranges[:, 0],
                    ranges[:, 1],
                    size=(max(n_exploit, 0), n_genes),
                )
                pool = np.vstack([explore, extra])
            # fit the surrogate on everything viable so far; until
            # there is enough signal, fall back to the raw pool order
            # (still deterministic)
            if len(viable) >= max(2 * n_genes, 4):
                X = normalize(
                    np.asarray([ind.genome for ind in viable])
                )
                Y = np.asarray([ind.fitness for ind in viable])
                model = RBFSurrogate(ridge=ridge).fit(X, Y)
                predicted = model.predict(normalize(pool))
                base_front = (
                    Y[non_dominated_mask(Y)]
                    if len(Y)
                    else np.empty((0, n_objectives))
                )
                picks = _greedy_ehvi_picks(
                    predicted, base_front, ref, pop_size
                )
            else:
                picks = list(range(pop_size))
            batch = evaluate_batch(make(pool[picks]))
            history.extend(batch)
            population = nsga2_select(
                list(population) + list(batch), pop_size
            )
            record = GenerationRecord(
                generation=iteration,
                population=list(population),
                evaluated=list(batch),
                std=std.copy(),
                n_failures=_count_failures(batch),
            )
            span.tag(
                evaluated=len(batch),
                failures=record.n_failures,
                surrogate_points=len(viable),
            )
        commit(record, _capture_rng_state(gen_rng))
        if stopper is not None and stopper.observe(record):
            break
    return records

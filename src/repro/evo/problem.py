"""Fitness-function abstractions.

All problems in this package are **minimization** problems returning a
NumPy fitness array — matching the paper, where "both fitness
objectives were minimization problems" (energy and force validation
RMSE).  Scalar problems return one-element arrays so single- and
multiobjective code paths are uniform.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np


class Problem:
    """Base problem: maps a phenome to a minimization fitness vector."""

    #: number of objectives (subclasses should set this)
    n_objectives: int = 1

    def evaluate(self, phenome: Any) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def worse_than(self, a: np.ndarray, b: np.ndarray) -> bool:
        """Strict Pareto-dominance check: is ``a`` dominated by ``b``?"""
        a = np.atleast_1d(a)
        b = np.atleast_1d(b)
        return bool(np.all(b <= a) and np.any(b < a))


class FunctionProblem(Problem):
    """Wrap a plain callable returning a scalar or a fitness vector."""

    def __init__(
        self, fn: Callable[[Any], Any], n_objectives: int = 1
    ) -> None:
        self.fn = fn
        self.n_objectives = int(n_objectives)

    def evaluate(self, phenome: Any) -> np.ndarray:
        return np.atleast_1d(
            np.asarray(self.fn(phenome), dtype=np.float64)
        )


class ConstantProblem(Problem):
    """Always returns the same fitness — useful in operator tests."""

    def __init__(self, fitness: Sequence[float] = (0.0,)) -> None:
        self._fitness = np.asarray(fitness, dtype=np.float64)
        self.n_objectives = len(self._fitness)

    def evaluate(self, phenome: Any) -> np.ndarray:
        return self._fitness.copy()

"""Fitness-function abstractions.

All problems in this package are **minimization** problems returning a
NumPy fitness array — matching the paper, where "both fitness
objectives were minimization problems" (energy and force validation
RMSE).  Scalar problems return one-element arrays so single- and
multiobjective code paths are uniform.

The contract is **batch-first**: a population is the natural unit of
work for NSGA-II (one generation = one embarrassingly parallel batch of
trainings, §2.2.5), so every problem answers
:meth:`Problem.evaluate_batch` — vectorized problems in one array
sweep, everything else through the default per-phenome fallback defined
here (the *only* sanctioned per-individual evaluation loop outside
:mod:`repro.engine`; the AST guard in ``tests/test_engine.py`` bans any
other).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

import numpy as np

#: an element of a batch-evaluation result: either a ``(fitness,
#: metadata)`` pair or the exception that phenome's evaluation raised —
#: one phenome failing never aborts its batch (per-genome MAXINT
#: failure semantics are applied downstream by the engine)
BatchOutcome = Any


class Problem:
    """Base problem: maps a phenome to a minimization fitness vector."""

    #: number of objectives (subclasses should set this)
    n_objectives: int = 1

    def evaluate(self, phenome: Any) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def evaluate_batch(self, phenomes: Sequence[Any]) -> np.ndarray:
        """Evaluate a whole population; returns an ``(n, n_objectives)``
        array.

        Default: the loop fallback over :meth:`evaluate`.  Problems
        whose surface vectorizes (e.g. the surrogate landscape) override
        this with one NumPy call per population.  Exceptions propagate —
        callers needing per-phenome failure isolation go through
        :func:`repro.engine.invoke.call_problem_batch` instead.
        """
        return np.asarray(
            [
                np.atleast_1d(
                    np.asarray(self.evaluate(p), dtype=np.float64)
                )
                for p in phenomes
            ],
            dtype=np.float64,
        )

    def worse_than(self, a: np.ndarray, b: np.ndarray) -> bool:
        """Strict Pareto-dominance check: is ``a`` dominated by ``b``?"""
        a = np.atleast_1d(a)
        b = np.atleast_1d(b)
        return bool(np.all(b <= a) and np.any(b < a))


class WithMetadataProblem(Problem):
    """Shared base for problems implementing ``evaluate_with_metadata``.

    The evaluator, the surrogate landscape, the weighted-sum scalarizer,
    the cache wrapper, and the CLI kill-harness all used to carry their
    own copies of the same three fragments; they live here once so the
    batch contract is added in one place:

    * :meth:`evaluate` — the plain-fitness view, delegating through
      :func:`repro.engine.invoke.call_problem`;
    * :meth:`evaluate_batch_with_metadata` — the batch entry point
      (default: per-phenome fallback with per-phenome failure capture;
      vectorized subclasses override it);
    * :meth:`attach_failure_metadata` — the standard ``failed`` /
      ``failure_cause`` annotation every escaping exception carries.
    """

    def evaluate(self, phenome: Any) -> np.ndarray:
        from repro.engine.invoke import call_problem

        fitness, _ = call_problem(self, phenome)
        return fitness

    def evaluate_batch_with_metadata(
        self,
        phenomes: Sequence[Any],
        uuids: Optional[Sequence[Optional[str]]] = None,
    ) -> list[BatchOutcome]:
        """Evaluate a batch; one outcome slot per phenome.

        Each slot is a ``(fitness, metadata)`` pair or the exception
        that phenome raised — a failing phenome never aborts the rest
        of its batch.  The default runs the per-phenome fallback;
        vectorized problems override this.
        """
        from repro.engine.invoke import call_problem

        if uuids is None:
            uuids = [None] * len(phenomes)
        outcomes: list[BatchOutcome] = []
        for phenome, uuid in zip(phenomes, uuids):
            try:
                outcomes.append(call_problem(self, phenome, uuid=uuid))
            except Exception as exc:  # noqa: BLE001 - isolated per slot
                outcomes.append(exc)
        return outcomes

    @staticmethod
    def attach_failure_metadata(
        exc: BaseException, phenome: Any, **extra: Any
    ) -> dict[str, Any]:
        """Annotate ``exc`` with the standard failure metadata (§2.2.4)
        and return the dict (also left on ``exc.metadata``)."""
        meta = dict(getattr(exc, "metadata", None) or {})
        meta.setdefault("phenome", dict(phenome) if isinstance(phenome, dict) else phenome)
        meta.setdefault("failed", True)
        meta.setdefault("failure_cause", f"{type(exc).__name__}: {exc}")
        for key, value in extra.items():
            meta.setdefault(key, value)
        exc.metadata = meta  # type: ignore[attr-defined]
        return meta


class FunctionProblem(Problem):
    """Wrap a plain callable returning a scalar or a fitness vector."""

    def __init__(
        self, fn: Callable[[Any], Any], n_objectives: int = 1
    ) -> None:
        self.fn = fn
        self.n_objectives = int(n_objectives)

    def evaluate(self, phenome: Any) -> np.ndarray:
        return np.atleast_1d(
            np.asarray(self.fn(phenome), dtype=np.float64)
        )


class ConstantProblem(Problem):
    """Always returns the same fitness — useful in operator tests."""

    def __init__(self, fitness: Sequence[float] = (0.0,)) -> None:
        self._fitness = np.asarray(fitness, dtype=np.float64)
        self.n_objectives = len(self._fitness)

    def evaluate(self, phenome: Any) -> np.ndarray:
        return self._fitness.copy()

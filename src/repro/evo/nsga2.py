"""NSGA-II non-dominated sorting and crowding distance.

Two sorting implementations are provided:

:func:`fast_nondominated_sort`
    The classic algorithm of Deb et al. (2002): build the full pairwise
    dominance relation, then peel fronts.  O(M N^2) time and O(N^2)
    memory (vectorized over NumPy).

:func:`rank_ordinal_sort`
    The faster rank-based sorting the paper adopted ("we used an
    improved version of ranked-based sorting that yielded a significant
    speed-up for NSGA-II", citing Burlacu 2022).  For the
    two-objective case — the paper's energy/force setting — it runs in
    O(N log N) via a lexicographic sweep with binary search over front
    minima; for three or more objectives it falls back to dominance
    peeling over per-objective ordinal ranks.

Both return identical 1-based ranks (front 1 is the Pareto front); the
equivalence is enforced by a property-based test and their speed
difference is measured by ``benchmarks/bench_sorting_ablation.py``.

The hot kernels come in two implementations, selected by the ``impl``
argument (default: the module-level :data:`DEFAULT_IMPL`, overridable
with the ``REPRO_NSGA2_KERNELS`` environment variable):

``"vectorized"``
    Batched NumPy: the two-objective sweep peels whole fronts with
    cumulative minima, and the crowding distance sorts all fronts at
    once with one stable ``lexsort`` per objective.  This is the
    production path — a campaign sorts ``2 * pop_size`` individuals
    every generation, and per-individual Python loops dominate the EA
    side of the wall clock once evaluations are parallel.
``"scalar"``
    The original per-individual / per-front Python loops, kept
    verbatim as the reference oracle.  A property-based test pins the
    vectorized kernels to it bit-for-bit (including duplicate and
    ``MAXINT``-fitness individuals); ``benchmarks/bench_nsga2_kernels.py``
    measures the gap in µs per 1k individuals.

All sorting assumes **minimization** of every objective and *finite*
fitness values — ``MAXINT`` failure fitnesses are finite by design
(§2.2.4); NaNs would make the ordering undefined, which is exactly why
the paper replaced LEAP's NaN failure fitness.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.evo.individual import Individual

#: kernel implementation used when ``impl`` is not passed explicitly;
#: the environment override makes CI A/B runs trivial
DEFAULT_IMPL: str = os.environ.get("REPRO_NSGA2_KERNELS", "vectorized")


def _resolve_impl(impl: Optional[str]) -> str:
    chosen = DEFAULT_IMPL if impl is None else impl
    if chosen not in ("vectorized", "scalar"):
        raise ValueError(
            f"impl must be 'vectorized' or 'scalar', got {chosen!r}"
        )
    return chosen


def _fitness_matrix(population: Sequence[Individual]) -> np.ndarray:
    rows = []
    for ind in population:
        if ind.fitness is None:
            raise ValueError(
                "all individuals must be evaluated before sorting"
            )
        rows.append(np.atleast_1d(ind.fitness))
    return np.asarray(rows, dtype=np.float64)


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """Strict Pareto dominance (minimization): a is no worse everywhere
    and strictly better somewhere."""
    a = np.atleast_1d(a)
    b = np.atleast_1d(b)
    return bool(np.all(a <= b) and np.any(a < b))


def fast_nondominated_sort(fitnesses: np.ndarray) -> np.ndarray:
    """Deb et al. (2002) fast non-dominated sort → 1-based front ranks."""
    F = np.asarray(fitnesses, dtype=np.float64)
    if F.ndim != 2:
        raise ValueError("fitnesses must be a 2-D (N, M) array")
    n = len(F)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if np.isnan(F).any():
        raise ValueError(
            "fitness matrix contains NaN; sorting would be undefined "
            "(use MAXINT for failures, as the paper does)"
        )
    le = np.all(F[:, None, :] <= F[None, :, :], axis=-1)
    lt = np.any(F[:, None, :] < F[None, :, :], axis=-1)
    dom = le & lt  # dom[i, j]: i dominates j
    n_dominators = dom.sum(axis=0)
    ranks = np.zeros(n, dtype=np.int64)
    rank = 1
    remaining = np.ones(n, dtype=bool)
    while remaining.any():
        front = remaining & (n_dominators == 0)
        if not front.any():  # pragma: no cover - cycles are impossible
            raise RuntimeError("non-dominated sort failed to make progress")
        ranks[front] = rank
        n_dominators = n_dominators - dom[front].sum(axis=0)
        remaining &= ~front
        rank += 1
    return ranks


def _rank_sort_two_objectives_scalar(F: np.ndarray) -> np.ndarray:
    """O(N log N) sweep for the two-objective case (reference oracle).

    De-duplicate exact fitness ties (duplicates share a front), sort
    lexicographically, and assign each point to the first front whose
    minimum second objective exceeds the point's — maintained as a
    monotone array for binary search.
    """
    unique, inverse = np.unique(F, axis=0, return_inverse=True)
    # np.unique sorts lexicographically ascending: exactly the sweep order
    front_min_f2: list[float] = []
    unique_ranks = np.zeros(len(unique), dtype=np.int64)
    for i, (_, f2) in enumerate(unique):
        k = int(np.searchsorted(front_min_f2, f2, side="right"))
        if k == len(front_min_f2):
            front_min_f2.append(f2)
        else:
            front_min_f2[k] = f2
        unique_ranks[i] = k + 1
    return unique_ranks[inverse]


def _rank_sort_two_objectives_vectorized(F: np.ndarray) -> np.ndarray:
    """Batched two-objective sort: peel whole fronts with cumulative minima.

    After lexicographic de-duplication, a point is non-dominated among
    the remaining points iff its second objective is strictly below the
    running minimum of everything before it in sweep order (uniqueness
    turns weak dominance into strict).  Each loop iteration removes one
    entire front, so the Python-level loop runs once per front instead
    of once per unique point.
    """
    unique, inverse = np.unique(F, axis=0, return_inverse=True)
    unique_ranks = np.zeros(len(unique), dtype=np.int64)
    remaining = np.arange(len(unique))
    f2 = unique[:, 1]
    rank = 1
    while remaining.size:
        v = f2[remaining]
        cummin = np.minimum.accumulate(v)
        front = np.empty(remaining.size, dtype=bool)
        front[0] = True
        front[1:] = v[1:] < cummin[:-1]
        unique_ranks[remaining[front]] = rank
        remaining = remaining[~front]
        rank += 1
    return unique_ranks[inverse]


def _rank_sort_general(F: np.ndarray) -> np.ndarray:
    """Ordinal-rank dominance peeling for three or more objectives.

    Per Burlacu (2022), comparisons on per-objective ordinal ranks are
    equivalent to comparisons on raw fitness values (ranks preserve
    order), and the integer matrix makes the vectorized comparisons
    cheaper and tie handling explicit.
    """
    n, m = F.shape
    # ordinal rank of each individual under each objective (ties share)
    R = np.zeros((n, m), dtype=np.int64)
    for j in range(m):
        _, inv = np.unique(F[:, j], return_inverse=True)
        R[:, j] = inv
    le = np.all(R[:, None, :] <= R[None, :, :], axis=-1)
    lt = np.any(R[:, None, :] < R[None, :, :], axis=-1)
    dom = le & lt
    n_dominators = dom.sum(axis=0)
    ranks = np.zeros(n, dtype=np.int64)
    rank = 1
    remaining = np.ones(n, dtype=bool)
    while remaining.any():
        front = remaining & (n_dominators == 0)
        ranks[front] = rank
        n_dominators = n_dominators - dom[front].sum(axis=0)
        remaining &= ~front
        rank += 1
    return ranks


def rank_ordinal_sort(
    fitnesses: np.ndarray, impl: Optional[str] = None
) -> np.ndarray:
    """Rank-based non-dominated sorting (Burlacu 2022) → 1-based ranks."""
    F = np.asarray(fitnesses, dtype=np.float64)
    if F.ndim != 2:
        raise ValueError("fitnesses must be a 2-D (N, M) array")
    chosen = _resolve_impl(impl)
    if len(F) == 0:
        return np.zeros(0, dtype=np.int64)
    if np.isnan(F).any():
        raise ValueError(
            "fitness matrix contains NaN; sorting would be undefined "
            "(use MAXINT for failures, as the paper does)"
        )
    if F.shape[1] == 1:
        _, inverse = np.unique(F[:, 0], return_inverse=True)
        return inverse.astype(np.int64) + 1
    if F.shape[1] == 2:
        if chosen == "vectorized":
            return _rank_sort_two_objectives_vectorized(F)
        return _rank_sort_two_objectives_scalar(F)
    return _rank_sort_general(F)


def _crowding_distance_scalar(
    F: np.ndarray, ranks: np.ndarray
) -> np.ndarray:
    """Per-front Python-loop crowding distance (reference oracle)."""
    n, m = F.shape
    distances = np.zeros(n)
    for rank in np.unique(ranks):
        members = np.where(ranks == rank)[0]
        if len(members) <= 2:
            distances[members] = np.inf
            continue
        for j in range(m):
            order = members[np.argsort(F[members, j], kind="stable")]
            fmin, fmax = F[order[0], j], F[order[-1], j]
            distances[order[0]] = np.inf
            distances[order[-1]] = np.inf
            if fmax == fmin:
                continue
            gaps = (F[order[2:], j] - F[order[:-2], j]) / (fmax - fmin)
            distances[order[1:-1]] += gaps
    return distances


def _crowding_distance_vectorized(
    F: np.ndarray, ranks: np.ndarray
) -> np.ndarray:
    """Batched crowding distance: one stable lexsort per objective sorts
    every front at once; segment bookkeeping replaces the per-front loop.

    Bit-identical to the scalar oracle: ``lexsort`` is stable (ties keep
    ascending index, like the oracle's stable argsort over ascending
    member indices), gap/span arithmetic is elementwise, and each
    individual accumulates its per-objective contributions in the same
    ``j = 0..m-1`` order, so float addition order is preserved.
    """
    n, m = F.shape
    distances = np.zeros(n)
    if n == 0:
        return distances
    for j in range(m):
        # primary key: front rank; secondary: objective value; stable
        order = np.lexsort((F[:, j], ranks))
        rs = np.asarray(ranks)[order]
        new_seg = np.empty(n, dtype=bool)
        new_seg[0] = True
        new_seg[1:] = rs[1:] != rs[:-1]
        seg_id = np.cumsum(new_seg) - 1
        seg_start = np.flatnonzero(new_seg)
        seg_end = np.append(seg_start[1:], n) - 1
        Fs = F[order, j]
        fmin = Fs[seg_start][seg_id]
        fmax = Fs[seg_end][seg_id]
        boundary = new_seg.copy()
        boundary[seg_end] = True
        distances[order[boundary]] = np.inf
        span = fmax - fmin
        interior = np.flatnonzero(~boundary & (span != 0))
        if interior.size:
            gaps = (Fs[interior + 1] - Fs[interior - 1]) / span[interior]
            distances[order[interior]] += gaps
    return distances


def crowding_distance(
    fitnesses: np.ndarray, ranks: np.ndarray, impl: Optional[str] = None
) -> np.ndarray:
    """NSGA-II crowding distance computed per front.

    Boundary solutions of each front receive ``inf``; interior ones
    the normalized objective-space gap between their neighbors, summed
    over objectives.  Degenerate objectives (no spread within a front)
    contribute zero.
    """
    F = np.asarray(fitnesses, dtype=np.float64)
    ranks = np.asarray(ranks)
    if _resolve_impl(impl) == "vectorized":
        return _crowding_distance_vectorized(F, ranks)
    return _crowding_distance_scalar(F, ranks)


# ----------------------------------------------------------------------
# pipeline-operator forms (Listing 1)
# ----------------------------------------------------------------------
def rank_ordinal_sort_op(
    parents: Optional[Sequence[Individual]] = None,
    algorithm: str = "rank_ordinal",
) -> Callable[[Iterable[Individual]], list[Individual]]:
    """Listing-1 ``rank_ordinal_sort(parents=...)`` pipeline operator.

    Materializes the offspring stream, merges it with ``parents``
    (NSGA-II's mu+lambda elitism), assigns 1-based ``rank`` attributes
    to every individual in the combined pool, and passes the pool on.
    """
    sorter = {
        "rank_ordinal": rank_ordinal_sort,
        "fast": fast_nondominated_sort,
    }
    if algorithm not in sorter:
        raise ValueError(f"unknown sorting algorithm {algorithm!r}")
    sort_fn = sorter[algorithm]

    def op(offspring: Iterable[Individual]) -> list[Individual]:
        combined = list(offspring)
        if parents is not None:
            combined = combined + list(parents)
        ranks = sort_fn(_fitness_matrix(combined))
        for ind, rank in zip(combined, ranks):
            ind.rank = int(rank)
        return combined

    return op


def crowding_distance_calc(
    population: Iterable[Individual],
) -> list[Individual]:
    """Listing-1 ``crowding_distance_calc`` pipeline operator.

    Requires ``rank`` attributes (set by the sorting operator); stores
    the crowding distance on each individual and passes the pool on.
    """
    pool = list(population)
    if not pool:
        return pool
    if any(ind.rank is None for ind in pool):
        raise ValueError("crowding distance requires ranks; sort first")
    F = _fitness_matrix(pool)
    ranks = np.array([ind.rank for ind in pool])
    distances = crowding_distance(F, ranks)
    for ind, dist in zip(pool, distances):
        ind.distance = float(dist)
    return pool


def crowded_tournament_selection(
    population: Sequence[Individual],
    rng=None,
) -> "Iterator[Individual]":
    """Canonical NSGA-II mating selection: binary tournaments decided
    by the crowded-comparison operator (lower rank wins; ties break to
    larger crowding distance).

    The paper replaces this with plain ``random_selection`` (Listing 1)
    — mutation-only breeding plus mu+lambda truncation supplies the
    selection pressure instead.  This operator exists for the ablation
    that quantifies that simplification.  Requires ``rank`` and
    ``distance`` attributes (run the sorting operators first).
    """
    from repro.rng import ensure_rng

    gen = ensure_rng(rng)
    pool = list(population)
    if not pool:
        raise ValueError("cannot select from an empty population")
    for ind in pool:
        if ind.rank is None or ind.distance is None:
            raise ValueError(
                "crowded tournament needs rank and distance; run "
                "rank_ordinal_sort_op and crowding_distance_calc first"
            )

    def crowded_less(a: Individual, b: Individual) -> bool:
        if a.rank != b.rank:
            return a.rank < b.rank
        return a.distance > b.distance

    while True:
        a = pool[int(gen.integers(len(pool)))]
        b = pool[int(gen.integers(len(pool)))]
        yield a if crowded_less(a, b) else b


def nsga2_select(
    population: Sequence[Individual], size: int, algorithm: str = "rank_ordinal"
) -> list[Individual]:
    """Rank + crowd + truncate in one call (environmental selection)."""
    from repro.evo.ops import truncation_selection

    ranked = rank_ordinal_sort_op(parents=None, algorithm=algorithm)(
        list(population)
    )
    crowded = crowding_distance_calc(ranked)
    return truncation_selection(
        size=size, key=lambda x: (-x.rank, x.distance)
    )(crowded)

"""Mutation-strength annealing.

§2.2.3: "with each new generation, the vector of standard deviations
... was multiplied by .85.  While originally, this process of annealing
was within the context of the 1/5 success rule, we chose not to
implement the 1/5 success rule to adjust the annealing rate, as
sensitivity tests ... indicated that this was not necessary."

:class:`AnnealingSchedule` is the paper's fixed ×0.85 decay;
:class:`OneFifthSuccessRule` is the classic Rechenberg rule, provided
for the ablation benchmark that justifies the paper's choice.
"""

from __future__ import annotations

import numpy as np

from repro.context import Context


class AnnealingSchedule:
    """Geometric decay of the per-gene mutation standard deviations.

    The deviations live in a run-time context under ``key`` so the
    ``mutate_gaussian`` operator reads the current values each
    generation (Listing 1 stores them in ``context['std']``).
    """

    def __init__(
        self,
        initial_std: np.ndarray,
        factor: float = 0.85,
        context: Context | None = None,
        key: str = "std",
        min_std: float = 0.0,
    ) -> None:
        if not 0.0 < factor <= 1.0:
            raise ValueError("annealing factor must be in (0, 1]")
        self.initial_std = np.asarray(initial_std, dtype=np.float64).copy()
        self.factor = float(factor)
        self.min_std = float(min_std)
        self.context = context if context is not None else Context()
        self.key = key
        self.reset()

    @property
    def current(self) -> np.ndarray:
        return self.context[self.key]

    def reset(self) -> None:
        """Restore the initial deviations (start of a new EA run)."""
        self.context[self.key] = self.initial_std.copy()

    def step(self) -> np.ndarray:
        """Apply one generation of decay; returns the new deviations."""
        new = np.maximum(self.current * self.factor, self.min_std)
        self.context[self.key] = new
        return new


class OneFifthSuccessRule(AnnealingSchedule):
    """Rechenberg's 1/5 success rule (Handbook of EC, B1.3.2).

    The standard deviations grow when more than 1/5 of offspring
    improve on their parents and shrink otherwise.  The paper measured
    that this adaptivity was unnecessary for the DeePMD tuning problem;
    the ablation benchmark compares both schedules.
    """

    def __init__(
        self,
        initial_std: np.ndarray,
        factor: float = 0.85,
        target_rate: float = 0.2,
        context: Context | None = None,
        key: str = "std",
        min_std: float = 0.0,
    ) -> None:
        super().__init__(
            initial_std,
            factor=factor,
            context=context,
            key=key,
            min_std=min_std,
        )
        if not 0.0 < target_rate < 1.0:
            raise ValueError("target_rate must be in (0, 1)")
        self.target_rate = float(target_rate)

    def step(self, success_rate: float | None = None) -> np.ndarray:
        """Adapt based on the observed offspring ``success_rate``.

        With no rate supplied, behaves like the fixed schedule.
        """
        if success_rate is None:
            return super().step()
        if success_rate > self.target_rate:
            new = self.current / self.factor
        elif success_rate < self.target_rate:
            new = self.current * self.factor
        else:
            new = self.current.copy()
        new = np.maximum(new, self.min_std)
        self.context[self.key] = new
        return new

"""Multi-objective particle-swarm optimization on the evaluation engine.

Natarajan & Caro tune GAP interatomic potentials with PSO instead of an
EA; this driver brings that scheme to the same seven-gene DeePMD space
behind the *unchanged* engine contract: every particle evaluation flows
through :class:`repro.engine.EvaluationEngine` (dedup → cache probe →
execute → MAXINT failure policy → journal), each iteration is rendered
as a :class:`~repro.evo.algorithm.GenerationRecord`, and the journal
carries enough swarm state (velocities + personal bests, via the
generation record's ``driver_state``) for a killed run to resume
bit-identically.

The multi-objective scheme is the standard MOPSO shape:

* a bounded external **archive** of nondominated viable solutions
  supplies social leaders, selected per particle by binary tournament
  on crowding distance (computed by the same NSGA-II kernels the other
  drivers use);
* each particle keeps a **personal best**, replaced when the new
  position dominates it (mutual nondominance flips a seeded coin);
* velocities follow the canonical update
  ``v ← w·v + c1·r1·(pbest − x) + c2·r2·(leader − x)``, clamped per
  gene to a fraction of the hard-bound width, positions clipped to the
  hard bounds.

Every stochastic draw goes through the single run RNG in a fixed
order, so the whole trajectory is a pure function of (seed, problem) —
the property kill/resume bit-identity rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Type

import numpy as np

from repro.engine import EvaluationEngine
from repro.evo.algorithm import (
    GenerationRecord,
    _capture_rng_state,
    _count_failures,
    _make_individual,
)
from repro.evo.decoder import Decoder
from repro.evo.individual import Individual, RobustIndividual
from repro.evo.nsga2 import nsga2_select
from repro.evo.problem import Problem
from repro.mo.dominance import dominates, non_dominated_mask
from repro.obs.live import ConvergenceTelemetry
from repro.obs.trace import get_tracer
from repro.rng import RngLike, ensure_rng


@dataclass
class PSOResumeState:
    """Mid-run swarm state reconstructed from a campaign journal.

    ``positions``/``velocities``/``pbest`` are the swarm after the last
    committed iteration; ``population`` the committed selection pool
    the next record's elitist view chains from; ``archive`` the leader
    archive rebuilt by :func:`rebuild_archive`; ``rng`` the run RNG
    restored to its post-iteration state.
    """

    positions: np.ndarray
    velocities: np.ndarray
    pbest: list[Individual]
    population: list[Individual]
    archive: list[Individual]
    generation: int
    rng: np.random.Generator


def _viable(individuals: list[Individual]) -> list[Individual]:
    return [ind for ind in individuals if ind.is_viable]


def _update_archive(
    archive: list[Individual],
    newcomers: list[Individual],
    capacity: int,
) -> list[Individual]:
    """Fold newly evaluated viable individuals into the leader archive:
    keep the nondominated subset of the combined pool, crowd-truncated
    to ``capacity`` (which also refreshes rank/distance attributes used
    by tournament leader selection)."""
    pool = archive + _viable(newcomers)
    if not pool:
        return []
    F = np.asarray([ind.fitness for ind in pool])
    pool = [ind for ind, keep in zip(pool, non_dominated_mask(F)) if keep]
    return nsga2_select(pool, min(capacity, len(pool)))


def rebuild_archive(
    records: list[GenerationRecord], capacity: int
) -> list[Individual]:
    """Replay the archive evolution over restored generation records —
    the same fold the live run performs, so the resumed archive matches
    the uninterrupted one member-for-member (order included)."""
    archive: list[Individual] = []
    for record in records:
        archive = _update_archive(archive, record.evaluated, capacity)
    return archive


def _swarm_driver_state(
    velocities: np.ndarray, pbest: list[Individual]
) -> dict[str, Any]:
    from repro.store.journal import _group_doc

    return {
        "velocities": [[float(v) for v in row] for row in velocities],
        "pbest": _group_doc(pbest),
    }


def multi_objective_pso(
    problem: Problem,
    init_ranges: np.ndarray,
    initial_std: np.ndarray,
    pop_size: int,
    iterations: int,
    hard_bounds: Optional[np.ndarray] = None,
    decoder: Optional[Decoder] = None,
    individual_cls: Type[Individual] = RobustIndividual,
    client: Any = None,
    inertia: float = 0.6,
    cognitive: float = 1.6,
    social: float = 1.6,
    velocity_clamp: float = 0.2,
    archive_capacity: Optional[int] = None,
    rng: RngLike = None,
    callback: Optional[Callable[[GenerationRecord], None]] = None,
    tracer: Any = None,
    dedup: bool = False,
    journal: Any = None,
    resume_from: Optional[PSOResumeState] = None,
    engine: Optional[EvaluationEngine] = None,
    batch_chunk: Optional[int] = None,
    stopper: Any = None,
) -> list[GenerationRecord]:
    """Run one MOPSO deployment; returns one record per iteration.

    ``iterations`` counts swarm moves after the random initialization
    (mirroring the generational driver's accounting), so the returned
    list has ``iterations + 1`` records and the evaluation budget is
    ``pop_size * (iterations + 1)`` — identical to the NSGA-II
    campaign's.  Each record's ``population`` is the crowd-truncated
    elitist pool of everything seen so far (so the §3 analysis stack
    reads PSO campaigns unchanged); ``evaluated`` is the swarm at that
    iteration; ``std`` reports the per-gene mean absolute velocity —
    the swarm's mobility, the closest analogue of the EA's annealed
    deviations.

    ``journal`` receives each record with the post-iteration RNG state
    *and* a ``driver_state`` doc (velocities, personal bests) so
    :func:`repro.store.resume.resume_campaign` can rebuild the swarm;
    ``stopper`` (a :class:`repro.mo.stopping.HypervolumeStopper`) is
    checked after every committed record.
    """
    trc = tracer if tracer is not None else get_tracer()
    telemetry = ConvergenceTelemetry()
    eng = (
        engine
        if engine is not None
        else EvaluationEngine(
            client=client, dedup=dedup, dedup_scope="batch", tracer=trc
        )
    )
    ranges = np.asarray(init_ranges, dtype=np.float64)
    bounds = (
        ranges if hard_bounds is None else np.asarray(hard_bounds, dtype=np.float64)
    )
    n_genes = ranges.shape[0]
    vmax = velocity_clamp * (bounds[:, 1] - bounds[:, 0])
    capacity = (
        int(archive_capacity) if archive_capacity else 2 * int(pop_size)
    )

    def make_swarm(positions: np.ndarray) -> list[Individual]:
        return [
            _make_individual(genome, decoder, problem, individual_cls)
            for genome in positions
        ]

    def commit(record: GenerationRecord, rng_state: Any, velocities, pbest) -> None:
        if journal is not None:
            journal.append_generation(
                record,
                rng_state=rng_state,
                driver_state=_swarm_driver_state(velocities, pbest),
            )
        records.append(record)
        telemetry.observe_generation(
            record.generation,
            record.population,
            evaluated=len(record.evaluated),
            failures=record.n_failures,
        )
        if callback is not None:
            callback(record)

    records: list[GenerationRecord] = []
    if resume_from is not None:
        gen_rng = resume_from.rng
        positions = np.asarray(resume_from.positions, dtype=np.float64).copy()
        velocities = np.asarray(
            resume_from.velocities, dtype=np.float64
        ).copy()
        pbest = list(resume_from.pbest)
        population = list(resume_from.population)
        archive = list(resume_from.archive)
        start_iteration = resume_from.generation + 1
    else:
        gen_rng = ensure_rng(rng)
        with trc.span("pso.iteration", generation=0) as span:
            positions = gen_rng.uniform(
                ranges[:, 0], ranges[:, 1], size=(pop_size, n_genes)
            )
            velocities = np.zeros((pop_size, n_genes))
            swarm = eng.evaluate_batch(
                make_swarm(positions), chunk_size=batch_chunk
            )
            pbest = list(swarm)
            archive = _update_archive([], swarm, capacity)
            population = nsga2_select(list(swarm), pop_size)
            record0 = GenerationRecord(
                generation=0,
                population=list(population),
                evaluated=list(swarm),
                std=np.abs(velocities).mean(axis=0),
                n_failures=_count_failures(swarm),
            )
            span.tag(evaluated=len(swarm), failures=record0.n_failures)
        commit(record0, _capture_rng_state(gen_rng), velocities, pbest)
        if stopper is not None and stopper.observe(record0):
            return records
        start_iteration = 1
    for iteration in range(start_iteration, iterations + 1):
        with trc.span("pso.iteration", generation=iteration) as span:
            for i in range(pop_size):
                if archive:
                    if len(archive) == 1:
                        leader = archive[0]
                    else:
                        a, b = gen_rng.integers(len(archive), size=2)
                        la, lb = archive[int(a)], archive[int(b)]
                        da = la.distance if la.distance is not None else 0.0
                        db = lb.distance if lb.distance is not None else 0.0
                        leader = la if da >= db else lb
                else:
                    leader = pbest[i]
                r1 = gen_rng.uniform(size=n_genes)
                r2 = gen_rng.uniform(size=n_genes)
                velocities[i] = (
                    inertia * velocities[i]
                    + cognitive * r1 * (pbest[i].genome - positions[i])
                    + social * r2 * (leader.genome - positions[i])
                )
                velocities[i] = np.clip(velocities[i], -vmax, vmax)
                positions[i] = np.clip(
                    positions[i] + velocities[i],
                    bounds[:, 0],
                    bounds[:, 1],
                )
            swarm = eng.evaluate_batch(
                make_swarm(positions), chunk_size=batch_chunk
            )
            for i, candidate in enumerate(swarm):
                if not candidate.is_viable:
                    continue
                incumbent = pbest[i]
                if not incumbent.is_viable or dominates(
                    candidate.fitness, incumbent.fitness
                ):
                    pbest[i] = candidate
                elif not dominates(
                    incumbent.fitness, candidate.fitness
                ) and gen_rng.random() < 0.5:
                    pbest[i] = candidate
            archive = _update_archive(archive, swarm, capacity)
            population = nsga2_select(
                list(population) + list(swarm), pop_size
            )
            record = GenerationRecord(
                generation=iteration,
                population=list(population),
                evaluated=list(swarm),
                std=np.abs(velocities).mean(axis=0),
                n_failures=_count_failures(swarm),
            )
            span.tag(evaluated=len(swarm), failures=record.n_failures)
        commit(record, _capture_rng_state(gen_rng), velocities, pbest)
        if stopper is not None and stopper.observe(record):
            break
    return records

"""Recombination operators.

The paper's pipeline is mutation-only (Listing 1 has no crossover),
which suffices for seven genes and six generations.  LEAP, however,
ships recombination, and the ablation bench asks whether the paper
left performance on the table.  These operators follow the standard
pipeline convention: consume a stream of (cloned) individuals, pair
them up, and emit recombined offspring.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np

from repro.evo.individual import Individual
from repro.rng import RngLike, ensure_rng


def _paired(stream: Iterable[Individual]) -> Iterator[tuple[Individual, Individual]]:
    it = iter(stream)
    while True:
        try:
            a = next(it)
            b = next(it)
        except StopIteration:
            return
        yield a, b


def uniform_crossover(
    p_swap: float = 0.5, rng: RngLike = None
) -> Callable[[Iterable[Individual]], Iterator[Individual]]:
    """Swap each gene between consecutive pairs with probability
    ``p_swap``; emits both children."""
    if not 0.0 <= p_swap <= 1.0:
        raise ValueError("p_swap must be in [0, 1]")
    gen = ensure_rng(rng)

    def op(stream: Iterable[Individual]) -> Iterator[Individual]:
        for a, b in _paired(stream):
            mask = gen.random(a.genome.shape) < p_swap
            ga, gb = a.genome.copy(), b.genome.copy()
            ga[mask], gb[mask] = b.genome[mask], a.genome[mask]
            a.genome, b.genome = ga, gb
            a.fitness = b.fitness = None
            yield a
            yield b

    return op


def blend_crossover(
    alpha: float = 0.5, rng: RngLike = None
) -> Callable[[Iterable[Individual]], Iterator[Individual]]:
    """BLX-α: children drawn uniformly from the per-gene interval
    expanded by ``alpha`` times its width — the classic real-valued
    recombination (Eshelman & Schaffer 1993)."""
    if alpha < 0.0:
        raise ValueError("alpha must be non-negative")
    gen = ensure_rng(rng)

    def op(stream: Iterable[Individual]) -> Iterator[Individual]:
        for a, b in _paired(stream):
            lo = np.minimum(a.genome, b.genome)
            hi = np.maximum(a.genome, b.genome)
            span = hi - lo
            low = lo - alpha * span
            high = hi + alpha * span
            a.genome = gen.uniform(low, high)
            b.genome = gen.uniform(low, high)
            a.fitness = b.fitness = None
            yield a
            yield b

    return op


def sbx_crossover(
    eta: float = 15.0, rng: RngLike = None
) -> Callable[[Iterable[Individual]], Iterator[Individual]]:
    """Simulated binary crossover (Deb & Agrawal 1995) — the operator
    NSGA-II traditionally pairs with polynomial mutation.

    ``eta`` controls the spread: large values produce children near
    the parents.
    """
    if eta <= 0.0:
        raise ValueError("eta must be positive")
    gen = ensure_rng(rng)

    def op(stream: Iterable[Individual]) -> Iterator[Individual]:
        for a, b in _paired(stream):
            u = gen.random(a.genome.shape)
            beta = np.where(
                u <= 0.5,
                (2.0 * u) ** (1.0 / (eta + 1.0)),
                (1.0 / (2.0 * (1.0 - u))) ** (1.0 / (eta + 1.0)),
            )
            mean = 0.5 * (a.genome + b.genome)
            diff = 0.5 * np.abs(a.genome - b.genome)
            child1 = mean - beta * diff
            child2 = mean + beta * diff
            a.genome, b.genome = child1, child2
            a.fitness = b.fitness = None
            yield a
            yield b

    return op

"""Periodic simulation cells.

Only orthorhombic (and in practice cubic, like the paper's 17.84 Å
box) cells are needed; minimum-image displacements and periodic
wrapping are vectorized over atom arrays.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np


class PeriodicCell:
    """An orthorhombic periodic box.

    Parameters
    ----------
    lengths:
        Either a single float (cubic box) or three edge lengths.
    """

    def __init__(self, lengths: Union[float, Iterable[float]]) -> None:
        arr = np.atleast_1d(np.asarray(lengths, dtype=np.float64))
        if arr.size == 1:
            arr = np.repeat(arr, 3)
        if arr.shape != (3,):
            raise ValueError("cell needs one or three edge lengths")
        if np.any(arr <= 0):
            raise ValueError("cell edge lengths must be positive")
        self.lengths = arr

    @property
    def volume(self) -> float:
        return float(np.prod(self.lengths))

    @property
    def is_cubic(self) -> bool:
        return bool(np.all(self.lengths == self.lengths[0]))

    def matrix(self) -> np.ndarray:
        """3×3 cell matrix (diagonal for orthorhombic cells)."""
        return np.diag(self.lengths)

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Map positions into ``[0, L)`` per axis."""
        return np.mod(positions, self.lengths)

    def minimum_image(self, displacement: np.ndarray) -> np.ndarray:
        """Minimum-image convention applied to displacement vectors."""
        return displacement - self.lengths * np.round(
            displacement / self.lengths
        )

    def distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Minimum-image distances between position arrays ``a`` and ``b``."""
        d = self.minimum_image(np.asarray(b) - np.asarray(a))
        return np.sqrt(np.sum(d * d, axis=-1))

    def max_cutoff(self) -> float:
        """Largest cutoff valid under pure minimum-image (L/2)."""
        return float(self.lengths.min() / 2.0)

    def image_shifts(self, cutoff: float) -> np.ndarray:
        """Lattice translation vectors covering interactions up to ``cutoff``.

        When ``cutoff`` exceeds L/2 (as the paper's descriptor radial
        cutoffs of up to 12 Å do for a scaled-down box) interactions
        with periodic images beyond the first shell matter; this
        returns all integer-combination shift vectors whose cells could
        contain a neighbor within ``cutoff``.
        """
        n = np.ceil(cutoff / self.lengths).astype(int)
        ranges = [np.arange(-k, k + 1) for k in n]
        grid = np.stack(
            np.meshgrid(*ranges, indexing="ij"), axis=-1
        ).reshape(-1, 3)
        return grid * self.lengths

    def __repr__(self) -> str:  # pragma: no cover
        return f"PeriodicCell(lengths={self.lengths.tolist()})"

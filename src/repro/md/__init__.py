"""Classical molecular-dynamics data generator.

Stands in for the paper's CP2K first-principles trajectories (§2.1.3):
a molten AlCl3–KCl mixture (66.7 / 33.3 mol %, 160 atoms, cubic box of
side 17.84 Å, 498 K) simulated here with a Born–Mayer–Huggins +
damped-shifted-force Coulomb potential under a Langevin thermostat.
The generated frames carry reference total energies and per-atom
forces, shuffled and split 75/25 into training and validation sets in
the same format DeePMD consumes (energy / force / coord / box arrays).

The substitution preserves what matters for the HPO study: a smooth,
physically structured potential-energy surface in which energies and
forces are coupled through a gradient relationship, so the two fitness
objectives genuinely trade off.
"""

from repro.md.cell import PeriodicCell
from repro.md.neighbors import NeighborList, neighbor_pairs
from repro.md.potentials import (
    BornMayerHuggins,
    CompositePotential,
    DSFCoulomb,
    LennardJones,
    PairPotential,
)
from repro.md.integrator import LangevinIntegrator, VelocityVerlet
from repro.md.system import (
    ALCL3_KCL_CHARGES,
    ALCL3_KCL_MASSES,
    SPECIES,
    molten_salt_potential,
    molten_salt_system,
)
from repro.md.simulation import MDSimulation
from repro.md.dataset import Frame, FrameDataset, Trajectory, generate_dataset
from repro.md.observables import (
    mean_squared_displacement,
    radial_distribution,
    velocity_autocorrelation,
)
from repro.md.ewald import EwaldCoulomb

__all__ = [
    "PeriodicCell",
    "NeighborList",
    "neighbor_pairs",
    "PairPotential",
    "LennardJones",
    "BornMayerHuggins",
    "DSFCoulomb",
    "CompositePotential",
    "VelocityVerlet",
    "LangevinIntegrator",
    "MDSimulation",
    "Frame",
    "Trajectory",
    "FrameDataset",
    "generate_dataset",
    "molten_salt_system",
    "molten_salt_potential",
    "SPECIES",
    "ALCL3_KCL_MASSES",
    "ALCL3_KCL_CHARGES",
    "radial_distribution",
    "mean_squared_displacement",
    "velocity_autocorrelation",
    "EwaldCoulomb",
]

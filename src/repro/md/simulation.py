"""High-level MD simulation driver.

Wraps system construction, equilibration, production, and frame
sampling behind a single object, mirroring how the paper's in-house
scripts drove CP2K and post-processed the trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.md.dataset import Frame, Trajectory
from repro.md.integrator import (
    LangevinIntegrator,
    instantaneous_temperature,
    maxwell_boltzmann_velocities,
)
from repro.md.potentials import PairPotential
from repro.md.system import AtomicSystem
from repro.rng import RngLike, ensure_rng


@dataclass
class MDObservables:
    """Per-step scalar observables collected during a run."""

    potential_energy: list[float] = field(default_factory=list)
    temperature: list[float] = field(default_factory=list)

    def as_arrays(self) -> dict[str, np.ndarray]:
        return {
            "potential_energy": np.asarray(self.potential_energy),
            "temperature": np.asarray(self.temperature),
        }


class MDSimulation:
    """Thermostatted MD with trajectory sampling.

    Parameters
    ----------
    system, potential:
        The configuration and reference force field.
    temperature:
        Target temperature in K (paper: 498 K).
    dt:
        Timestep in fs.
    friction:
        Langevin friction in fs^-1.
    """

    def __init__(
        self,
        system: AtomicSystem,
        potential: PairPotential,
        temperature: float = 498.0,
        dt: float = 2.0,
        friction: float = 0.01,
        rng: RngLike = None,
    ) -> None:
        self.system = system
        self.potential = potential
        self.temperature = float(temperature)
        self.rng = ensure_rng(rng)
        self.integrator = LangevinIntegrator(
            potential,
            temperature=temperature,
            friction=friction,
            dt=dt,
            rng=self.rng,
        )
        self.velocities = maxwell_boltzmann_velocities(
            system.masses, temperature, rng=self.rng
        )
        self.observables = MDObservables()

    def equilibrate(self, n_steps: int) -> None:
        """Run without sampling to relax the initial configuration."""
        _, self.velocities = self.integrator.run(
            self.system, self.velocities, n_steps
        )

    def sample_trajectory(
        self, n_frames: int, sample_interval: int = 10
    ) -> Trajectory:
        """Run production MD, recording a frame every ``sample_interval``
        steps along with scalar observables."""
        traj = Trajectory()
        system = self.system

        def cb(step, pos, vel, energy, forces):
            self.observables.potential_energy.append(energy)
            self.observables.temperature.append(
                instantaneous_temperature(system.masses, vel)
            )
            if (step + 1) % sample_interval == 0:
                traj.append(
                    Frame(
                        positions=pos.copy(),
                        species=system.species.copy(),
                        energy=energy,
                        forces=forces.copy(),
                        box=system.cell.lengths.copy(),
                    )
                )

        _, self.velocities = self.integrator.run(
            system, self.velocities, n_frames * sample_interval, callback=cb
        )
        return traj

"""Time integrators and thermostats.

Velocity Verlet for microcanonical checks (energy conservation is one
of the test-suite invariants) and a BAOAB-split Langevin integrator for
generating canonical-ensemble training data at the paper's 498 K.

Units: positions Å, time fs, energy eV, mass amu.  The conversion
``1 eV/Å / amu = EV_A_AMU Å/fs²`` is applied inside the integrators so
callers work in natural MD units throughout.
"""

from __future__ import annotations

import numpy as np

from repro.md.potentials import PairPotential
from repro.md.system import AtomicSystem
from repro.rng import RngLike, ensure_rng

#: Boltzmann constant in eV/K.
KB_EV = 8.617333262e-5

#: Acceleration conversion: (eV/Å)/amu expressed in Å/fs².
EV_A_AMU = 9.64853322e-3


def maxwell_boltzmann_velocities(
    masses: np.ndarray, temperature: float, rng: RngLike = None
) -> np.ndarray:
    """Sample velocities (Å/fs) from the Maxwell–Boltzmann distribution
    and remove the center-of-mass drift."""
    gen = ensure_rng(rng)
    sigma = np.sqrt(KB_EV * temperature * EV_A_AMU / masses)
    v = gen.normal(size=(len(masses), 3)) * sigma[:, None]
    v -= np.average(v, axis=0, weights=masses)
    return v


def kinetic_energy(masses: np.ndarray, velocities: np.ndarray) -> float:
    """Kinetic energy in eV."""
    return float(
        0.5 * np.sum(masses[:, None] * velocities**2) / EV_A_AMU
    )


def instantaneous_temperature(
    masses: np.ndarray, velocities: np.ndarray
) -> float:
    """Kinetic temperature in K (3N degrees of freedom)."""
    n_dof = velocities.size
    return 2.0 * kinetic_energy(masses, velocities) / (n_dof * KB_EV)


class VelocityVerlet:
    """Plain NVE velocity-Verlet integrator."""

    def __init__(self, potential: PairPotential, dt: float = 1.0) -> None:
        self.potential = potential
        self.dt = float(dt)

    def run(
        self,
        system: AtomicSystem,
        velocities: np.ndarray,
        n_steps: int,
        callback=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance ``n_steps``; returns final (positions, velocities).

        ``callback(step, positions, velocities, energy, forces)`` is
        invoked after every step when provided.
        """
        pos = system.positions.copy()
        vel = velocities.copy()
        inv_m = EV_A_AMU / system.masses[:, None]
        energy, forces = self.potential.energy_and_forces(
            pos, system.species, system.cell
        )
        for step in range(n_steps):
            vel += 0.5 * self.dt * forces * inv_m
            pos = system.cell.wrap(pos + self.dt * vel)
            energy, forces = self.potential.energy_and_forces(
                pos, system.species, system.cell
            )
            vel += 0.5 * self.dt * forces * inv_m
            if callback is not None:
                callback(step, pos, vel, energy, forces)
        system.positions = pos
        return pos, vel


class LangevinIntegrator:
    """BAOAB-split Langevin dynamics (Leimkuhler & Matthews 2013).

    The O-step applies the exact Ornstein–Uhlenbeck update
    ``v <- c1 v + c2 * xi`` with ``c1 = exp(-gamma dt)`` and
    ``c2 = sqrt((1 - c1^2) kT / m)``, giving stable canonical sampling
    even at the fairly large friction used to equilibrate melts fast.
    """

    def __init__(
        self,
        potential: PairPotential,
        temperature: float = 498.0,
        friction: float = 0.01,
        dt: float = 1.0,
        rng: RngLike = None,
    ) -> None:
        self.potential = potential
        self.temperature = float(temperature)
        self.friction = float(friction)  # fs^-1
        self.dt = float(dt)
        self.rng = ensure_rng(rng)

    def run(
        self,
        system: AtomicSystem,
        velocities: np.ndarray,
        n_steps: int,
        callback=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        pos = system.positions.copy()
        vel = velocities.copy()
        m = system.masses[:, None]
        inv_m = EV_A_AMU / m
        c1 = np.exp(-self.friction * self.dt)
        c2 = np.sqrt(
            (1.0 - c1 * c1) * KB_EV * self.temperature * EV_A_AMU / m
        )
        energy, forces = self.potential.energy_and_forces(
            pos, system.species, system.cell
        )
        half = 0.5 * self.dt
        for step in range(n_steps):
            vel += half * forces * inv_m  # B
            pos = pos + half * vel  # A
            vel = c1 * vel + c2 * self.rng.normal(size=vel.shape)  # O
            pos = system.cell.wrap(pos + half * vel)  # A
            energy, forces = self.potential.energy_and_forces(
                pos, system.species, system.cell
            )
            vel += half * forces * inv_m  # B
            if callback is not None:
                callback(step, pos, vel, energy, forces)
        system.positions = pos
        return pos, vel

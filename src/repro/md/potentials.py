"""Pair potentials for the reference (ground-truth) force field.

The molten-salt surrogate uses Born–Mayer–Huggins repulsion/dispersion
plus damped shifted-force (DSF/Wolf) Coulomb electrostatics — a
standard rigid-ion molten-salt model.  All evaluation is vectorized
over flat pair arrays produced by :func:`repro.md.neighbors.neighbor_pairs`.

Units: energies in eV, distances in Å, charges in elementary charges.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.special import erfc

from repro.md.cell import PeriodicCell
from repro.md.neighbors import neighbor_pairs

#: Coulomb constant e^2 / (4 pi eps0) in eV * Angstrom.
COULOMB_EV_ANGSTROM = 14.399645


class PairPotential:
    """Base class: species-aware pairwise energy/force evaluation.

    Subclasses implement :meth:`pair_energy_and_scalar_force` returning,
    for arrays of pair distances and species indices, the pair energies
    and the scalar radial force magnitudes ``-dU/dr``.
    """

    cutoff: float

    def pair_energy_and_scalar_force(
        self, r: np.ndarray, si: np.ndarray, sj: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:  # pragma: no cover - abstract
        raise NotImplementedError

    def energy_and_forces(
        self,
        positions: np.ndarray,
        species: np.ndarray,
        cell: PeriodicCell,
    ) -> tuple[float, np.ndarray]:
        """Total potential energy and per-atom forces for a configuration."""
        i, j, d = neighbor_pairs(positions, cell, self.cutoff)
        n = len(positions)
        forces = np.zeros((n, 3))
        if len(i) == 0:
            return 0.0, forces
        r = np.sqrt(np.sum(d * d, axis=1))
        u, f_scalar = self.pair_energy_and_scalar_force(
            r, species[i], species[j]
        )
        # force on j along +d, equal and opposite on i
        fvec = (f_scalar / r)[:, None] * d
        np.add.at(forces, j, fvec)
        np.add.at(forces, i, -fvec)
        return float(np.sum(u)), forces


class LennardJones(PairPotential):
    """Single-species 12-6 Lennard-Jones with a shifted energy cutoff.

    Used by tests (energy conservation, force consistency) where a
    minimal potential is clearer than the full molten-salt model.
    """

    def __init__(
        self, epsilon: float = 0.01, sigma: float = 3.0, cutoff: float = 9.0
    ) -> None:
        self.epsilon = float(epsilon)
        self.sigma = float(sigma)
        self.cutoff = float(cutoff)
        sr6 = (self.sigma / self.cutoff) ** 6
        self._shift = 4.0 * self.epsilon * (sr6 * sr6 - sr6)

    def pair_energy_and_scalar_force(self, r, si, sj):
        sr6 = (self.sigma / r) ** 6
        sr12 = sr6 * sr6
        u = 4.0 * self.epsilon * (sr12 - sr6) - self._shift
        # -dU/dr
        f = 4.0 * self.epsilon * (12.0 * sr12 - 6.0 * sr6) / r
        return u, f


class BornMayerHuggins(PairPotential):
    """Born–Mayer–Huggins repulsion + dispersion.

    ``U(r) = A_ij * exp(-r / rho_ij) - C_ij / r^6``

    with per-species-pair tables ``A`` (eV), ``rho`` (Å), ``C``
    (eV·Å^6).  Energies are shifted to zero at the cutoff.
    """

    def __init__(
        self,
        A: np.ndarray,
        rho: np.ndarray,
        C: np.ndarray,
        cutoff: float = 8.0,
    ) -> None:
        self.A = np.asarray(A, dtype=np.float64)
        self.rho = np.asarray(rho, dtype=np.float64)
        self.C = np.asarray(C, dtype=np.float64)
        if not (self.A.shape == self.rho.shape == self.C.shape):
            raise ValueError("A, rho, C tables must share a shape")
        if self.A.ndim != 2 or self.A.shape[0] != self.A.shape[1]:
            raise ValueError("parameter tables must be square (n_species^2)")
        for name, table in (("A", self.A), ("rho", self.rho), ("C", self.C)):
            if not np.allclose(table, table.T):
                raise ValueError(f"{name} table must be symmetric")
        self.cutoff = float(cutoff)

    def _shift(self, si, sj):
        rc = self.cutoff
        return self.A[si, sj] * np.exp(-rc / self.rho[si, sj]) - self.C[
            si, sj
        ] / rc**6

    def pair_energy_and_scalar_force(self, r, si, sj):
        A = self.A[si, sj]
        rho = self.rho[si, sj]
        C = self.C[si, sj]
        rep = A * np.exp(-r / rho)
        disp = C / r**6
        u = rep - disp - self._shift(si, sj)
        f = rep / rho - 6.0 * disp / r
        return u, f


class DSFCoulomb(PairPotential):
    """Damped shifted-force Coulomb (Fennell & Gezelter 2006).

    ``U(r) = q_i q_j k [ erfc(a r)/r - erfc(a rc)/rc
                         + (r - rc) * (erfc(a rc)/rc^2
                         + 2a/sqrt(pi) * exp(-a^2 rc^2)/rc) ]``

    Both the energy and the force go smoothly to zero at the cutoff,
    which keeps the thermostatted MD stable without an Ewald sum.
    """

    def __init__(
        self,
        charges_by_species: Sequence[float],
        alpha: float = 0.2,
        cutoff: float = 8.0,
    ) -> None:
        self.charges = np.asarray(charges_by_species, dtype=np.float64)
        self.alpha = float(alpha)
        self.cutoff = float(cutoff)
        rc = self.cutoff
        a = self.alpha
        self._e_rc = erfc(a * rc) / rc
        self._f_rc = self._e_rc / rc + (
            2.0 * a / np.sqrt(np.pi)
        ) * np.exp(-(a * rc) ** 2) / rc

    def pair_energy_and_scalar_force(self, r, si, sj):
        qq = self.charges[si] * self.charges[sj] * COULOMB_EV_ANGSTROM
        a = self.alpha
        erfc_ar = erfc(a * r)
        u = qq * (erfc_ar / r - self._e_rc + (r - self.cutoff) * self._f_rc)
        # -dU/dr = qq * [erfc(ar)/r^2 + 2a/sqrt(pi) exp(-a^2 r^2)/r - f_rc]
        f = qq * (
            erfc_ar / r**2
            + (2.0 * a / np.sqrt(np.pi)) * np.exp(-(a * r) ** 2) / r
            - self._f_rc
        )
        return u, f


class CompositePotential(PairPotential):
    """Sum of pair potentials; cutoff is the max of the members'."""

    def __init__(self, terms: Sequence[PairPotential]) -> None:
        if not terms:
            raise ValueError("need at least one potential term")
        self.terms = list(terms)
        self.cutoff = max(t.cutoff for t in self.terms)

    def pair_energy_and_scalar_force(self, r, si, sj):
        u = np.zeros_like(r)
        f = np.zeros_like(r)
        for term in self.terms:
            within = r <= term.cutoff
            if not np.any(within):
                continue
            ut, ft = term.pair_energy_and_scalar_force(
                r[within], si[within], sj[within]
            )
            u[within] += ut
            f[within] += ft
        return u, f

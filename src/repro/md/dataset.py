"""Trajectory frames and DeePMD-style datasets.

§2.1.3: the FPMD trajectory "was converted to input data formats
compatible with DeePMD (energy, force, box values in Numpy arrays)
using in-house scripts.  These arrays were split into separate datasets
after shuffling, and a set of 25% of the frames was withheld for use as
the validation set."  :class:`FrameDataset` reproduces that format and
split.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.md.cell import PeriodicCell
from repro.rng import RngLike, ensure_rng, split_indices


@dataclass
class Frame:
    """One labelled configuration: coordinates plus reference labels."""

    positions: np.ndarray  # (n_atoms, 3) Å
    species: np.ndarray  # (n_atoms,) species indices
    energy: float  # eV (total potential energy)
    forces: np.ndarray  # (n_atoms, 3) eV/Å
    box: np.ndarray  # (3,) orthorhombic edge lengths

    @property
    def n_atoms(self) -> int:
        return len(self.positions)

    @property
    def cell(self) -> PeriodicCell:
        return PeriodicCell(self.box)


@dataclass
class Trajectory:
    """An ordered sequence of frames from one MD run."""

    frames: list[Frame] = field(default_factory=list)

    def append(self, frame: Frame) -> None:
        self.frames.append(frame)

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[Frame]:
        return iter(self.frames)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return Trajectory(self.frames[idx])
        return self.frames[idx]

    def energies(self) -> np.ndarray:
        return np.array([f.energy for f in self.frames])


class FrameDataset:
    """A shuffled, split dataset of frames in DeePMD array layout.

    Attributes ``train`` and ``validation`` are lists of frames;
    :meth:`arrays` exports the DeePMD-style dict of stacked arrays
    (``coord``, ``energy``, ``force``, ``box``).
    """

    def __init__(
        self,
        frames: Sequence[Frame],
        validation_fraction: float = 0.25,
        rng: RngLike = None,
    ) -> None:
        if not frames:
            raise ValueError("dataset needs at least one frame")
        if not 0.0 <= validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")
        frames = list(frames)
        n_atoms = frames[0].n_atoms
        for f in frames:
            if f.n_atoms != n_atoms:
                raise ValueError("all frames must have the same atom count")
        self.n_atoms = n_atoms
        val_idx, train_idx = split_indices(
            len(frames), [validation_fraction], rng
        )
        self.train: list[Frame] = [frames[i] for i in train_idx]
        self.validation: list[Frame] = [frames[i] for i in val_idx]
        if not self.train:
            raise ValueError("validation fraction leaves no training frames")

    def __len__(self) -> int:
        return len(self.train) + len(self.validation)

    @staticmethod
    def _stack(frames: Sequence[Frame]) -> dict[str, np.ndarray]:
        return {
            "coord": np.stack([f.positions for f in frames]),
            "energy": np.array([f.energy for f in frames]),
            "force": np.stack([f.forces for f in frames]),
            "box": np.stack([f.box for f in frames]),
            "species": frames[0].species.copy(),
        }

    def arrays(self, split: str = "train") -> dict[str, np.ndarray]:
        """DeePMD-style arrays for ``split`` ('train' or 'validation')."""
        if split == "train":
            return self._stack(self.train)
        if split == "validation":
            if not self.validation:
                raise ValueError("dataset has no validation frames")
            return self._stack(self.validation)
        raise ValueError("split must be 'train' or 'validation'")

    def energy_statistics(self) -> dict[str, float]:
        """Mean/std of training energies — used to normalize the NN target."""
        e = np.array([f.energy for f in self.train])
        return {
            "mean": float(e.mean()),
            "std": float(e.std() if len(e) > 1 else 1.0),
            "per_atom_mean": float(e.mean() / self.n_atoms),
        }

    def save(self, directory: str | Path) -> None:
        """Persist as .npy arrays plus a JSON manifest."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for split in ("train", "validation"):
            frames = self.train if split == "train" else self.validation
            if not frames:
                continue
            arrays = self._stack(frames)
            for key, arr in arrays.items():
                np.save(directory / f"{split}_{key}.npy", arr)
        manifest = {
            "n_atoms": self.n_atoms,
            "n_train": len(self.train),
            "n_validation": len(self.validation),
        }
        (directory / "manifest.json").write_text(json.dumps(manifest))

    @classmethod
    def load(cls, directory: str | Path) -> "FrameDataset":
        """Inverse of :meth:`save`."""
        directory = Path(directory)
        manifest = json.loads((directory / "manifest.json").read_text())
        ds = cls.__new__(cls)
        ds.n_atoms = manifest["n_atoms"]
        for split, attr in (("train", "train"), ("validation", "validation")):
            frames: list[Frame] = []
            coord_path = directory / f"{split}_coord.npy"
            if coord_path.exists():
                coord = np.load(coord_path)
                energy = np.load(directory / f"{split}_energy.npy")
                force = np.load(directory / f"{split}_force.npy")
                box = np.load(directory / f"{split}_box.npy")
                species = np.load(directory / f"{split}_species.npy")
                for k in range(len(coord)):
                    frames.append(
                        Frame(
                            positions=coord[k],
                            species=species,
                            energy=float(energy[k]),
                            forces=force[k],
                            box=box[k],
                        )
                    )
            setattr(ds, attr, frames)
        return ds


def generate_dataset(
    n_frames: int = 200,
    n_alcl3: int = 4,
    n_kcl: int = 2,
    temperature: float = 498.0,
    sample_interval: int = 10,
    equilibration_steps: int = 200,
    dt: float = 2.0,
    validation_fraction: float = 0.25,
    rng: RngLike = None,
) -> FrameDataset:
    """End-to-end data generation: build, equilibrate, sample, split.

    Defaults produce a 20-atom scaled replica of the paper's system —
    fast enough for unit tests while keeping the 2:1 AlCl3:KCl
    stoichiometry and the paper's number density and temperature.
    """
    from repro.md.integrator import (
        LangevinIntegrator,
        maxwell_boltzmann_velocities,
    )
    from repro.md.system import molten_salt_potential, molten_salt_system

    gen = ensure_rng(rng)
    system = molten_salt_system(n_alcl3=n_alcl3, n_kcl=n_kcl, rng=gen)
    cutoff = min(8.0, 0.99 * system.cell.max_cutoff())
    potential = molten_salt_potential(cutoff=cutoff)
    integrator = LangevinIntegrator(
        potential, temperature=temperature, dt=dt, rng=gen
    )
    velocities = maxwell_boltzmann_velocities(
        system.masses, temperature, rng=gen
    )
    # equilibrate
    _, velocities = integrator.run(system, velocities, equilibration_steps)

    traj = Trajectory()

    def sample(step, pos, vel, energy, forces):
        if (step + 1) % sample_interval == 0:
            traj.append(
                Frame(
                    positions=pos.copy(),
                    species=system.species.copy(),
                    energy=energy,
                    forces=forces.copy(),
                    box=system.cell.lengths.copy(),
                )
            )

    integrator.run(
        system, velocities, n_frames * sample_interval, callback=sample
    )
    return FrameDataset(
        traj.frames[:n_frames],
        validation_fraction=validation_fraction,
        rng=gen,
    )

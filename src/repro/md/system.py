"""The molten AlCl3–KCl system definition.

§2.1.3: "a mixture of molten aluminum and potassium chloride at
percentages of 66.7 and 33.3 %, respectively, with 160 atoms and a
square box size of side length of 17.84 Å ... simulated at 498 K."

A 2:1 AlCl3:KCl molar ratio with 160 atoms resolves to 32 AlCl3 + 16
KCl → 32 Al, 112 Cl, 16 K (charge neutral with formal charges +3, −1,
+1).  :func:`molten_salt_system` builds that composition — or a scaled
version with the same stoichiometry and number density — and
:func:`molten_salt_potential` supplies the rigid-ion BMH + DSF-Coulomb
reference force field.  The BMH parameters are plausible Tosi–Fumi
style values; the reproduction needs a physically structured smooth
PES, not chemical fidelity to a particular salt.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.cell import PeriodicCell
from repro.md.potentials import (
    BornMayerHuggins,
    CompositePotential,
    DSFCoulomb,
)
from repro.rng import RngLike, ensure_rng

#: Species index order used throughout the package.
SPECIES: tuple[str, ...] = ("Al", "K", "Cl")

#: Atomic masses in amu.
ALCL3_KCL_MASSES: dict[str, float] = {"Al": 26.982, "K": 39.098, "Cl": 35.453}

#: Formal ionic charges (rigid-ion model).
ALCL3_KCL_CHARGES: dict[str, float] = {"Al": 3.0, "K": 1.0, "Cl": -1.0}

#: Volume per atom of the paper's system (17.84^3 / 160 Å^3).
VOLUME_PER_ATOM = 17.84**3 / 160.0


@dataclass
class AtomicSystem:
    """A configuration: positions, species indices, masses, and the cell."""

    positions: np.ndarray
    species: np.ndarray
    masses: np.ndarray
    cell: PeriodicCell

    @property
    def n_atoms(self) -> int:
        return len(self.positions)

    def species_names(self) -> list[str]:
        return [SPECIES[s] for s in self.species]


def molten_salt_composition(n_alcl3: int, n_kcl: int) -> np.ndarray:
    """Species-index array for a given formula-unit count (Al=0, K=1, Cl=2)."""
    if n_alcl3 < 0 or n_kcl < 0 or (n_alcl3 + n_kcl) == 0:
        raise ValueError("need a positive number of formula units")
    species = (
        [0] * n_alcl3 + [1] * n_kcl + [2] * (3 * n_alcl3 + n_kcl)
    )
    return np.asarray(species, dtype=np.int64)


def molten_salt_system(
    n_alcl3: int = 32,
    n_kcl: int = 16,
    rng: RngLike = None,
    min_separation: float = 2.0,
) -> AtomicSystem:
    """Build an AlCl3–KCl configuration at the paper's number density.

    Defaults reproduce the paper's 160-atom system; pass smaller counts
    (keeping the 2:1 ratio, e.g. ``n_alcl3=4, n_kcl=2``) for the
    scaled-down trainings used in tests and examples.  Atoms are placed
    by rejection sampling so no pair starts closer than
    ``min_separation``, which keeps the first MD steps stable.
    """
    gen = ensure_rng(rng)
    species = molten_salt_composition(n_alcl3, n_kcl)
    n = len(species)
    box = (n * VOLUME_PER_ATOM) ** (1.0 / 3.0)
    cell = PeriodicCell(box)
    positions = np.zeros((n, 3))
    placed = 0
    attempts = 0
    max_attempts = 20000 * n
    while placed < n:
        trial = gen.uniform(0.0, box, size=3)
        if placed:
            d = cell.minimum_image(positions[:placed] - trial)
            if np.min(np.sum(d * d, axis=1)) < min_separation**2:
                attempts += 1
                if attempts > max_attempts:
                    raise RuntimeError(
                        "could not place atoms without overlap; lower "
                        "min_separation"
                    )
                continue
        positions[placed] = trial
        placed += 1
    masses = np.array(
        [ALCL3_KCL_MASSES[SPECIES[s]] for s in species]
    )
    return AtomicSystem(
        positions=positions, species=species, masses=masses, cell=cell
    )


def molten_salt_potential(cutoff: float | None = None) -> CompositePotential:
    """The rigid-ion BMH + DSF-Coulomb reference force field.

    ``cutoff`` defaults to min(8 Å, just under L/2 is the caller's
    responsibility — MD drivers clamp as needed).
    """
    rc = 8.0 if cutoff is None else float(cutoff)
    # species order Al, K, Cl; Tosi–Fumi-flavoured parameters (eV, Å, eV Å^6)
    A = np.array(
        [
            [2500.0, 2800.0, 1800.0],
            [2800.0, 2800.0, 2100.0],
            [1800.0, 2100.0, 1600.0],
        ]
    )
    rho = np.array(
        [
            [0.25, 0.29, 0.30],
            [0.29, 0.33, 0.33],
            [0.30, 0.33, 0.35],
        ]
    )
    C = np.array(
        [
            [0.0, 0.0, 15.0],
            [0.0, 15.0, 40.0],
            [15.0, 40.0, 110.0],
        ]
    )
    charges = [
        ALCL3_KCL_CHARGES["Al"],
        ALCL3_KCL_CHARGES["K"],
        ALCL3_KCL_CHARGES["Cl"],
    ]
    return CompositePotential(
        [
            BornMayerHuggins(A=A, rho=rho, C=C, cutoff=rc),
            DSFCoulomb(charges_by_species=charges, alpha=0.2, cutoff=rc),
        ]
    )

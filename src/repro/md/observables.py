"""Structural and dynamical observables for melt trajectories.

The chemistry behind the paper (§1, §3.2) judges a potential by the
physics it reproduces: the pair structure of the melt (radial
distribution functions — molten salts show charge ordering with
distinct cation–anion first peaks) and transport (mean-squared
displacement → diffusion).  These observables let the examples and
benches validate both the reference force field and the deployed
learned potential.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.md.cell import PeriodicCell
from repro.md.dataset import Frame


@dataclass
class RDFResult:
    """A radial distribution function g(r)."""

    r: np.ndarray  # bin centers (Å)
    g: np.ndarray  # g(r)
    species_a: Optional[int]
    species_b: Optional[int]

    def first_peak(self) -> tuple[float, float]:
        """(position, height) of the first maximum."""
        if len(self.g) == 0:
            raise ValueError("empty RDF")
        i = int(np.argmax(self.g))
        return float(self.r[i]), float(self.g[i])


def radial_distribution(
    frames: Sequence[Frame],
    r_max: Optional[float] = None,
    n_bins: int = 100,
    species_a: Optional[int] = None,
    species_b: Optional[int] = None,
) -> RDFResult:
    """g(r) averaged over ``frames``, optionally species-resolved.

    ``species_a``/``species_b`` select the pair channel (e.g. Al–Cl);
    ``None`` uses all atoms.  ``r_max`` defaults to just under half the
    box (the largest distance with an unambiguous minimum image).
    """
    if not frames:
        raise ValueError("need at least one frame")
    cell = frames[0].cell
    if r_max is None:
        r_max = 0.99 * cell.max_cutoff()
    if r_max > cell.max_cutoff() + 1e-9:
        raise ValueError(
            f"r_max {r_max} exceeds the minimum-image limit "
            f"{cell.max_cutoff():.3f}"
        )
    edges = np.linspace(0.0, r_max, n_bins + 1)
    centers = 0.5 * (edges[1:] + edges[:-1])
    counts = np.zeros(n_bins)
    n_pairs_total = 0.0
    volume = cell.volume
    for frame in frames:
        pos = frame.positions
        species = frame.species
        if species_a is None:
            idx_a = np.arange(len(pos))
        else:
            idx_a = np.where(species == species_a)[0]
        if species_b is None:
            idx_b = np.arange(len(pos))
        else:
            idx_b = np.where(species == species_b)[0]
        if len(idx_a) == 0 or len(idx_b) == 0:
            raise ValueError("no atoms of the requested species")
        diff = pos[idx_b][None, :, :] - pos[idx_a][:, None, :]
        diff = cell.minimum_image(diff)
        dist = np.sqrt(np.sum(diff * diff, axis=-1))
        if species_a == species_b or (
            species_a is None and species_b is None
        ):
            # exclude self-distances
            same = idx_a[:, None] == idx_b[None, :]
            dist = dist[~same]
        else:
            dist = dist.ravel()
        dist = dist[dist < r_max]
        hist, _ = np.histogram(dist, bins=edges)
        counts += hist
        n_pairs_total += len(idx_a) * len(idx_b) - (
            len(np.intersect1d(idx_a, idx_b))
        )
    shell_volumes = (4.0 / 3.0) * np.pi * (
        edges[1:] ** 3 - edges[:-1] ** 3
    )
    pair_density = n_pairs_total / len(frames) / volume
    expected = shell_volumes * pair_density * len(frames)
    g = np.divide(
        counts, expected, out=np.zeros_like(counts), where=expected > 0
    )
    return RDFResult(
        r=centers, g=g, species_a=species_a, species_b=species_b
    )


@dataclass
class MSDResult:
    """Mean-squared displacement vs lag time."""

    lag_steps: np.ndarray
    msd: np.ndarray  # Å^2

    def diffusion_coefficient(self, dt_fs: float) -> float:
        """Einstein estimate D = slope / 6 (Å²/fs) from the last half."""
        if len(self.lag_steps) < 4:
            raise ValueError("need at least four lag points")
        half = len(self.lag_steps) // 2
        t = self.lag_steps[half:] * dt_fs
        slope = np.polyfit(t, self.msd[half:], 1)[0]
        return float(slope / 6.0)


def mean_squared_displacement(
    positions: np.ndarray,
    cell: PeriodicCell,
    max_lag: Optional[int] = None,
) -> MSDResult:
    """MSD from a ``(n_frames, n_atoms, 3)`` *wrapped* trajectory.

    Positions are unwrapped internally by accumulating minimum-image
    steps between consecutive frames (valid when no atom moves more
    than half a box per frame, which holds for any sane timestep).
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 3:
        raise ValueError("positions must be (n_frames, n_atoms, 3)")
    n_frames = len(positions)
    if n_frames < 2:
        raise ValueError("need at least two frames")
    steps = cell.minimum_image(np.diff(positions, axis=0))
    unwrapped = np.concatenate(
        [positions[:1], positions[0] + np.cumsum(steps, axis=0)]
    )
    max_lag = max_lag or n_frames // 2
    max_lag = min(max_lag, n_frames - 1)
    lags = np.arange(1, max_lag + 1)
    msd = np.empty(len(lags))
    for k, lag in enumerate(lags):
        d = unwrapped[lag:] - unwrapped[:-lag]
        msd[k] = float(np.mean(np.sum(d * d, axis=-1)))
    return MSDResult(lag_steps=lags, msd=msd)


def velocity_autocorrelation(
    velocities: np.ndarray, max_lag: Optional[int] = None
) -> np.ndarray:
    """Normalized VACF from a ``(n_frames, n_atoms, 3)`` velocity series."""
    velocities = np.asarray(velocities, dtype=np.float64)
    if velocities.ndim != 3:
        raise ValueError("velocities must be (n_frames, n_atoms, 3)")
    n_frames = len(velocities)
    max_lag = max_lag or n_frames // 2
    max_lag = min(max_lag, n_frames - 1)
    c0 = float(np.mean(np.sum(velocities * velocities, axis=-1)))
    out = np.empty(max_lag + 1)
    out[0] = 1.0
    for lag in range(1, max_lag + 1):
        c = np.mean(
            np.sum(velocities[lag:] * velocities[:-lag], axis=-1)
        )
        out[lag] = float(c / c0)
    return out

"""Neighbor search with periodic images.

Two entry points:

:func:`neighbor_pairs`
    Flat ``(i, j, displacement)`` pair arrays for pair-potential energy
    and force evaluation (each unordered pair appears once).

:class:`NeighborList`
    Padded per-atom neighbor tables — the layout the DeepPot-SE
    descriptor consumes: for each atom a fixed-width list of neighbor
    indices, displacement vectors and a validity mask.

Both support cutoffs larger than half the box (needed because the HPO
search explores descriptor cutoffs up to 12 Å on boxes that may be
smaller) by enumerating periodic image shifts, and both use an O(N²)
distance matrix per image shift, which is the right trade-off for the
few-hundred-atom systems this reproduction runs: vectorized NumPy
beats a Python-loop cell list by a wide margin at this size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.cell import PeriodicCell


def neighbor_pairs(
    positions: np.ndarray, cell: PeriodicCell, cutoff: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All interacting pairs within ``cutoff``.

    Returns ``(i, j, d)`` where ``d[k] = r_j + shift - r_i`` is the
    displacement from atom ``i[k]`` to the (possibly image) atom
    ``j[k]``.  Each unordered pair/image appears exactly once; for
    same-cell pairs this means ``i < j``, and for image pairs the shift
    set is de-duplicated by keeping only the lexicographically positive
    half of the shift vectors.
    """
    positions = np.asarray(positions, dtype=np.float64)
    n = len(positions)
    shifts = cell.image_shifts(cutoff)
    zero_mask = np.all(shifts == 0.0, axis=1)
    # keep the zero shift plus one representative of each +/- shift pair
    keep = []
    for s, is_zero in zip(shifts, zero_mask):
        if is_zero:
            keep.append(s)
        elif (s[0], s[1], s[2]) > (-s[0], -s[1], -s[2]):
            keep.append(s)
    out_i: list[np.ndarray] = []
    out_j: list[np.ndarray] = []
    out_d: list[np.ndarray] = []
    cut2 = cutoff * cutoff
    for s in keep:
        diff = positions[None, :, :] + s - positions[:, None, :]
        dist2 = np.sum(diff * diff, axis=-1)
        if np.all(s == 0.0):
            ii, jj = np.where(
                np.triu(dist2 <= cut2, k=1)
            )
        else:
            ii, jj = np.where(dist2 <= cut2)
        if len(ii):
            out_i.append(ii)
            out_j.append(jj)
            out_d.append(diff[ii, jj])
    if not out_i:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty((0, 3))
    return (
        np.concatenate(out_i),
        np.concatenate(out_j),
        np.concatenate(out_d),
    )


@dataclass
class NeighborList:
    """Padded per-atom neighbor table for descriptor construction.

    Attributes
    ----------
    indices:
        ``(n_atoms, max_neighbors)`` int array of neighbor atom indices
        (pointing at the *central-cell* copy of each neighbor; forces
        on image atoms fold back onto their central-cell original).
        Padded entries hold 0 and are masked out.
    displacements:
        ``(n_atoms, max_neighbors, 3)`` displacement vectors from the
        central atom to each neighbor (image shifts applied).
    mask:
        ``(n_atoms, max_neighbors)`` float array, 1 for real neighbors.
    """

    indices: np.ndarray
    displacements: np.ndarray
    mask: np.ndarray

    @property
    def n_atoms(self) -> int:
        return self.indices.shape[0]

    @property
    def max_neighbors(self) -> int:
        return self.indices.shape[1]

    def neighbor_counts(self) -> np.ndarray:
        return self.mask.sum(axis=1).astype(int)

    @classmethod
    def build(
        cls,
        positions: np.ndarray,
        cell: PeriodicCell,
        cutoff: float,
        max_neighbors: int | None = None,
    ) -> "NeighborList":
        """Construct the padded table from a configuration.

        ``max_neighbors`` defaults to the observed maximum; passing a
        fixed value gives consistent array shapes across frames (and
        raises if any atom exceeds it).
        """
        positions = np.asarray(positions, dtype=np.float64)
        n = len(positions)
        cut2 = cutoff * cutoff
        all_i: list[np.ndarray] = []
        all_j: list[np.ndarray] = []
        all_d: list[np.ndarray] = []
        # enumerate each unordered pair/image once (the same canonical
        # half-shift set as neighbor_pairs) and emit both directions
        # with exactly negated displacements, so the table is exactly
        # symmetric even for pairs sitting on the cutoff boundary
        pi, pj, pd = neighbor_pairs(positions, cell, cutoff)
        if len(pi):
            all_i.append(pi)
            all_j.append(pj)
            all_d.append(pd)
            all_i.append(pj)
            all_j.append(pi)
            all_d.append(-pd)
        if all_i:
            flat_i = np.concatenate(all_i)
            flat_j = np.concatenate(all_j)
            flat_d = np.concatenate(all_d)
        else:
            flat_i = np.empty(0, dtype=np.int64)
            flat_j = np.empty(0, dtype=np.int64)
            flat_d = np.empty((0, 3))
        counts = np.bincount(flat_i, minlength=n)
        observed_max = int(counts.max()) if len(counts) else 0
        if max_neighbors is None:
            width = max(observed_max, 1)
        else:
            if observed_max > max_neighbors:
                raise ValueError(
                    f"an atom has {observed_max} neighbors, exceeding the "
                    f"requested max_neighbors={max_neighbors}"
                )
            width = max_neighbors
        indices = np.zeros((n, width), dtype=np.int64)
        disp = np.zeros((n, width, 3))
        mask = np.zeros((n, width))
        if len(flat_i):
            # group by central atom, closest-first within each group
            r2 = np.sum(flat_d * flat_d, axis=1)
            order = np.lexsort((r2, flat_i))
            si, sj, sd = flat_i[order], flat_j[order], flat_d[order]
            offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
            slots = np.arange(len(si)) - offsets[si]
            indices[si, slots] = sj
            disp[si, slots] = sd
            mask[si, slots] = 1.0
        return cls(indices=indices, displacements=disp, mask=mask)

"""Ewald summation for point-charge electrostatics.

The production data generator uses damped shifted-force (DSF) Coulomb
— fast and adequate for generating training data — but validating that
choice requires the exact reference: the classic Ewald split of the
conditionally convergent Coulomb sum into a short-ranged real-space
part, a smooth reciprocal-space part, and self/background corrections.
``tests/test_md_physics.py`` checks the DSF energies and forces against
this implementation, and :class:`EwaldCoulomb` can replace
:class:`~repro.md.potentials.DSFCoulomb` in the reference force field
when higher fidelity matters more than speed.

Units: eV, Å, elementary charges (the Coulomb constant is applied
internally).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.special import erfc

from repro.md.cell import PeriodicCell
from repro.md.neighbors import neighbor_pairs
from repro.md.potentials import COULOMB_EV_ANGSTROM


class EwaldCoulomb:
    """Exact periodic Coulomb energy and forces via Ewald summation.

    Parameters
    ----------
    charges_by_species:
        Charge per species index.
    alpha:
        Splitting parameter (Å⁻¹); ``None`` picks
        ``5 / min(L)``, a robust default for small boxes.
    r_cut:
        Real-space cutoff; defaults to just under half the box.
    k_max:
        Reciprocal-space shell limit (integer triples with
        ``|n| <= k_max`` per axis, excluding 0).
    """

    def __init__(
        self,
        charges_by_species,
        alpha: Optional[float] = None,
        r_cut: Optional[float] = None,
        k_max: int = 7,
    ) -> None:
        self.charges = np.asarray(charges_by_species, dtype=np.float64)
        self.alpha = alpha
        self.r_cut = r_cut
        self.k_max = int(k_max)

    # ------------------------------------------------------------------
    def _parameters(self, cell: PeriodicCell) -> tuple[float, float]:
        L_min = float(cell.lengths.min())
        alpha = self.alpha if self.alpha is not None else 5.0 / L_min
        r_cut = (
            self.r_cut if self.r_cut is not None else 0.49 * L_min
        )
        return alpha, r_cut

    def energy_and_forces(
        self,
        positions: np.ndarray,
        species: np.ndarray,
        cell: PeriodicCell,
    ) -> tuple[float, np.ndarray]:
        positions = np.asarray(positions, dtype=np.float64)
        q = self.charges[np.asarray(species)]
        n = len(positions)
        alpha, r_cut = self._parameters(cell)
        k = COULOMB_EV_ANGSTROM
        forces = np.zeros((n, 3))

        # ---------------- real space ----------------
        i, j, d = neighbor_pairs(positions, cell, r_cut)
        e_real = 0.0
        if len(i):
            r = np.sqrt(np.sum(d * d, axis=1))
            qq = q[i] * q[j] * k
            e_real = float(np.sum(qq * erfc(alpha * r) / r))
            f_scalar = qq * (
                erfc(alpha * r) / r**2
                + (2.0 * alpha / np.sqrt(np.pi))
                * np.exp(-((alpha * r) ** 2))
                / r
            )
            fvec = (f_scalar / r)[:, None] * d
            np.add.at(forces, j, fvec)
            np.add.at(forces, i, -fvec)

        # ---------------- reciprocal space ----------------
        L = cell.lengths
        volume = cell.volume
        rng_k = np.arange(-self.k_max, self.k_max + 1)
        grid = np.stack(
            np.meshgrid(rng_k, rng_k, rng_k, indexing="ij"), axis=-1
        ).reshape(-1, 3)
        grid = grid[np.any(grid != 0, axis=1)]
        kvecs = 2.0 * np.pi * grid / L  # (M, 3)
        k2 = np.sum(kvecs * kvecs, axis=1)
        keep = k2 < (2.0 * np.pi * self.k_max / L.max()) ** 2 * 4.0
        kvecs, k2 = kvecs[keep], k2[keep]
        phases = positions @ kvecs.T  # (n, M)
        s_re = q @ np.cos(phases)
        s_im = q @ np.sin(phases)
        prefac = (
            4.0 * np.pi / volume * np.exp(-k2 / (4.0 * alpha**2)) / k2
        )
        e_recip = 0.5 * k * float(
            np.sum(prefac * (s_re**2 + s_im**2))
        )
        # forces: F_i = k q_i sum_k prefac k_vec [sin(k.r_i) S_re - cos(k.r_i) S_im]
        sin_p = np.sin(phases)
        cos_p = np.cos(phases)
        coeff = prefac * (
            sin_p * s_re[None, :] - cos_p * s_im[None, :]
        )  # (n, M)
        forces += k * q[:, None] * (coeff @ kvecs)

        # ---------------- self energy ----------------
        e_self = -k * alpha / np.sqrt(np.pi) * float(np.sum(q * q))

        # (neutral systems: no background term)
        return e_real + e_recip + e_self, forces


def madelung_nacl(n_cells: int = 2, k_max: int = 8) -> float:
    """Madelung constant of rock-salt NaCl computed via Ewald.

    Returns the dimensionless constant (literature: 1.747565); used by
    the test suite as an absolute correctness check of the summation.
    """
    # unit cube of side 2 with alternating charges on a simple cubic net
    a = 1.0  # nearest-neighbor spacing
    n = 2 * n_cells
    coords = []
    charges = []
    for x in range(n):
        for y in range(n):
            for z in range(n):
                coords.append([x * a, y * a, z * a])
                charges.append(1.0 if (x + y + z) % 2 == 0 else -1.0)
    positions = np.asarray(coords, dtype=np.float64)
    species = np.array(
        [0 if c > 0 else 1 for c in charges], dtype=np.int64
    )
    cell = PeriodicCell(n * a)
    ewald = EwaldCoulomb([1.0, -1.0], k_max=k_max)
    energy, _ = ewald.energy_and_forces(positions, species, cell)
    # E = -M * k * N / (2a) summed over ion pairs -> per-ion energy
    per_ion = energy / len(positions)
    return float(-per_ion * 2.0 * a / COULOMB_EV_ANGSTROM)

"""Exception hierarchy shared across the package.

The paper's evaluation workflow (§2.2.4) distinguishes several failure
modes — training timeouts, bad hyperparameter combinations, and node
failures — all of which must be caught and converted into ``MAXINT``
fitness values so that NSGA-II's sorting remains well defined.  The
exception types below let each substrate signal its failure mode
precisely while the HPO layer treats them uniformly.
"""

from __future__ import annotations

import numpy as np

#: The failure fitness: large, finite, and totally ordered — unlike NaN.
#: §2.2.4's replacement for LEAP's NaN-on-failure default, hoisted here
#: as the single source of truth for every layer (re-exported from
#: :mod:`repro.evo.individual` for compatibility).
MAXINT: float = float(np.iinfo(np.int64).max)


class ReproError(Exception):
    """Base class for all package-specific errors."""


class EvaluationError(ReproError):
    """A fitness evaluation failed for any reason.

    Mirrors the situations in §2.2.4 where "the unique combination of
    hyperparameter values will cause training to fail".
    """


class TrainingTimeoutError(EvaluationError):
    """Training exceeded its wall-clock budget (the paper's 2-hour cap)."""

    def __init__(self, elapsed: float, limit: float) -> None:
        super().__init__(
            f"training exceeded time limit: {elapsed:.1f}s > {limit:.1f}s"
        )
        self.elapsed = elapsed
        self.limit = limit


class TrainingDivergedError(EvaluationError):
    """Training produced non-finite losses (a fatal hyperparameter combo)."""


class InjectedFaultError(EvaluationError):
    """A transient evaluator crash simulated by the chaos harness.

    Subclasses :class:`EvaluationError` so the engine applies the same
    exception→MAXINT policy it applies to real evaluator failures.
    """


class ConfigurationError(ReproError):
    """An input configuration is invalid (bad input.json, bad bounds, ...)."""


class WorkerFailure(ReproError):
    """A distributed worker died while running a task (hardware fault)."""

    def __init__(self, worker: str, message: str = "") -> None:
        super().__init__(f"worker {worker} failed" + (f": {message}" if message else ""))
        self.worker = worker


class WorkerRevoked(WorkerFailure):
    """A worker was preempted (spot-style revocation) mid-task.

    Subclasses :class:`WorkerFailure` so a standalone pool backend
    degrades to the same crash→``MAXINT`` policy; the elastic fleet
    backend catches it first and requeues the task to a surviving
    member instead.
    """


class SchedulerError(ReproError):
    """The distributed scheduler cannot make progress."""


class WalltimeExceeded(ReproError):
    """A batch job hit its allocation walltime (the paper's 12-hour jobs)."""


class DecodeError(ReproError):
    """A genome could not be decoded into a phenome."""


class StoreError(ReproError):
    """Durable campaign state is unusable (missing or unreadable
    journal, irrecoverable resume preconditions)."""


class ServiceError(ReproError):
    """The multi-tenant campaign service cannot honor a request
    (bad submission, unknown campaign, server-side failure)."""


class CampaignCancelled(ServiceError):
    """A tenant cancelled this campaign; it stops at the next
    generation boundary (everything journaled so far stays valid)."""


class ServiceShutdown(ServiceError):
    """The service is draining for shutdown; running campaigns stop at
    their next generation boundary and are marked resumable."""

"""Deterministic chaos harness.

Three pieces (see EXPERIMENTS.md "Chaos testing"):

* :class:`FaultPlan` / :class:`Fault` — scripted, seed-deterministic
  schedules of injectable faults;
* :class:`Injector` — executes a plan through the process-wide
  :mod:`repro.injection` hooks (and doubles as a worker
  ``FaultPolicy``);
* :class:`InvariantChecker` — replays a campaign's journal, trace,
  and cache and asserts the system-wide fault-tolerance invariants.
"""

from repro.chaos.injector import InjectedFault, Injector
from repro.chaos.invariants import (
    InvariantChecker,
    InvariantReport,
    Violation,
    verify_resume_equivalence,
)
from repro.chaos.plan import (
    ALL_KINDS,
    RECOVERABLE_KINDS,
    SITES,
    STORE_KINDS,
    Fault,
    FaultPlan,
)

__all__ = [
    "ALL_KINDS",
    "RECOVERABLE_KINDS",
    "SITES",
    "STORE_KINDS",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "Injector",
    "InvariantChecker",
    "InvariantReport",
    "Violation",
    "verify_resume_equivalence",
]

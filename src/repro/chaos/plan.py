"""The FaultPlan DSL: scripted, seed-deterministic fault schedules.

A plan is an ordered list of :class:`Fault` literals, each naming a
*kind* (which injection site it fires at) and an activation window
``[at, at + count)`` in that site's event ordinals::

    plan = FaultPlan([
        Fault("worker_death", at=3),
        Fault("slow_worker", at=0, count=2, seconds=0.5,
              worker="node-001"),
        Fault("journal_truncate", at=4, offset=17),
    ])
    with use_injector(plan.injector()):
        ...run the campaign...

Sites count their own events: worker-site faults count task pickups,
``scheduler.submit`` counts submissions, ``engine.dispatch`` counts
backend dispatches (cache and dedup hits don't dispatch), and the
store sites count inserts/appends.  Worker-site faults with an
explicit ``worker=`` match that worker's *own* task index instead —
exactly the ``ScriptedFaults`` ``(worker, task_index)`` semantics.

:meth:`FaultPlan.random` draws a plan from a seed, so property tests
can sweep randomized schedules while staying bit-reproducible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

import numpy as np

#: kind -> injection site consulted by the matching hook
SITES: dict[str, str] = {
    "worker_death": "worker.death",
    "revoke_worker": "worker.revoke",
    "slow_worker": "worker.delay",
    "submit_delay": "scheduler.submit",
    "eval_exception": "engine.dispatch",
    "eval_timeout": "engine.dispatch",
    "cache_corrupt": "cache.insert",
    "journal_truncate": "journal.append",
}

ALL_KINDS: tuple[str, ...] = tuple(SITES)

#: kinds that never change *what* a campaign computes — only how long
#: it takes or what the durable store must recover from.  Campaigns
#: whose breeding happens on the main thread (generational, baselines)
#: produce bit-identical results under any plan drawn from these.
#: ``revoke_worker`` is recoverable too (the fleet requeues revoked
#: tasks with unchanged results), but it is deliberately NOT listed
#: here: existing seeded plans draw ``rng.integers(len(kinds))`` over
#: this tuple, so growing it would silently reshuffle every recorded
#: equivalence test.  Pass ``kinds=(*RECOVERABLE_KINDS,
#: "revoke_worker")`` explicitly for preemption storms.
RECOVERABLE_KINDS: tuple[str, ...] = (
    "worker_death",
    "slow_worker",
    "submit_delay",
    "cache_corrupt",
    "journal_truncate",
)

#: kinds whose effect is ordering-free even inline (no cluster): they
#: only stress the durable store's corruption/torn-write tolerance.
STORE_KINDS: tuple[str, ...] = ("cache_corrupt", "journal_truncate")

_DELAY_KINDS = ("slow_worker", "submit_delay")


@dataclass(frozen=True)
class Fault:
    """One scripted fault.

    ``at``/``count`` give the activation window in site-event ordinals;
    ``worker`` restricts worker-site faults to one worker (matching its
    per-worker task index); ``seconds`` parameterizes delay kinds;
    ``offset`` is the byte count a ``journal_truncate`` chops.
    """

    kind: str
    at: int = 0
    count: int = 1
    worker: Optional[str] = None
    seconds: float = 0.0
    offset: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SITES:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {sorted(SITES)}"
            )
        if self.at < 0 or self.count < 1:
            raise ValueError("need at >= 0 and count >= 1")
        if self.kind == "journal_truncate" and self.offset < 1:
            raise ValueError("journal_truncate needs offset >= 1 bytes")

    @property
    def site(self) -> str:
        return SITES[self.kind]

    def window(self) -> range:
        return range(self.at, self.at + self.count)

    def to_doc(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "at": int(self.at),
            "count": int(self.count),
            "worker": self.worker,
            "seconds": float(self.seconds),
            "offset": int(self.offset),
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "Fault":
        return cls(
            kind=str(doc["kind"]),
            at=int(doc.get("at", 0)),
            count=int(doc.get("count", 1)),
            worker=doc.get("worker"),
            seconds=float(doc.get("seconds", 0.0)),
            offset=int(doc.get("offset", 0)),
        )


@dataclass
class FaultPlan:
    """A schedule of faults plus the seed that (optionally) drew it."""

    faults: list[Fault] = field(default_factory=list)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.faults = [
            f if isinstance(f, Fault) else Fault.from_doc(f)
            for f in self.faults
        ]

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def by_site(self) -> dict[str, list[Fault]]:
        grouped: dict[str, list[Fault]] = {}
        for fault in self.faults:
            grouped.setdefault(fault.site, []).append(fault)
        return grouped

    def kinds(self) -> set[str]:
        return {f.kind for f in self.faults}

    def injector(self):
        """Build the :class:`repro.chaos.Injector` executing this plan."""
        from repro.chaos.injector import Injector

        return Injector(self)

    # ------------------------------------------------------------------
    # persistence (plans are artifacts: save them next to the journal
    # so a failing chaos run can be replayed exactly)
    # ------------------------------------------------------------------
    def to_doc(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [f.to_doc() for f in self.faults],
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            faults=[Fault.from_doc(d) for d in doc.get("faults", [])],
            seed=doc.get("seed"),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_doc(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_doc(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        kinds: Sequence[str] = RECOVERABLE_KINDS,
        n_faults: int = 3,
        horizon: int | Mapping[str, int] = 30,
        seconds: float = 0.05,
        offsets: tuple[int, int] = (3, 80),
        workers: Optional[Sequence[str]] = None,
        max_per_kind: Optional[Mapping[str, int]] = None,
    ) -> "FaultPlan":
        """Draw a seed-deterministic plan.

        ``horizon`` bounds each fault's activation ordinal — pass a
        mapping to give sites with few events (journal appends) a
        tighter bound than busy ones (task pickups).  ``max_per_kind``
        caps how many faults of one kind survive the draw (e.g. cap
        ``worker_death`` below the cluster size so the campaign can
        still finish); capped draws are dropped, so plans may hold
        fewer than ``n_faults`` faults.
        """
        kinds = tuple(kinds)
        if not kinds:
            raise ValueError("need at least one fault kind")
        unknown = set(kinds) - set(SITES)
        if unknown:
            raise ValueError(f"unknown fault kinds {sorted(unknown)}")
        rng = np.random.default_rng(seed)
        caps = dict(max_per_kind or {})
        drawn: dict[str, int] = {}
        faults: list[Fault] = []
        for _ in range(int(n_faults)):
            kind = kinds[int(rng.integers(len(kinds)))]
            if kind in caps and drawn.get(kind, 0) >= caps[kind]:
                continue
            drawn[kind] = drawn.get(kind, 0) + 1
            bound = (
                horizon.get(kind, 30)
                if isinstance(horizon, Mapping)
                else int(horizon)
            )
            at = int(rng.integers(0, max(1, bound)))
            worker = None
            if workers and kind in (
                "worker_death",
                "revoke_worker",
                "slow_worker",
            ):
                if rng.random() < 0.5:
                    worker = str(
                        workers[int(rng.integers(len(workers)))]
                    )
            secs = (
                float(rng.uniform(0.0, seconds))
                if kind in _DELAY_KINDS
                else 0.0
            )
            offset = (
                int(rng.integers(offsets[0], offsets[1]))
                if kind == "journal_truncate"
                else 0
            )
            faults.append(
                Fault(
                    kind=kind,
                    at=at,
                    worker=worker,
                    seconds=secs,
                    offset=offset,
                )
            )
        faults.sort(key=lambda f: (f.site, f.at, f.kind))
        return cls(faults=faults, seed=int(seed))

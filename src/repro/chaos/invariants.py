"""System-wide invariants, checked by replaying durable artifacts.

A campaign leaves three artifacts behind — the write-ahead journal,
the trace (task/worker lifecycle events), and the evaluation cache.
:class:`InvariantChecker` replays them and asserts the properties the
whole reliability stack exists to provide:

* every journaled evaluation reached exactly one terminal state
  (a fitness vector; never a half-written record unless a torn write
  was injected);
* failures map to ``MAXINT`` on *all* objectives, and ``MAXINT``
  appears only on failures;
* failed evaluations never enter the cache unless ``cache_failures``;
* no genome is trained twice where dedup/cache promise it won't be;
* every submitted task reaches exactly one terminal trace state
  (done / err / abandoned / stranded), and tasks requeued off a dead
  worker complete on a *different* worker;
* a resumed campaign's journal is generation-for-generation
  bit-identical to an uninterrupted baseline
  (:func:`verify_resume_equivalence`).

The checker is deliberately forgiving about what it is *given*: any
subset of (journal, trace, cache) can be checked, and the ``injected``
log from an :class:`~repro.chaos.injector.Injector` tells it which
anomalies (torn journal tails, corrupt cache entries) were deliberate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence

from repro.exceptions import MAXINT
from repro.store.journal import JournalState, read_journal


@dataclass(frozen=True)
class Violation:
    """One broken invariant."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.message}"


@dataclass
class InvariantReport:
    """Outcome of one :meth:`InvariantChecker.check` pass."""

    violations: list[Violation] = field(default_factory=list)
    #: how many items each invariant inspected (zero-count checks are
    #: vacuous — tests assert on these to prove the checker saw data)
    checked: dict[str, int] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def count(self, invariant: str, n: int = 1) -> None:
        self.checked[invariant] = self.checked.get(invariant, 0) + n

    def fail(self, invariant: str, message: str) -> None:
        self.violations.append(Violation(invariant, message))

    def summary(self) -> str:
        total = sum(self.checked.values())
        if self.ok:
            head = f"chaos invariants: OK ({total} checks)"
        else:
            head = (
                f"chaos invariants: {len(self.violations)} violation(s) "
                f"in {total} checks"
            )
        lines = [head]
        lines.extend(f"  {v}" for v in self.violations)
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)


def _kinds_of(injected: Iterable[Any]) -> set[str]:
    """Fault kinds present in an injector log (accepts raw Faults or
    InjectedFault wrappers)."""
    kinds = set()
    for item in injected:
        fault = getattr(item, "fault", item)
        kind = getattr(fault, "kind", None)
        if kind is not None:
            kinds.add(kind)
    return kinds


def _is_failure_fitness(fitness: Sequence[float]) -> bool:
    return all(float(f) == MAXINT for f in fitness)


def _has_maxint(fitness: Sequence[float]) -> bool:
    return any(float(f) == MAXINT for f in fitness)


class InvariantChecker:
    """Replay journal + trace + cache and assert system invariants.

    Parameters
    ----------
    journal:
        Journal path or a pre-parsed :class:`JournalState`.
    trace:
        Trace records — a list of dicts (e.g. ``Tracer.records``) or a
        JSONL path readable by :func:`repro.obs.trace.read_trace`.
    cache_dir:
        Root of an :class:`~repro.store.cache.EvaluationCache`.
    cache_failures:
        Whether the campaign cached failures (failed entries are then
        legal).
    dedup:
        Whether the campaign ran with dedup on (gates the
        trained-twice checks).
    injected:
        The :attr:`~repro.chaos.injector.Injector.log` of faults that
        actually fired — tells the checker which anomalies were
        deliberate.
    expect_torn:
        Tolerate a torn journal even without an injected
        ``journal_truncate`` (a campaign killed mid-write).
    """

    def __init__(
        self,
        journal: Optional[str | Path | JournalState] = None,
        trace: Optional[str | Path | list[dict[str, Any]]] = None,
        cache_dir: Optional[str | Path] = None,
        *,
        cache_failures: bool = False,
        dedup: bool = True,
        injected: Iterable[Any] = (),
        expect_torn: bool = False,
        allow_same_worker_retry: bool = False,
    ) -> None:
        self.journal = journal
        self.trace = trace
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self.cache_failures = bool(cache_failures)
        self.dedup = bool(dedup)
        self.injected = list(injected)
        self.injected_kinds = _kinds_of(self.injected)
        self.expect_torn = bool(expect_torn) or (
            "journal_truncate" in self.injected_kinds
        )
        self.allow_same_worker_retry = bool(allow_same_worker_retry)

    # ------------------------------------------------------------------
    def check(self) -> InvariantReport:
        report = InvariantReport()
        if self.journal is not None:
            self._check_journal(report)
        if self.cache_dir is not None:
            self._check_cache(report)
        if self.trace is not None:
            self._check_trace(report)
        return report

    # ------------------------------------------------------------------
    # journal invariants
    # ------------------------------------------------------------------
    def _journal_state(self) -> JournalState:
        if isinstance(self.journal, JournalState):
            return self.journal
        return read_journal(Path(self.journal))

    def _check_journal(self, report: InvariantReport) -> None:
        state = self._journal_state()
        report.count("journal_readable")
        if state.n_records == 0:
            report.fail("journal_readable", "journal has no records")
            return
        if state.n_torn and not self.expect_torn:
            report.fail(
                "journal_untorn",
                f"{state.n_torn} torn record(s) but no journal "
                "truncation was injected",
            )
        elif state.n_torn:
            report.notes.append(
                f"{state.n_torn} torn journal record(s) "
                "(truncation injected — tolerated)"
            )
        if state.config_doc is None:
            report.fail(
                "journal_begin",
                "no readable campaign_begin record",
            )
            return
        for run_index, run in sorted(state.runs.items()):
            self._check_run_generations(report, run_index, run)
            self._check_run_evaluations(report, run_index, run)

    def _check_run_generations(self, report, run_index, run) -> None:
        contiguous = {
            doc["generation"] for doc in run.contiguous_generations()
        }
        gaps = sorted(set(run.generations) - contiguous)
        if gaps and not self.expect_torn:
            report.fail(
                "generations_contiguous",
                f"run {run_index} has non-contiguous generation(s) "
                f"{gaps}",
            )
        fresh_seen: dict[tuple, int] = {}
        for gen_index, doc in sorted(run.generations.items()):
            evaluated = doc.get("evaluated") or {}
            genomes = evaluated.get("genomes") or []
            fitness = evaluated.get("fitness") or []
            metadata = evaluated.get("metadata") or []
            batch_fresh: dict[tuple, int] = {}
            n_failed = 0
            for genome, fit, meta in zip(genomes, fitness, metadata):
                meta = meta or {}
                self._check_terminal(
                    report,
                    f"run {run_index} gen {gen_index}",
                    genome,
                    fit,
                    meta,
                )
                if meta.get("failed"):
                    n_failed += 1
                key = tuple(float(g) for g in genome)
                if self._is_fresh(meta):
                    batch_fresh[key] = batch_fresh.get(key, 0) + 1
                    if not meta.get("failed"):
                        fresh_seen[key] = fresh_seen.get(key, 0) + 1
            if self.dedup:
                report.count("trained_once_per_batch", len(genomes))
                for key, n in batch_fresh.items():
                    if n > 1:
                        report.fail(
                            "trained_once_per_batch",
                            f"run {run_index} gen {gen_index}: genome "
                            f"trained {n}x in one batch (dedup broken)",
                        )
            report.count("failure_count_consistent")
            if int(doc.get("n_failures", n_failed)) != n_failed:
                report.fail(
                    "failure_count_consistent",
                    f"run {run_index} gen {gen_index}: record claims "
                    f"{doc.get('n_failures')} failures, evaluated "
                    f"individuals show {n_failed}",
                )
        # with a cache attached, a successful genome trains at most
        # once per run: later generations must hit the cache.  (Failed
        # evaluations legitimately retry — failures are not cached.)
        if self.dedup and self.cache_dir is not None:
            report.count("trained_once_per_run", len(fresh_seen))
            for key, n in fresh_seen.items():
                if n > 1:
                    report.fail(
                        "trained_once_per_run",
                        f"run {run_index}: genome freshly trained {n}x "
                        "despite the evaluation cache",
                    )

    def _check_run_evaluations(self, report, run_index, run) -> None:
        """Steady-state journals: one record per completion, engine
        dedup scoped to the run."""
        fresh_seen: dict[tuple, int] = {}
        for doc in run.evaluations:
            meta = doc.get("metadata") or {}
            self._check_terminal(
                report,
                f"run {run_index} evaluation",
                doc.get("genome") or [],
                doc.get("fitness"),
                meta,
            )
            if self._is_fresh(meta) and not meta.get("failed"):
                key = tuple(float(g) for g in doc.get("genome") or [])
                fresh_seen[key] = fresh_seen.get(key, 0) + 1
        if self.dedup and run.evaluations:
            report.count("trained_once_per_run", len(fresh_seen))
            for key, n in fresh_seen.items():
                if n > 1:
                    report.fail(
                        "trained_once_per_run",
                        f"run {run_index}: genome freshly evaluated "
                        f"{n}x under run-scoped dedup",
                    )

    @staticmethod
    def _is_fresh(meta: dict[str, Any]) -> bool:
        return not (meta.get("cache_hit") or meta.get("dedup_of"))

    def _check_terminal(
        self, report, where, genome, fitness, meta
    ) -> None:
        report.count("terminal_state")
        if fitness is None:
            report.fail(
                "terminal_state",
                f"{where}: journaled individual has no fitness "
                f"(genome {genome})",
            )
            return
        report.count("failed_iff_maxint")
        failed = bool(meta.get("failed"))
        if failed and not _is_failure_fitness(fitness):
            report.fail(
                "failed_iff_maxint",
                f"{where}: failed individual fitness {fitness} is not "
                "all-MAXINT",
            )
        elif not failed and _has_maxint(fitness):
            report.fail(
                "failed_iff_maxint",
                f"{where}: MAXINT fitness without the failed flag",
            )

    # ------------------------------------------------------------------
    # cache invariants
    # ------------------------------------------------------------------
    def _check_cache(self, report: InvariantReport) -> None:
        n_corrupt = 0
        for path in sorted(self.cache_dir.glob("??/*.json")):
            report.count("cache_entry_wellformed")
            try:
                doc = json.loads(path.read_text())
            except (json.JSONDecodeError, OSError):
                n_corrupt += 1
                continue
            report.count("failures_not_cached")
            if doc.get("failed") and not self.cache_failures:
                report.fail(
                    "failures_not_cached",
                    f"failed evaluation cached at {path.name} without "
                    "cache_failures",
                )
        if n_corrupt and "cache_corrupt" not in self.injected_kinds:
            report.fail(
                "cache_entries_readable",
                f"{n_corrupt} unreadable cache entr(ies) but no "
                "corruption was injected",
            )
        elif n_corrupt:
            report.notes.append(
                f"{n_corrupt} corrupt cache entr(ies) "
                "(corruption injected — tolerated)"
            )

    # ------------------------------------------------------------------
    # trace invariants
    # ------------------------------------------------------------------
    def _trace_records(self) -> list[dict[str, Any]]:
        if isinstance(self.trace, (str, Path)):
            from repro.obs.trace import read_trace

            return read_trace(self.trace)
        return list(self.trace or [])

    def _check_trace(self, report: InvariantReport) -> None:
        records = self._trace_records()
        events = [r for r in records if r.get("type") == "event"]
        submitted: list[str] = []
        terminal: dict[str, list[str]] = {}
        requeues: dict[str, list[str]] = {}
        n_stranded = 0
        for event in events:
            name = event.get("name")
            tags = event.get("tags") or {}
            task = tags.get("task")
            if name == "task.submit":
                submitted.append(task)
            elif name in ("task.done", "task.err", "task.abandoned"):
                terminal.setdefault(task, []).append(name)
            elif name == "task.requeued":
                requeues.setdefault(task, []).append(
                    tags.get("from_worker") or tags.get("worker")
                )
            elif name == "task.stranded":
                n_stranded += int(tags.get("count", 0))
        if not submitted:
            return
        unaccounted = 0
        for task in submitted:
            report.count("one_terminal_state")
            outcomes = terminal.get(task, [])
            if len(outcomes) > 1:
                report.fail(
                    "one_terminal_state",
                    f"{task} reached {len(outcomes)} terminal states: "
                    f"{outcomes}",
                )
            elif not outcomes:
                unaccounted += 1
        # stranded tasks are drained in bulk (the event carries only a
        # count), so they are exactly the submissions left without a
        # per-task terminal event
        report.count("one_terminal_state")
        if unaccounted != n_stranded:
            report.fail(
                "one_terminal_state",
                f"{unaccounted} task(s) without a terminal event but "
                f"{n_stranded} stranded",
            )
        self._check_requeues(report, records, terminal, requeues)

    def _check_requeues(
        self, report, records, terminal, requeues
    ) -> None:
        """Requeued tasks must finish, and finish elsewhere."""
        attempts: dict[str, list[tuple[int, str]]] = {}
        for record in records:
            if (
                record.get("type") == "span"
                and record.get("name") == "worker.task"
            ):
                tags = record.get("tags") or {}
                task = tags.get("task")
                if task is not None:
                    attempts.setdefault(task, []).append(
                        (
                            int(tags.get("attempt", 0)),
                            tags.get("worker"),
                        )
                    )
        for task, dead_workers in requeues.items():
            report.count("requeued_completes")
            outcomes = terminal.get(task, [])
            if not outcomes:
                report.fail(
                    "requeued_completes",
                    f"requeued {task} never reached a terminal state",
                )
                continue
            if outcomes == ["task.done"] and attempts.get(task):
                final_worker = max(attempts[task])[1]
                report.count("requeued_elsewhere")
                if (
                    final_worker in dead_workers
                    and not self.allow_same_worker_retry
                ):
                    report.fail(
                        "requeued_elsewhere",
                        f"{task} completed on {final_worker}, a worker "
                        "it was requeued off",
                    )


# ----------------------------------------------------------------------
def verify_resume_equivalence(
    baseline: str | Path | JournalState,
    resumed: str | Path | JournalState,
) -> list[Violation]:
    """Assert a killed-and-resumed campaign journal is bit-identical,
    generation for generation, to an uninterrupted baseline.

    Compares the contiguous generation docs of every run: genome and
    fitness lists must match exactly (floats round-trip through JSON
    bit-stably, so ``==`` is the right comparison).
    """

    def load(j):
        return (
            j if isinstance(j, JournalState) else read_journal(Path(j))
        )

    a, b = load(baseline), load(resumed)
    violations: list[Violation] = []
    if sorted(a.runs) != sorted(b.runs):
        violations.append(
            Violation(
                "resume_equivalence",
                f"run sets differ: {sorted(a.runs)} vs {sorted(b.runs)}",
            )
        )
        return violations
    for run_index in sorted(a.runs):
        docs_a = a.runs[run_index].contiguous_generations()
        docs_b = b.runs[run_index].contiguous_generations()
        if len(docs_a) != len(docs_b):
            violations.append(
                Violation(
                    "resume_equivalence",
                    f"run {run_index}: {len(docs_a)} vs {len(docs_b)} "
                    "contiguous generations",
                )
            )
            continue
        for doc_a, doc_b in zip(docs_a, docs_b):
            for group in ("population", "evaluated"):
                ga = (doc_a.get(group) or {}).get("genomes")
                gb = (doc_b.get(group) or {}).get("genomes")
                fa = (doc_a.get(group) or {}).get("fitness")
                fb = (doc_b.get(group) or {}).get("fitness")
                if ga != gb or fa != fb:
                    violations.append(
                        Violation(
                            "resume_equivalence",
                            f"run {run_index} gen "
                            f"{doc_a.get('generation')}: {group} "
                            "diverged after resume",
                        )
                    )
    return violations

"""The unified Injector: one object, every fault site.

Generalizes the worker-only :class:`~repro.distributed.faults.
FaultPolicy` — an :class:`Injector` *is* a ``FaultPolicy`` (so it can
be handed to ``LocalCluster(fault_policy=...)`` unchanged) and a
:class:`~repro.injection.FaultInjector` (so the scheduler, engine,
cache, and journal consult the same scripted plan through their
hooks).  Each site keeps a thread-safe event counter; a fault fires
when the site's ordinal enters its ``[at, at + count)`` window, and
every firing is appended to :attr:`Injector.log` so tests and the
:class:`~repro.chaos.invariants.InvariantChecker` know exactly what
chaos actually happened.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.chaos.plan import Fault, FaultPlan
from repro.distributed.faults import FaultPolicy
from repro.exceptions import InjectedFaultError
from repro.injection import EvalFault, FaultInjector


@dataclass(frozen=True)
class InjectedFault:
    """One fault that actually fired: the scripted fault, the site
    ordinal it matched, and site-specific detail for assertions."""

    fault: Fault
    site: str
    index: int
    detail: dict[str, Any] = field(default_factory=dict)

    @property
    def kind(self) -> str:
        return self.fault.kind


class Injector(FaultPolicy, FaultInjector):
    """Execute a :class:`~repro.chaos.plan.FaultPlan` across all sites."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._by_site = plan.by_site()
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self.log: list[InjectedFault] = []

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget counters and the firing log so one plan can drive
        repeated campaigns (benchmark repetitions)."""
        with self._lock:
            self._counters.clear()
            self.log.clear()

    def counters(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def fired(self, kind: Optional[str] = None) -> list[InjectedFault]:
        with self._lock:
            return [
                f for f in self.log if kind is None or f.kind == kind
            ]

    def _step(
        self,
        site: str,
        worker_name: Optional[str] = None,
        task_index: Optional[int] = None,
        **detail: Any,
    ) -> list[Fault]:
        """Advance ``site``'s ordinal and return the faults whose
        window it entered, logging each firing."""
        with self._lock:
            index = self._counters.get(site, 0)
            self._counters[site] = index + 1
            hits: list[Fault] = []
            for fault in self._by_site.get(site, ()):
                if fault.worker is not None:
                    matched = (
                        fault.worker == worker_name
                        and task_index is not None
                        and task_index in fault.window()
                    )
                else:
                    matched = index in fault.window()
                if matched:
                    hits.append(fault)
                    self.log.append(
                        InjectedFault(
                            fault=fault,
                            site=site,
                            index=index,
                            detail={
                                k: v
                                for k, v in {
                                    "worker": worker_name,
                                    "task_index": task_index,
                                    **detail,
                                }.items()
                                if v is not None
                            },
                        )
                    )
            return hits

    # ------------------------------------------------------------------
    # FaultPolicy / FaultInjector hooks
    # ------------------------------------------------------------------
    def should_fail(self, worker_name: str, task_index: int) -> bool:
        return bool(
            self._step(
                "worker.death",
                worker_name=worker_name,
                task_index=task_index,
            )
        )

    def should_revoke(self, worker_name: str, task_index: int) -> bool:
        return bool(
            self._step(
                "worker.revoke",
                worker_name=worker_name,
                task_index=task_index,
            )
        )

    def worker_delay(self, worker_name: str, task_index: int) -> float:
        hits = self._step(
            "worker.delay",
            worker_name=worker_name,
            task_index=task_index,
        )
        return sum(f.seconds for f in hits)

    def submit_delay(self, key: str) -> float:
        hits = self._step("scheduler.submit", key=key)
        return sum(f.seconds for f in hits)

    def evaluation_fault(self) -> Optional[EvalFault]:
        hits = self._step("engine.dispatch")
        if not hits:
            return None
        exception: Optional[BaseException] = None
        timeout = False
        for fault in hits:
            if fault.kind == "eval_exception":
                exception = InjectedFaultError(
                    f"injected transient evaluator fault "
                    f"(dispatch {self._counters['engine.dispatch'] - 1})"
                )
            elif fault.kind == "eval_timeout":
                timeout = True
        return EvalFault(exception=exception, timeout=timeout)

    def corrupt_cache_entry(self, path: Any) -> bool:
        hits = self._step("cache.insert", path=str(path))
        if not hits:
            return False
        target = Path(path)
        try:
            text = target.read_text()
            target.write_text(text[: max(1, len(text) // 2)] + '"garbage')
        except OSError:  # pragma: no cover - entry vanished underneath
            pass
        return True

    def journal_truncation(self) -> Optional[int]:
        hits = self._step("journal.append")
        if not hits:
            return None
        return max(f.offset for f in hits)

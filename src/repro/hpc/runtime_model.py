"""Training-runtime model.

The paper reports the boundary conditions: GPU training gives ~65× per
node over CPU (§2.1.2, ~2 hours vs ~7 days for 250k frames), every
final-generation training finished under 80 minutes, failed trainings
show up as very short runtimes, and the per-training cap is 2 hours.
The dominant hyperparameter effect on runtime is the descriptor radial
cutoff: the neighbor count — and with it descriptor construction and
backprop cost — grows as ``rcut^3``.

The model below reproduces those shapes:

``t(rcut) = t_fixed + t_env * (rcut / rcut_ref)^3``

calibrated so rcut = 6 Å → ≈ 35 min and rcut = 12 Å → ≈ 78 min on GPU,
with multiplicative log-normal noise for system jitter.  Failed
configurations return a short abort time (~1–4 min).
"""

from __future__ import annotations

import numpy as np

from repro.rng import RngLike, ensure_rng


class TrainingRuntimeModel:
    """Predicts one training's wall-clock minutes from hyperparameters."""

    def __init__(
        self,
        fixed_minutes: float = 26.0,
        env_minutes: float = 5.8,
        rcut_ref: float = 6.0,
        gpu_speedup: float = 65.0,
        jitter_sigma: float = 0.04,
        fail_minutes: tuple[float, float] = (1.0, 4.0),
        rng: RngLike = None,
    ) -> None:
        self.fixed_minutes = float(fixed_minutes)
        self.env_minutes = float(env_minutes)
        self.rcut_ref = float(rcut_ref)
        self.gpu_speedup = float(gpu_speedup)
        self.jitter_sigma = float(jitter_sigma)
        self.fail_minutes = fail_minutes
        self.rng = ensure_rng(rng)

    def runtime_minutes(
        self, rcut: float, gpu: bool = True, failed: bool = False
    ) -> float:
        """Sample a wall-clock runtime for one training."""
        if failed:
            lo, hi = self.fail_minutes
            return float(self.rng.uniform(lo, hi))
        base = self.fixed_minutes + self.env_minutes * (
            rcut / self.rcut_ref
        ) ** 3
        if not gpu:
            base *= self.gpu_speedup
        jitter = float(
            np.exp(self.rng.normal(0.0, self.jitter_sigma))
        )
        return base * jitter

    def mean_runtime_minutes(self, rcut: float, gpu: bool = True) -> float:
        """Expected runtime without jitter."""
        base = self.fixed_minutes + self.env_minutes * (
            rcut / self.rcut_ref
        ) ** 3
        return base if gpu else base * self.gpu_speedup

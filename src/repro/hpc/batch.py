"""Batch jobs and the jsrun-style launcher.

§2.2.5 describes the deployment mechanics: the batch script runs on a
dedicated batch node, launches the Dask scheduler and all Dask workers
*on the batch node*, and each DeePMD training is started with its own
``jsrun`` call onto a compute node (because Horovod's ``MPI_Init``
leaves a node unable to host a second MPI program without a fresh
``jsrun``).  :class:`JsrunLauncher` models that constraint: a resource
set can host exactly one MPI-initialized program per launch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import SchedulerError, WalltimeExceeded
from repro.hpc.node import NodeState, SummitNode


@dataclass
class BatchJob:
    """A node allocation with a walltime budget (the paper: 100 nodes,
    12 hours)."""

    n_nodes: int = 100
    walltime_minutes: float = 12 * 60.0
    nodes: list[SummitNode] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("a job needs at least one node")
        if not self.nodes:
            self.nodes = [
                SummitNode(name=f"node-{i:03d}") for i in range(self.n_nodes)
            ]

    def check_walltime(self, now_minutes: float) -> None:
        if now_minutes > self.walltime_minutes:
            raise WalltimeExceeded(
                f"{now_minutes:.1f} min exceeds the "
                f"{self.walltime_minutes:.0f}-minute allocation"
            )

    def available_nodes(self) -> list[SummitNode]:
        return [n for n in self.nodes if n.available]

    def healthy_nodes(self) -> list[SummitNode]:
        return [n for n in self.nodes if n.state is not NodeState.FAILED]


class JsrunLauncher:
    """One ``jsrun`` per training: models the MPI_Init single-use rule.

    A node must be re-acquired through the launcher for every program;
    attempting to launch onto a busy or failed node raises, exactly the
    situation that forced the paper to move Dask workers off the
    compute nodes.
    """

    def __init__(self, job: BatchJob) -> None:
        self.job = job
        self.launches = 0

    def launch(
        self, runtime_minutes: float, now_minutes: float
    ) -> Optional[SummitNode]:
        """Acquire an idle node until ``now + runtime``; None if full."""
        self.job.check_walltime(now_minutes)
        available = self.job.available_nodes()
        if not available:
            return None
        node = available[0]
        node.assign(until=now_minutes + runtime_minutes)
        self.launches += 1
        return node

    def complete(self, node: SummitNode) -> None:
        node.release()

    def fail(self, node: SummitNode) -> None:
        node.fail()

"""Discrete-event simulation of a full EA campaign on the cluster.

Answers the operational questions behind §2.2.5 and §3: how long do
7 generations × 100 trainings take on 100 nodes, how many trainings
complete, what do node failures cost, and how do the nanny-on /
nanny-off policies compare.  EA generations are synchronous barriers —
generation ``g+1`` cannot start until every evaluation of generation
``g`` has completed or been abandoned — which is exactly the
generational NSGA-II structure the paper deploys.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.exceptions import WalltimeExceeded
from repro.hpc.batch import BatchJob, JsrunLauncher
from repro.hpc.node import NodeState
from repro.hpc.runtime_model import TrainingRuntimeModel
from repro.obs.trace import NullTracer, Tracer, get_tracer
from repro.rng import RngLike, ensure_rng


@dataclass
class GenerationTrace:
    """Timing record for one generation of evaluations."""

    generation: int
    start_minutes: float
    end_minutes: float
    n_evaluations: int
    n_node_failures: int
    n_abandoned: int

    @property
    def makespan_minutes(self) -> float:
        return self.end_minutes - self.start_minutes


@dataclass
class SimulationReport:
    """Campaign-level outcome."""

    generations: list[GenerationTrace] = field(default_factory=list)
    total_minutes: float = 0.0
    evaluations_completed: int = 0
    evaluations_abandoned: int = 0
    node_failures: int = 0
    nodes_lost: int = 0
    walltime_exceeded: bool = False

    def summary(self) -> dict[str, float]:
        return {
            "generations": len(self.generations),
            "total_hours": self.total_minutes / 60.0,
            "evaluations_completed": self.evaluations_completed,
            "evaluations_abandoned": self.evaluations_abandoned,
            "node_failures": self.node_failures,
            "nodes_lost": self.nodes_lost,
            "walltime_exceeded": float(self.walltime_exceeded),
        }


class ClusterSimulation:
    """Event-driven execution of generational workloads.

    Parameters
    ----------
    job:
        The allocation (nodes + walltime).
    runtime_model:
        Maps hyperparameters to training runtimes.
    node_mtbf_minutes:
        Mean time between failures per node; ``None`` disables faults.
        Failures strike mid-task, killing the node and requeueing the
        task (up to ``max_retries``).
    nannies:
        When True, failed nodes recover after ``restart_minutes`` —
        which only helps if the fault was transient
        (``transient_fraction`` of them are).
    """

    def __init__(
        self,
        job: Optional[BatchJob] = None,
        runtime_model: Optional[TrainingRuntimeModel] = None,
        node_mtbf_minutes: Optional[float] = None,
        nannies: bool = False,
        restart_minutes: float = 5.0,
        transient_fraction: float = 0.3,
        max_retries: int = 2,
        rng: RngLike = None,
        tracer: Optional[NullTracer | Tracer] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else get_tracer()
        self.rng = ensure_rng(rng)
        self.job = job or BatchJob()
        self.launcher = JsrunLauncher(self.job)
        self.runtime_model = runtime_model or TrainingRuntimeModel(
            rng=self.rng
        )
        self.node_mtbf_minutes = node_mtbf_minutes
        self.nannies = nannies
        self.restart_minutes = float(restart_minutes)
        self.transient_fraction = float(transient_fraction)
        self.max_retries = int(max_retries)

    # ------------------------------------------------------------------
    def _task_fails_by_node(self, runtime: float) -> bool:
        """Does the hosting node fail during a task of this length?"""
        if self.node_mtbf_minutes is None:
            return False
        p_fail = 1.0 - np.exp(-runtime / self.node_mtbf_minutes)
        return bool(self.rng.random() < p_fail)

    def run_campaign(
        self,
        generation_workloads: Sequence[Sequence[float]],
    ) -> SimulationReport:
        """Execute per-generation lists of task runtimes (minutes).

        Each inner sequence is one generation's evaluation runtimes;
        the simulation places them onto nodes, advances time through a
        completion-event heap, injects node failures, honors the
        generational barrier, and stops (marking the report) if the
        allocation walltime is exceeded.
        """
        report = SimulationReport()
        now = 0.0
        with self.tracer.span(
            "sim.campaign",
            n_nodes=len(self.job.nodes),
            walltime_minutes=self.job.walltime_minutes,
            nannies=self.nannies,
        ) as span:
            for g, runtimes in enumerate(generation_workloads):
                with self.tracer.span(
                    "sim.generation", generation=g
                ) as gen_span:
                    trace, now = self._run_generation(
                        g, list(runtimes), now, report
                    )
                    gen_span.tag(
                        sim_start_minutes=trace.start_minutes,
                        sim_makespan_minutes=trace.makespan_minutes,
                        n_evaluations=trace.n_evaluations,
                        n_node_failures=trace.n_node_failures,
                        n_abandoned=trace.n_abandoned,
                    )
                report.generations.append(trace)
                if report.walltime_exceeded:
                    self.tracer.event(
                        "sim.walltime_exceeded", sim_minutes=now
                    )
                    break
            report.total_minutes = now
            report.nodes_lost = sum(
                1 for n in self.job.nodes if n.state is NodeState.FAILED
            )
            span.tag(
                sim_total_minutes=report.total_minutes,
                node_failures=report.node_failures,
                nodes_lost=report.nodes_lost,
            )
        return report

    def _run_generation(
        self,
        generation: int,
        runtimes: list[float],
        start: float,
        report: SimulationReport,
    ) -> tuple[GenerationTrace, float]:
        # (task runtime, attempts) queue
        pending: list[tuple[float, int]] = [(rt, 0) for rt in runtimes]
        # heap of (completion_time, seq, node, runtime, attempts, fails)
        events: list[tuple[float, int, object, float, int, bool]] = []
        seq = 0
        now = start
        n_failures = 0
        n_abandoned = 0
        n_completed = 0

        def try_launch() -> None:
            nonlocal seq
            while pending:
                runtime, attempts = pending[0]
                node = self.launcher.launch(runtime, now)
                if node is None:
                    return
                pending.pop(0)
                will_fail = self._task_fails_by_node(runtime)
                finish = now + (
                    self.rng.uniform(0.1, 1.0) * runtime
                    if will_fail
                    else runtime
                )
                heapq.heappush(
                    events,
                    (finish, seq, node, runtime, attempts, will_fail),
                )
                seq += 1

        try:
            try_launch()
            while events:
                now, _, node, runtime, attempts, failed = heapq.heappop(
                    events
                )
                self.job.check_walltime(now)
                if failed:
                    n_failures += 1
                    report.node_failures += 1
                    self.launcher.fail(node)  # type: ignore[arg-type]
                    self.tracer.event(
                        "sim.node_failure",
                        node=getattr(node, "name", str(node)),
                        generation=generation,
                        sim_minutes=now,
                        attempts=attempts + 1,
                    )
                    if self.nannies and (
                        self.rng.random() < self.transient_fraction
                    ):
                        # transient fault: nanny restart brings it back
                        heapq.heappush(
                            events,
                            (
                                now + self.restart_minutes,
                                seq,
                                node,
                                0.0,
                                -1,
                                False,
                            ),
                        )
                        seq += 1
                    if attempts + 1 > self.max_retries:
                        n_abandoned += 1
                        report.evaluations_abandoned += 1
                    else:
                        pending.append((runtime, attempts + 1))
                elif attempts == -1:
                    # nanny restart completing: node recovers
                    node.recover()  # type: ignore[union-attr]
                    self.tracer.event(
                        "sim.nanny_restart",
                        node=getattr(node, "name", str(node)),
                        sim_minutes=now,
                    )
                else:
                    self.launcher.complete(node)  # type: ignore[arg-type]
                    n_completed += 1
                    report.evaluations_completed += 1
                try_launch()
            if pending:
                # no healthy nodes remain to run what's left
                n_abandoned += len(pending)
                report.evaluations_abandoned += len(pending)
        except WalltimeExceeded:
            report.walltime_exceeded = True
        trace = GenerationTrace(
            generation=generation,
            start_minutes=start,
            end_minutes=now,
            n_evaluations=len(runtimes),
            n_node_failures=n_failures,
            n_abandoned=n_abandoned,
        )
        return trace, now

"""Compute-node model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class NodeState(enum.Enum):
    IDLE = "idle"
    BUSY = "busy"
    FAILED = "failed"


@dataclass
class SummitNode:
    """One Summit node (§2.1.1): six V100 GPUs, two POWER9 sockets.

    In the paper's deployment a node hosts exactly one Dask worker and
    therefore one training at a time, with Horovod spreading the
    training over the node's six GPUs.
    """

    name: str
    n_gpus: int = 6
    n_cores: int = 42
    state: NodeState = NodeState.IDLE
    #: simulation time at which the current task completes
    busy_until: float = 0.0
    tasks_completed: int = 0
    failures: int = 0

    @property
    def available(self) -> bool:
        return self.state is NodeState.IDLE

    def assign(self, until: float) -> None:
        if self.state is not NodeState.IDLE:
            raise RuntimeError(f"node {self.name} is not idle")
        self.state = NodeState.BUSY
        self.busy_until = until

    def release(self) -> None:
        if self.state is NodeState.BUSY:
            self.state = NodeState.IDLE
            self.tasks_completed += 1

    def fail(self) -> None:
        self.state = NodeState.FAILED
        self.failures += 1

    def recover(self) -> None:
        """A nanny restart (only meaningful for transient faults)."""
        if self.state is NodeState.FAILED:
            self.state = NodeState.IDLE

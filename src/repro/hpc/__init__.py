"""Discrete-event model of a Summit-like allocation.

The paper ran on 100 nodes of Summit (IBM AC922: six V100 GPUs and 42
usable POWER9 cores per node, §2.1.1) inside 12-hour batch jobs, with
each Dask worker owning one node and each fitness evaluation being one
DeePMD training capped at two hours.  This subpackage models exactly
that envelope so that campaign-level questions — does 7 generations ×
100 trainings fit a 12-hour job? what do node failures cost with and
without nannies? — can be answered quantitatively without the machine.
"""

from repro.hpc.node import NodeState, SummitNode
from repro.hpc.runtime_model import TrainingRuntimeModel
from repro.hpc.batch import BatchJob, JsrunLauncher
from repro.hpc.cluster import (
    ClusterSimulation,
    GenerationTrace,
    SimulationReport,
)

__all__ = [
    "SummitNode",
    "NodeState",
    "TrainingRuntimeModel",
    "BatchJob",
    "JsrunLauncher",
    "ClusterSimulation",
    "GenerationTrace",
    "SimulationReport",
]

"""LEAP-style global run-time context.

LEAP maintains a module-level ``context`` dictionary that pipeline
operators consult for shared mutable state; the paper stores the
per-gene Gaussian-mutation standard deviations there
(``context['std']``, Listing 1) and multiplies them by 0.85 after each
generation.  We reproduce the same mechanism but also provide a
:class:`Context` class so tests and concurrent campaigns can use
isolated instances instead of cross-talking through the global.
"""

from __future__ import annotations

from typing import Any, Iterator, MutableMapping


class Context(MutableMapping[str, Any]):
    """A namespaced mutable mapping for run-time EA state.

    Behaves like a plain ``dict`` but supports snapshot/restore, which
    the multi-run campaign manager uses to guarantee that one EA run's
    annealed mutation state never leaks into the next run.
    """

    def __init__(self, **initial: Any) -> None:
        self._data: dict[str, Any] = dict(initial)

    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self._data[key] = value

    def __delitem__(self, key: str) -> None:
        del self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Context({self._data!r})"

    def snapshot(self) -> dict[str, Any]:
        """Shallow copy of the current state."""
        return dict(self._data)

    def restore(self, snap: dict[str, Any]) -> None:
        """Replace current state with ``snap``."""
        self._data = dict(snap)

    def reset(self) -> None:
        """Drop all state."""
        self._data.clear()


#: The module-level default context, mirroring ``leap_ec.context``.
context: Context = Context()

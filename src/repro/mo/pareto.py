"""Pareto-front extraction and incremental archives."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.evo.individual import Individual
from repro.mo.dominance import dominates, non_dominated_mask


def pareto_front(
    population: Sequence[Individual], require_viable: bool = True
) -> list[Individual]:
    """Non-dominated individuals of ``population``.

    With ``require_viable`` (default), MAXINT-failure individuals are
    excluded first — a failed training can never sit on the frontier of
    Fig. 2.  The result is sorted by the first objective.
    """
    pool = [
        ind
        for ind in population
        if ind.fitness is not None
        and (ind.is_viable or not require_viable)
    ]
    if not pool:
        return []
    F = np.asarray([ind.fitness for ind in pool])
    mask = non_dominated_mask(F)
    front = [ind for ind, keep in zip(pool, mask) if keep]
    front.sort(key=lambda ind: tuple(np.atleast_1d(ind.fitness)))
    return front


class ParetoArchive:
    """An incrementally maintained non-dominated set.

    Useful when aggregating candidates across many EA runs (the paper
    aggregates the last generations of all five runs) without holding
    every individual in memory.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._members: list[Individual] = []
        self.capacity = capacity

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self):
        return iter(self._members)

    @property
    def members(self) -> list[Individual]:
        return sorted(
            self._members, key=lambda ind: tuple(np.atleast_1d(ind.fitness))
        )

    def add(self, candidate: Individual) -> bool:
        """Insert ``candidate`` if non-dominated; evict what it dominates.

        Returns True when the candidate was admitted.  When a capacity
        is set and exceeded, the most crowded member (smallest nearest-
        neighbour distance in objective space) is dropped.
        """
        if candidate.fitness is None:
            raise ValueError("cannot archive an unevaluated individual")
        if not candidate.is_viable:
            return False
        cf = np.atleast_1d(candidate.fitness)
        for member in self._members:
            mf = np.atleast_1d(member.fitness)
            if dominates(mf, cf) or np.array_equal(mf, cf):
                return False
        self._members = [
            m
            for m in self._members
            if not dominates(cf, np.atleast_1d(m.fitness))
        ]
        self._members.append(candidate)
        if self.capacity is not None and len(self._members) > self.capacity:
            self._evict_most_crowded()
        return True

    def add_all(self, candidates: Iterable[Individual]) -> int:
        """Add many; returns how many were admitted."""
        return sum(1 for c in candidates if self.add(c))

    def _evict_most_crowded(self) -> None:
        F = np.asarray([np.atleast_1d(m.fitness) for m in self._members])
        d = np.linalg.norm(F[:, None, :] - F[None, :, :], axis=-1)
        np.fill_diagonal(d, np.inf)
        nearest = d.min(axis=1)
        # never evict objective-wise extremes
        for j in range(F.shape[1]):
            nearest[np.argmin(F[:, j])] = np.inf
            nearest[np.argmax(F[:, j])] = np.inf
        self._members.pop(int(np.argmin(nearest)))

    def fitness_matrix(self) -> np.ndarray:
        if not self._members:
            return np.zeros((0, 0))
        return np.asarray(
            [np.atleast_1d(m.fitness) for m in self.members]
        )

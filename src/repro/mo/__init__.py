"""Multiobjective optimization utilities.

Pareto-dominance primitives, front extraction (the paper's Fig. 2 /
Table 2 machinery), quality indicators used to compare optimizer
configurations (hypervolume, IGD, spread), and the ZDT test suite on
which the NSGA-II implementation is validated before being trusted
with expensive DeePMD trainings.
"""

from repro.mo.dominance import (
    dominates,
    non_dominated_mask,
    pareto_front_indices,
)
from repro.mo.pareto import ParetoArchive, pareto_front
from repro.mo.metrics import (
    DEFAULT_OBJECTIVE_REFERENCES,
    default_reference,
    generational_distance,
    hypervolume,
    hypervolume_2d,
    inverted_generational_distance,
    spread,
    spread_2d,
)
from repro.mo.stopping import HypervolumeStopper
from repro.mo.testsuite import ZDT1, ZDT2, ZDT3, ZDT4, ZDT6, ZDTProblem

__all__ = [
    "dominates",
    "non_dominated_mask",
    "pareto_front_indices",
    "pareto_front",
    "ParetoArchive",
    "DEFAULT_OBJECTIVE_REFERENCES",
    "default_reference",
    "hypervolume",
    "hypervolume_2d",
    "HypervolumeStopper",
    "generational_distance",
    "inverted_generational_distance",
    "spread",
    "spread_2d",
    "ZDTProblem",
    "ZDT1",
    "ZDT2",
    "ZDT3",
    "ZDT4",
    "ZDT6",
]

"""Hypervolume-based early stopping for any optimizer driver.

The paper runs a fixed 6 EA steps; with hypervolume now a first-class
telemetry signal, drivers can instead stop when the front demonstrably
stops moving: :class:`HypervolumeStopper` tracks the dominated
hypervolume of each committed generation's selected population and
fires once the *relative* gain stays below ``eps`` for ``patience``
consecutive generations.

The stopper is purely observational — it never mutates the run, so a
stopped run's records are bit-identical to the same-length prefix of
an unstopped one (the kill/resume invariant extends to early stops).
All drivers thread it the same way: observe the generation record
right after it is built, break out of the loop when ``observe``
returns True.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Sequence

import numpy as np

from repro.mo.metrics import default_reference, hypervolume


def _viable_rows(individuals: Any) -> list[np.ndarray]:
    rows = []
    for ind in individuals:
        fitness = getattr(ind, "fitness", None)
        if fitness is None or not getattr(ind, "is_viable", True):
            continue
        arr = np.asarray(fitness, dtype=np.float64).ravel()
        if arr.size and np.all(np.isfinite(arr)):
            rows.append(arr)
    return rows


class HypervolumeStopper:
    """Stop when the relative hypervolume gain stalls.

    Parameters
    ----------
    eps:
        Minimum relative gain ``(hv - prev) / max(prev, tiny)`` that
        counts as progress.  Generations below it are "stalled".
    patience:
        Consecutive stalled generations required before stopping.
    reference:
        Hypervolume reference point.  ``None`` (default) resolves to
        :func:`repro.mo.metrics.default_reference` for the observed
        front's dimensionality, i.e. the same campaign-fixed corner the
        live telemetry measures against.
    min_generations:
        Never stop before this many generations have been observed
        (generation 0, the random initialization, counts).

    ``observe`` accepts a :class:`~repro.evo.algorithm.GenerationRecord`
    (duck-typed: ``generation`` + ``population``); ``observe_front``
    takes the pieces directly.  Both return True once the stop
    condition holds; the decision is sticky.
    """

    def __init__(
        self,
        eps: float = 1e-3,
        patience: int = 2,
        reference: Optional[Sequence[float]] = None,
        min_generations: int = 3,
    ) -> None:
        if eps < 0:
            raise ValueError("eps must be non-negative")
        if patience < 1:
            raise ValueError("patience must be at least 1")
        self.eps = float(eps)
        self.patience = int(patience)
        self.reference = (
            None
            if reference is None
            else tuple(float(r) for r in np.ravel(reference))
        )
        self.min_generations = int(min_generations)
        self.stopped = False
        self.stalled = 0
        #: (generation, hypervolume) per observation — the audit trail
        self.history: list[tuple[int, float]] = []

    # ------------------------------------------------------------------
    def observe(self, record: Any) -> bool:
        """Observe one committed generation record; True = stop now."""
        return self.observe_front(record.generation, record.population)

    def observe_front(self, generation: int, individuals: Any) -> bool:
        if self.stopped:
            return True
        rows = _viable_rows(individuals)
        if rows:
            F = np.asarray(rows)
            reference = self.reference
            if reference is None or len(reference) != F.shape[1]:
                reference = default_reference(F.shape[1])
            hv = hypervolume(F, reference)
        else:
            hv = 0.0
        if not math.isfinite(hv):
            hv = 0.0
        prev = self.history[-1][1] if self.history else None
        self.history.append((int(generation), float(hv)))
        if prev is None:
            return False
        gain = (hv - prev) / max(prev, 1e-12)
        if gain < self.eps:
            self.stalled += 1
        else:
            self.stalled = 0
        if (
            len(self.history) >= self.min_generations
            and self.stalled >= self.patience
        ):
            self.stopped = True
        return self.stopped

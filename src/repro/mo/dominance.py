"""Pareto-dominance primitives (minimization convention throughout)."""

from __future__ import annotations

import numpy as np


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """True when ``a`` Pareto-dominates ``b``: no worse in every
    objective and strictly better in at least one."""
    a = np.atleast_1d(np.asarray(a, dtype=np.float64))
    b = np.atleast_1d(np.asarray(b, dtype=np.float64))
    if a.shape != b.shape:
        raise ValueError("fitness vectors must share a shape")
    return bool(np.all(a <= b) and np.any(a < b))


def non_dominated_mask(fitnesses: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated rows of an ``(N, M)`` matrix.

    Exact duplicates of a non-dominated point are all kept (they do not
    dominate each other), matching the front definition used for the
    paper's Table 2.
    """
    F = np.asarray(fitnesses, dtype=np.float64)
    if F.ndim != 2:
        raise ValueError("expected an (N, M) fitness matrix")
    n = len(F)
    if n == 0:
        return np.zeros(0, dtype=bool)
    le = np.all(F[:, None, :] <= F[None, :, :], axis=-1)
    lt = np.any(F[:, None, :] < F[None, :, :], axis=-1)
    dominated = (le & lt).any(axis=0)
    return ~dominated


def pareto_front_indices(fitnesses: np.ndarray) -> np.ndarray:
    """Indices of the non-dominated rows, sorted by the first objective."""
    mask = non_dominated_mask(fitnesses)
    idx = np.where(mask)[0]
    F = np.asarray(fitnesses, dtype=np.float64)
    order = np.lexsort((F[idx, -1], F[idx, 0]))
    return idx[order]

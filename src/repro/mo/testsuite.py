"""The ZDT two-objective test suite (Zitzler, Deb & Thiele 2000).

The paper's NSGA-II is validated here before being pointed at the
expensive DeePMD landscape: each ZDT problem has a known analytic
Pareto front, so convergence and coverage can be asserted numerically
(see ``tests/test_nsga2_validation.py`` and
``examples/nsga2_zdt.py``).
"""

from __future__ import annotations

import numpy as np

from repro.evo.problem import Problem


class ZDTProblem(Problem):
    """Base for the ZDT family: 2 objectives over [0, 1]^n genomes."""

    n_objectives = 2

    def __init__(self, n_variables: int = 30) -> None:
        if n_variables < 2:
            raise ValueError("ZDT problems need at least two variables")
        self.n_variables = int(n_variables)

    @property
    def bounds(self) -> np.ndarray:
        """(n, 2) genome bounds."""
        return np.tile([0.0, 1.0], (self.n_variables, 1))

    def true_front(self, n_points: int = 200) -> np.ndarray:
        """Sampled analytic Pareto front (f1, f2) pairs."""
        raise NotImplementedError

    # subclasses implement g() and h()
    def _g(self, x: np.ndarray) -> float:
        raise NotImplementedError

    def _h(self, f1: float, g: float) -> float:
        raise NotImplementedError

    def evaluate(self, phenome: np.ndarray) -> np.ndarray:
        x = np.asarray(phenome, dtype=np.float64)
        f1 = float(x[0])
        g = self._g(x)
        return np.array([f1, g * self._h(f1, g)])


class ZDT1(ZDTProblem):
    """Convex front: ``f2 = 1 - sqrt(f1)``."""

    def _g(self, x):
        return 1.0 + 9.0 * np.mean(x[1:])

    def _h(self, f1, g):
        return 1.0 - np.sqrt(f1 / g)

    def true_front(self, n_points: int = 200) -> np.ndarray:
        f1 = np.linspace(0.0, 1.0, n_points)
        return np.column_stack([f1, 1.0 - np.sqrt(f1)])


class ZDT2(ZDTProblem):
    """Concave front: ``f2 = 1 - f1^2``."""

    def _g(self, x):
        return 1.0 + 9.0 * np.mean(x[1:])

    def _h(self, f1, g):
        return 1.0 - (f1 / g) ** 2

    def true_front(self, n_points: int = 200) -> np.ndarray:
        f1 = np.linspace(0.0, 1.0, n_points)
        return np.column_stack([f1, 1.0 - f1**2])


class ZDT3(ZDTProblem):
    """Disconnected front with a sinusoidal component."""

    def _g(self, x):
        return 1.0 + 9.0 * np.mean(x[1:])

    def _h(self, f1, g):
        ratio = f1 / g
        return 1.0 - np.sqrt(ratio) - ratio * np.sin(10.0 * np.pi * f1)

    def true_front(self, n_points: int = 500) -> np.ndarray:
        f1 = np.linspace(0.0, 0.852, n_points)
        f2 = 1.0 - np.sqrt(f1) - f1 * np.sin(10.0 * np.pi * f1)
        pts = np.column_stack([f1, f2])
        from repro.mo.dominance import non_dominated_mask

        return pts[non_dominated_mask(pts)]


class ZDT4(ZDTProblem):
    """Highly multimodal (Rastrigin-like g); front as ZDT1.

    Variables beyond the first live in [-5, 5].
    """

    def __init__(self, n_variables: int = 10) -> None:
        super().__init__(n_variables)

    @property
    def bounds(self) -> np.ndarray:
        b = np.tile([-5.0, 5.0], (self.n_variables, 1))
        b[0] = [0.0, 1.0]
        return b

    def _g(self, x):
        tail = x[1:]
        return (
            1.0
            + 10.0 * len(tail)
            + float(np.sum(tail**2 - 10.0 * np.cos(4.0 * np.pi * tail)))
        )

    def _h(self, f1, g):
        return 1.0 - np.sqrt(f1 / g)

    def true_front(self, n_points: int = 200) -> np.ndarray:
        f1 = np.linspace(0.0, 1.0, n_points)
        return np.column_stack([f1, 1.0 - np.sqrt(f1)])


class ZDT6(ZDTProblem):
    """Non-uniform density along a concave front."""

    def __init__(self, n_variables: int = 10) -> None:
        super().__init__(n_variables)

    def evaluate(self, phenome: np.ndarray) -> np.ndarray:
        x = np.asarray(phenome, dtype=np.float64)
        f1 = 1.0 - np.exp(-4.0 * x[0]) * np.sin(6.0 * np.pi * x[0]) ** 6
        g = 1.0 + 9.0 * (np.mean(x[1:]) ** 0.25)
        f2 = g * (1.0 - (f1 / g) ** 2)
        return np.array([f1, f2])

    def true_front(self, n_points: int = 200) -> np.ndarray:
        f1 = np.linspace(0.2807753191, 1.0, n_points)
        return np.column_stack([f1, 1.0 - f1**2])

"""Multiobjective quality indicators.

Used by the validation suite (is our NSGA-II a faithful NSGA-II?) and
by the ablation benchmarks (does the ×0.85 annealing help on the HPO
landscape?).  All metrics follow the minimization convention.
"""

from __future__ import annotations

import numpy as np

from repro.mo.dominance import non_dominated_mask


def _as_front(points: np.ndarray) -> np.ndarray:
    F = np.asarray(points, dtype=np.float64)
    if F.ndim != 2:
        raise ValueError("expected an (N, M) matrix of objective vectors")
    return F


def hypervolume_2d(
    front: np.ndarray, reference: tuple[float, float]
) -> float:
    """Exact hypervolume of a two-objective front w.r.t. ``reference``.

    Points not dominating the reference contribute nothing.  The front
    need not be pre-filtered; dominated members are discarded first.
    """
    F = _as_front(front)
    if F.shape[0] == 0:
        return 0.0
    if F.shape[1] != 2:
        raise ValueError("hypervolume_2d requires exactly two objectives")
    ref = np.asarray(reference, dtype=np.float64)
    F = F[np.all(F < ref, axis=1)]
    if len(F) == 0:
        return 0.0
    F = F[non_dominated_mask(F)]
    order = np.argsort(F[:, 0], kind="stable")
    F = F[order]
    hv = 0.0
    prev_f2 = ref[1]
    for f1, f2 in F:
        hv += (ref[0] - f1) * (prev_f2 - f2)
        prev_f2 = f2
    return float(hv)


def generational_distance(
    front: np.ndarray, reference_front: np.ndarray
) -> float:
    """Mean distance from each obtained point to the reference front."""
    F = _as_front(front)
    R = _as_front(reference_front)
    if len(F) == 0 or len(R) == 0:
        raise ValueError("fronts must be non-empty")
    d = np.linalg.norm(F[:, None, :] - R[None, :, :], axis=-1)
    return float(d.min(axis=1).mean())


def inverted_generational_distance(
    front: np.ndarray, reference_front: np.ndarray
) -> float:
    """Mean distance from each reference point to the obtained front —
    measures coverage as well as convergence."""
    return generational_distance(reference_front, front)


def spread_2d(front: np.ndarray) -> float:
    """Deb's spread (Δ) indicator for a two-objective front.

    0 means perfectly even spacing; values near 1 indicate clustering.
    Needs at least three points; returns NaN otherwise.
    """
    F = _as_front(front)
    if F.shape[1] != 2:
        raise ValueError("spread_2d requires exactly two objectives")
    F = F[non_dominated_mask(F)]
    if len(F) < 3:
        return float("nan")
    F = F[np.argsort(F[:, 0], kind="stable")]
    gaps = np.linalg.norm(np.diff(F, axis=0), axis=1)
    mean_gap = gaps.mean()
    if mean_gap == 0:
        return 0.0
    return float(np.abs(gaps - mean_gap).sum() / (gaps.sum()))

"""Multiobjective quality indicators.

Used by the validation suite (is our NSGA-II a faithful NSGA-II?), the
ablation benchmarks (does the ×0.85 annealing help on the HPO
landscape?), and the live convergence telemetry.  All metrics follow
the minimization convention.

The dominated-hypervolume family is dimension-general:

:func:`hypervolume`
    Exact for one, two, and three objectives (the three-objective case
    uses WFG-style slicing along the third objective: sort by ``f3``,
    sweep slices, and integrate the 2-D hypervolume of the active
    points over each slice's depth).  Four or more objectives fall back
    to a deterministic Monte-Carlo estimate (fixed seed, so telemetry
    series and resume comparisons stay reproducible).
:func:`hypervolume_2d`
    The historical two-objective entry point, kept because its exact
    sweep is the oracle the property suite pins ``hypervolume(d=2)``
    against bit-for-bit.

Degenerate fronts are handled in one place — :func:`_as_front` — so a
front containing non-finite rows (NaN/Inf metadata artifacts) or no
points at all yields a well-defined value instead of crashing the
telemetry of a running campaign.  ``MAXINT`` failure fitnesses are
finite by design and are excluded by the reference-point filter.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.mo.dominance import non_dominated_mask

#: campaign-fixed per-objective hypervolume reference values in the
#: canonical (energy RMSE, force RMSE, runtime minutes) order — the
#: first two are the corner the 2-D telemetry always measured against;
#: the third bounds the runtime objective (the surrogate's cost model
#: tops out near 80 min at ``rcut`` = 12, so 240 leaves headroom)
DEFAULT_OBJECTIVE_REFERENCES: tuple[float, ...] = (0.02, 0.2, 240.0)

#: fixed seed of the d>3 Monte-Carlo fallback — estimates must be
#: reproducible across telemetry scrapes and kill/resume comparisons
_MC_SEED = 2023


def default_reference(n_objectives: int) -> tuple[float, ...]:
    """The campaign-fixed reference point for ``n_objectives``
    objectives (extra dimensions beyond the known three repeat the
    runtime bound)."""
    n = int(n_objectives)
    if n < 1:
        raise ValueError("need at least one objective")
    known = DEFAULT_OBJECTIVE_REFERENCES
    if n <= len(known):
        return known[:n]
    return known + (known[-1],) * (n - len(known))


def _as_front(
    points: np.ndarray,
    reference: Optional[Sequence[float]] = None,
    n_objectives: Optional[int] = None,
) -> np.ndarray:
    """Normalize raw points to a finite ``(N, M)`` front matrix.

    The single place degenerate inputs are cleaned up (the telemetry of
    a live campaign must never crash on them):

    * empty input → a ``(0, M)`` matrix (``M`` from ``n_objectives``,
      the reference, or 0);
    * a single objective vector → a one-row matrix;
    * rows with any non-finite component are dropped;
    * with ``reference``, rows not strictly dominating the reference
      point are dropped too (they contribute no hypervolume — this is
      also what excludes MAXINT failure fitnesses).
    """
    F = np.asarray(points, dtype=np.float64)
    if F.size == 0:
        if n_objectives is None:
            if reference is not None:
                n_objectives = len(np.ravel(reference))
            elif F.ndim == 2:
                n_objectives = F.shape[1]
            else:
                n_objectives = 0
        return np.empty((0, int(n_objectives)))
    if F.ndim == 1:
        F = F[None, :]
    if F.ndim != 2:
        raise ValueError("expected an (N, M) matrix of objective vectors")
    F = F[np.all(np.isfinite(F), axis=1)]
    if reference is not None:
        ref = np.ravel(np.asarray(reference, dtype=np.float64))
        if F.shape[1] != ref.shape[0]:
            raise ValueError(
                f"front has {F.shape[1]} objectives but the reference "
                f"point has {ref.shape[0]}"
            )
        F = F[np.all(F < ref, axis=1)]
    return F


def _hv_exact_2d(F: np.ndarray, ref: np.ndarray) -> float:
    """Exact 2-D sweep over a pre-filtered front (every row strictly
    dominates ``ref``); the float operation order is the historical
    ``hypervolume_2d`` one, bit-for-bit."""
    F = F[non_dominated_mask(F)]
    order = np.argsort(F[:, 0], kind="stable")
    F = F[order]
    hv = 0.0
    prev_f2 = ref[1]
    for f1, f2 in F:
        hv += (ref[0] - f1) * (prev_f2 - f2)
        prev_f2 = f2
    return float(hv)


def _hv_exact_3d(F: np.ndarray, ref: np.ndarray) -> float:
    """Exact 3-D hypervolume by slicing along the third objective.

    Sort the (nondominated) points by ``f3`` ascending and sweep: the
    volume between consecutive ``f3`` values is the 2-D hypervolume of
    the ``(f1, f2)`` projections of all points at or below the slice,
    times the slice depth; the final slice extends to ``ref[2]``.
    """
    F = F[non_dominated_mask(F)]
    order = np.lexsort((F[:, 1], F[:, 0], F[:, 2]))
    F = F[order]
    zs = F[:, 2]
    hv = 0.0
    for k in range(len(F)):
        z_next = zs[k + 1] if k + 1 < len(F) else float(ref[2])
        depth = z_next - zs[k]
        if depth <= 0.0:
            continue  # ties share the next slice
        hv += _hv_exact_2d(F[: k + 1, :2], ref[:2]) * depth
    return float(hv)


def _hv_monte_carlo(
    F: np.ndarray, ref: np.ndarray, n_samples: int, seed: int
) -> float:
    """Deterministic Monte-Carlo estimate for four or more objectives:
    sample the bounding box between the front's ideal corner and the
    reference, count samples dominated by any front point."""
    lower = F.min(axis=0)
    box = np.prod(ref - lower)
    if not np.isfinite(box) or box <= 0.0:
        return 0.0
    gen = np.random.default_rng(seed)
    samples = gen.uniform(lower, ref, size=(int(n_samples), F.shape[1]))
    dominated = np.zeros(len(samples), dtype=bool)
    for row in F:
        dominated |= np.all(samples >= row, axis=1)
    return float(box * dominated.mean())


def hypervolume(
    front: np.ndarray,
    reference: Sequence[float],
    n_samples: int = 20_000,
    seed: int = _MC_SEED,
) -> float:
    """Dominated hypervolume of an N-objective front w.r.t. ``reference``.

    Exact for up to three objectives, a deterministic Monte-Carlo
    estimate (``n_samples`` box samples, fixed ``seed``) beyond that.
    The front need not be pre-filtered: dominated members, non-finite
    rows, and points outside the reference box contribute nothing, and
    an empty front has hypervolume 0.
    """
    ref = np.ravel(np.asarray(reference, dtype=np.float64))
    F = _as_front(front, reference=ref, n_objectives=len(ref))
    if len(F) == 0:
        return 0.0
    d = F.shape[1]
    if d == 1:
        return float(ref[0] - F[:, 0].min())
    if d == 2:
        return _hv_exact_2d(F, ref)
    if d == 3:
        return _hv_exact_3d(F, ref)
    return _hv_monte_carlo(F, ref, n_samples=n_samples, seed=seed)


def hypervolume_2d(
    front: np.ndarray, reference: tuple[float, float]
) -> float:
    """Exact hypervolume of a two-objective front w.r.t. ``reference``.

    Points not dominating the reference contribute nothing.  The front
    need not be pre-filtered; dominated members are discarded first.
    """
    ref = np.ravel(np.asarray(reference, dtype=np.float64))
    if ref.shape[0] != 2:
        raise ValueError("hypervolume_2d requires exactly two objectives")
    F = _as_front(front, reference=ref, n_objectives=2)
    if F.shape[1] != 2:
        raise ValueError("hypervolume_2d requires exactly two objectives")
    if len(F) == 0:
        return 0.0
    return _hv_exact_2d(F, ref)


def generational_distance(
    front: np.ndarray, reference_front: np.ndarray
) -> float:
    """Mean distance from each obtained point to the reference front."""
    F = _as_front(front)
    R = _as_front(reference_front)
    if len(F) == 0 or len(R) == 0:
        raise ValueError("fronts must be non-empty")
    d = np.linalg.norm(F[:, None, :] - R[None, :, :], axis=-1)
    return float(d.min(axis=1).mean())


def inverted_generational_distance(
    front: np.ndarray, reference_front: np.ndarray
) -> float:
    """Mean distance from each reference point to the obtained front —
    measures coverage as well as convergence."""
    return generational_distance(reference_front, front)


def spread_2d(front: np.ndarray) -> float:
    """Deb's spread (Δ) indicator for a two-objective front.

    0 means perfectly even spacing; values near 1 indicate clustering.
    Needs at least three points; returns NaN otherwise.
    """
    F = _as_front(front)
    if len(F) == 0:
        return float("nan")
    if F.shape[1] != 2:
        raise ValueError("spread_2d requires exactly two objectives")
    F = F[non_dominated_mask(F)]
    if len(F) < 3:
        return float("nan")
    F = F[np.argsort(F[:, 0], kind="stable")]
    gaps = np.linalg.norm(np.diff(F, axis=0), axis=1)
    mean_gap = gaps.mean()
    if mean_gap == 0:
        return 0.0
    return float(np.abs(gaps - mean_gap).sum() / (gaps.sum()))


def spread(front: np.ndarray) -> float:
    """Dimension-general spacing indicator.

    Two objectives delegate to :func:`spread_2d` (Deb's Δ along the
    sorted front).  Three or more use the nearest-neighbour
    generalization: the normalized absolute deviation of each front
    point's nearest-neighbour distance from the mean — 0 for perfectly
    even spacing, approaching 1 for clustered fronts.  Needs at least
    three points; returns NaN otherwise.
    """
    F = _as_front(front)
    if len(F) == 0:
        return float("nan")
    if F.shape[1] == 2:
        return spread_2d(F)
    F = F[non_dominated_mask(F)]
    if len(F) < 3:
        return float("nan")
    D = np.linalg.norm(F[:, None, :] - F[None, :, :], axis=-1)
    np.fill_diagonal(D, np.inf)
    nn = D.min(axis=1)
    mean_nn = nn.mean()
    if mean_nn == 0:
        return 0.0
    total = nn.sum()
    if total == 0:
        return 0.0
    return float(np.abs(nn - mean_nn).sum() / total)

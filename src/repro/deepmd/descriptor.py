"""The DeepPot-SE smooth descriptor.

The descriptor maps each atom's local environment (all neighbors
within ``rcut``) to a smooth, rotation-covariant feature matrix.  The
central ingredient is the switching function

``s(r) = 1/r``                                     for ``r < rcut_smth``
``s(r) = (1/r) * (x^3 (-6x^2 + 15x - 10) + 1)``    for ``rcut_smth <= r < rcut``
``s(r) = 0``                                       for ``r >= rcut``

with ``x = (r - rcut_smth) / (rcut - rcut_smth)`` — continuously
differentiable up to second order at both ends, which is what makes
the learned potential-energy surface smooth (§1).  The two radii are
exactly the ``rcut`` / ``rcut_smth`` genes of the search (Table 1).

From ``s(r)`` the generalized environment matrix is built:

``R~_ij = [s(r_ij), s(r_ij) x_ij / r_ij, s(r_ij) y_ij / r_ij,
           s(r_ij) z_ij / r_ij]``

and the descriptor of atom ``i`` is ``D_i = (G^T R~)(R~^T G<)`` with
``G`` the embedding-network output per neighbor and ``G<`` its first
``m2`` columns (Zhang et al. 2018).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autodiff import functional as F
from repro.autodiff.tensor import Tensor
from repro.exceptions import ConfigurationError


def smooth_switch(r: Tensor, rcut: float, rcut_smth: float) -> Tensor:
    """The DeepPot-SE switching function ``s(r)`` (differentiable).

    ``r`` may contain padded zero entries (masked neighbors); they are
    excluded from the 1/r branch to avoid division by zero and produce
    s = 0 there.
    """
    if rcut <= rcut_smth:
        raise ConfigurationError(
            f"rcut ({rcut}) must exceed rcut_smth ({rcut_smth})"
        )
    rd = r.data
    inner = rd < rcut_smth
    mid = (rd >= rcut_smth) & (rd < rcut)
    valid = rd > 1e-12
    # guard padded/zero entries out of 1/r
    safe_r = F.maximum(r, 1e-12)
    inv_r = F.div(1.0, safe_r)
    x = F.div(
        F.sub(r, rcut_smth), float(rcut - rcut_smth)
    )
    # poly = x^3 * (-6x^2 + 15x - 10) + 1  (C2-continuous switch)
    x3 = F.mul(x, F.mul(x, x))
    quad = F.add(F.mul(x, F.add(F.mul(x, -6.0), 15.0)), -10.0)
    poly = F.add(F.mul(x3, quad), 1.0)
    smooth = F.mul(inv_r, poly)
    out = F.where(inner & valid, inv_r, F.where(mid, smooth, F.mul(r, 0.0)))
    return out


@dataclass(frozen=True)
class DescriptorConfig:
    """Geometry parameters of the descriptor (the two searched radii)."""

    rcut: float = 6.0
    rcut_smth: float = 0.5

    def __post_init__(self) -> None:
        if self.rcut <= 0:
            raise ConfigurationError("rcut must be positive")
        if self.rcut_smth < 0:
            raise ConfigurationError("rcut_smth must be non-negative")
        if self.rcut <= self.rcut_smth:
            raise ConfigurationError(
                f"rcut ({self.rcut}) must exceed rcut_smth ({self.rcut_smth})"
            )


class SmoothDescriptor:
    """Computes the environment matrix from displacement tensors.

    The object is stateless apart from its configuration; the embedding
    network lives in :class:`repro.deepmd.model.DeepPotModel` because
    its parameters are trained.
    """

    def __init__(self, config: DescriptorConfig) -> None:
        self.config = config

    def environment_matrix(
        self, displacements: Tensor, mask: np.ndarray
    ) -> tuple[Tensor, Tensor]:
        """Build ``(R~, s)`` from padded displacement tensors.

        Parameters
        ----------
        displacements:
            ``(..., max_nbr, 3)`` displacement vectors (padded entries
            may hold zeros).
        mask:
            Constant ``(..., max_nbr)`` validity mask (1 real, 0 pad).

        Returns
        -------
        env:
            ``(..., max_nbr, 4)`` environment matrix rows
            ``[s, s*x/r, s*y/r, s*z/r]`` with padded rows zeroed.
        s:
            ``(..., max_nbr)`` the switching values (embedding input).
        """
        d2 = F.sum(F.mul(displacements, displacements), axis=-1)
        r = F.sqrt(F.maximum(d2, 1e-24))
        s = smooth_switch(r, self.config.rcut, self.config.rcut_smth)
        s = F.mul(s, Tensor(mask))
        inv_r = F.div(1.0, F.maximum(r, 1e-12))
        # direction-weighted channels: s(r) * d / r
        weights = F.mul(s, inv_r)  # (..., max_nbr)
        directional = F.mul(
            displacements, F.reshape(weights, weights.shape + (1,))
        )
        env = F.concatenate(
            [F.reshape(s, s.shape + (1,)), directional], axis=-1
        )
        return env, s

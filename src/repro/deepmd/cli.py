"""The ``dp``-style command-line interface.

``repro-dp train input.json`` (or ``python -m repro.deepmd.cli train
input.json``) is the stand-in for DeePMD-kit's ``dp train`` executable
that the paper invoked via ``subprocess`` on each Summit node.  It
reads the dataset named in the input file, trains, and writes
``lcurve.out`` and ``model.npz`` into the working directory.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.deepmd.input_config import InputConfig
    from repro.deepmd.lcurve import write_lcurve
    from repro.deepmd.model import DeepPotModel
    from repro.deepmd.training import Trainer
    from repro.md.dataset import FrameDataset

    config = InputConfig.from_file(args.input)
    data_dir = args.data or config.data_dir
    if not data_dir:
        print("error: no data directory configured", file=sys.stderr)
        return 2
    dataset = FrameDataset.load(data_dir)
    model = DeepPotModel(config.model_config(), rng=config.seed)
    trainer = Trainer(
        model,
        dataset,
        config.training_config(time_limit=args.time_limit),
        rng=config.seed,
    )
    result = trainer.train()
    outdir = Path(args.input).resolve().parent
    write_lcurve(result.lcurve, outdir / "lcurve.out")
    np.savez(outdir / "model.npz", **model.state_dict())
    print(
        f"training finished: rmse_e_val={result.rmse_e_val:.6e} eV/atom, "
        f"rmse_f_val={result.rmse_f_val:.6e} eV/A, "
        f"{result.steps_completed} steps in {result.wall_time:.1f}s"
    )
    return 0


def _cmd_test(args: argparse.Namespace) -> int:
    """``dp test``: evaluate a trained model against a dataset."""
    from repro.deepmd.data import prepare_batches
    from repro.deepmd.input_config import InputConfig
    from repro.deepmd.model import DeepPotModel
    from repro.md.dataset import FrameDataset
    from repro.nn.loss import EnergyForceLoss

    config = InputConfig.from_file(args.input)
    data_dir = args.data or config.data_dir
    if not data_dir:
        print("error: no data directory configured", file=sys.stderr)
        return 2
    dataset = FrameDataset.load(data_dir)
    model = DeepPotModel(config.model_config(), rng=config.seed)
    state = dict(np.load(args.model))
    model.load_state_dict(state)
    frames = (
        dataset.validation if args.split == "validation" else dataset.train
    )
    if not frames:
        print("error: requested split is empty", file=sys.stderr)
        return 2
    batches = prepare_batches(frames, config.rcut, batch_size=4)
    se = sf = 0.0
    n_frames = n_force = 0
    for batch in batches:
        e_pred, f_pred = model.energy_and_forces(batch)
        de = (e_pred.data - batch.energies) / dataset.n_atoms
        se += float(np.sum(de * de))
        df = f_pred.data - batch.forces
        sf += float(np.sum(df * df))
        n_frames += batch.n_frames
        n_force += df.size
    rmse_e = float(np.sqrt(se / n_frames))
    rmse_f = float(np.sqrt(sf / n_force))
    print(
        f"tested {n_frames} {args.split} frames: "
        f"rmse_e={rmse_e:.6e} eV/atom, rmse_f={rmse_f:.6e} eV/A"
    )
    return 0


def _cmd_gen_data(args: argparse.Namespace) -> int:
    from repro.md.dataset import generate_dataset

    dataset = generate_dataset(
        n_frames=args.frames,
        n_alcl3=args.alcl3,
        n_kcl=args.kcl,
        rng=args.seed,
    )
    dataset.save(args.output)
    print(
        f"wrote {len(dataset.train)} training / "
        f"{len(dataset.validation)} validation frames "
        f"({dataset.n_atoms} atoms) to {args.output}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dp",
        description="DeePMD-style trainer for the NSGA-II HPO reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_train = sub.add_parser("train", help="train a potential")
    p_train.add_argument("input", help="path to input.json")
    p_train.add_argument(
        "--data", default=None, help="override the dataset directory"
    )
    p_train.add_argument(
        "--time-limit",
        type=float,
        default=None,
        help="wall-clock limit in seconds",
    )
    p_train.set_defaults(func=_cmd_train)

    p_test = sub.add_parser(
        "test", help="evaluate a trained model against a dataset"
    )
    p_test.add_argument("input", help="path to the training input.json")
    p_test.add_argument("model", help="path to model.npz")
    p_test.add_argument("--data", default=None)
    p_test.add_argument(
        "--split", choices=["train", "validation"], default="validation"
    )
    p_test.set_defaults(func=_cmd_test)

    p_gen = sub.add_parser("gen-data", help="generate an MD dataset")
    p_gen.add_argument("output", help="output directory")
    p_gen.add_argument("--frames", type=int, default=200)
    p_gen.add_argument("--alcl3", type=int, default=4)
    p_gen.add_argument("--kcl", type=int, default=2)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.set_defaults(func=_cmd_gen_data)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""The Deep Potential Smooth Edition model.

Architecture (Zhang et al. 2018, as deployed by DeePMD-kit):

1. For each atom, the smooth descriptor builds the environment matrix
   ``R~`` from neighbors within ``rcut`` (see
   :mod:`repro.deepmd.descriptor`).
2. An **embedding network** maps each neighbor's switching value
   ``s(r)`` (here concatenated with the neighbor's species one-hot — a
   single shared network instead of DeePMD's per-species-pair network
   table, a documented scale-down that preserves the role of the
   embedding activation function) to an ``m1``-dimensional feature.
3. The symmetry-preserving descriptor is
   ``D_i = (G^T R~)(R~^T G<) / width^2`` with ``G<`` the first ``m2``
   embedding columns.
4. A **fitting network** maps ``D_i`` (plus the central atom's species
   one-hot) to a per-atom energy; the total energy is their sum plus a
   constant per-atom bias fitted from the training data.
5. **Forces are the exact negative gradient** of the total energy with
   respect to atomic positions, obtained by differentiating through
   the descriptor with the autodiff tape (``create_graph=True`` keeps
   them differentiable for the force-matching loss).

The paper fixes the network shapes (embedding {25, 50, 100}, fitting
{240, 240, 240}) and searches the *activation functions*; this class
takes both as configuration so tests can shrink the widths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.autodiff import functional as F
from repro.autodiff.tensor import Tensor, grad, no_grad
from repro.deepmd.data import DescriptorBatch
from repro.deepmd.descriptor import DescriptorConfig, SmoothDescriptor
from repro.exceptions import ConfigurationError
from repro.nn.activations import ACTIVATION_NAMES, get_activation
from repro.nn.network import MLP
from repro.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class ModelConfig:
    """Hyperparameters of the DeepPot-SE model.

    ``embedding_widths`` / ``fitting_widths`` default to a scaled-down
    version of the paper's fixed {25,50,100} / {240,240,240}; the
    activation names are the searched genes.
    """

    descriptor: DescriptorConfig = field(default_factory=DescriptorConfig)
    n_species: int = 3
    embedding_widths: tuple[int, ...] = (8, 16)
    axis_neurons: int = 4  # m2: columns of G used for the second factor
    fitting_widths: tuple[int, ...] = (24, 24)
    desc_activation: str = "tanh"
    fitting_activation: str = "tanh"
    descriptor_scale: float = 100.0
    #: fixed divisor for the G^T R environment products (DeePMD's
    #: ``sel`` plays the same role there).  It must NOT depend on the
    #: padded neighbor width, or a model trained with one neighbor
    #: table would predict differently when deployed with another.
    descriptor_norm: float = 32.0

    def __post_init__(self) -> None:
        for name in (self.desc_activation, self.fitting_activation):
            if name not in ACTIVATION_NAMES:
                raise ConfigurationError(
                    f"unknown activation {name!r}; expected one of "
                    f"{ACTIVATION_NAMES}"
                )
        if self.axis_neurons > self.embedding_widths[-1]:
            raise ConfigurationError(
                "axis_neurons cannot exceed the embedding output width"
            )
        if self.n_species < 1:
            raise ConfigurationError("n_species must be >= 1")


class DeepPotModel:
    """Trainable deep potential: energy and gradient-consistent forces."""

    def __init__(
        self,
        config: ModelConfig,
        energy_bias_per_atom: float = 0.0,
        rng: RngLike = None,
    ) -> None:
        gen = ensure_rng(rng)
        self.config = config
        self.descriptor = SmoothDescriptor(config.descriptor)
        desc_act = get_activation(config.desc_activation)
        fit_act = get_activation(config.fitting_activation)
        m1 = config.embedding_widths[-1]
        self.m1 = m1
        self.m2 = config.axis_neurons
        emb_sizes = [1 + config.n_species, *config.embedding_widths]
        self.embedding = MLP(
            emb_sizes,
            activation=desc_act,
            final_activation=desc_act,
            rng=gen,
        )
        fit_sizes = [m1 * self.m2 + config.n_species, *config.fitting_widths, 1]
        self.fitting = MLP(
            fit_sizes, activation=fit_act, final_activation=None, rng=gen
        )
        self.energy_bias_per_atom = float(energy_bias_per_atom)

    @property
    def parameters(self) -> list[Tensor]:
        return self.embedding.parameters + self.fitting.parameters

    def n_parameters(self) -> int:
        return self.embedding.n_parameters() + self.fitting.n_parameters()

    # ------------------------------------------------------------------
    def _species_onehots(
        self, batch: DescriptorBatch
    ) -> tuple[np.ndarray, np.ndarray]:
        """Constant one-hot encodings for neighbors and central atoms."""
        S = self.config.n_species
        species = batch.species
        central = np.eye(S)[species]  # (N, S)
        neighbor_species = species[batch.neighbor_indices]  # (B, N, nn)
        neighbor = np.eye(S)[neighbor_species]  # (B, N, nn, S)
        # zero out padded slots so the embedding sees pure zeros there
        neighbor = neighbor * batch.mask[..., None]
        return neighbor, central

    def atomic_energies(
        self, displacements: Tensor, batch: DescriptorBatch
    ) -> Tensor:
        """Per-atom energies ``(B, N)`` from displacement tensors."""
        B, N, nn = batch.mask.shape
        env, s = self.descriptor.environment_matrix(
            displacements, batch.mask
        )
        neighbor_onehot, central_onehot = self._species_onehots(batch)
        emb_in = F.concatenate(
            [F.reshape(s, (B, N, nn, 1)), Tensor(neighbor_onehot)], axis=-1
        )
        emb_flat = F.reshape(emb_in, (B * N * nn, 1 + self.config.n_species))
        G = self.embedding(emb_flat)
        G = F.reshape(G, (B, N, nn, self.m1))
        G = F.mul(G, Tensor(batch.mask[..., None]))
        GT = F.swapaxes(G, -1, -2)  # (B, N, m1, nn)
        GR = F.div(
            F.matmul(GT, env), self.config.descriptor_norm
        )  # (B, N, m1, 4)
        GR_sub = GR[:, :, : self.m2, :]  # (B, N, m2, 4)
        D = F.matmul(GR, F.swapaxes(GR_sub, -1, -2))  # (B, N, m1, m2)
        D_flat = F.mul(
            F.reshape(D, (B, N, self.m1 * self.m2)),
            self.config.descriptor_scale,
        )
        central = np.broadcast_to(
            central_onehot, (B, N, self.config.n_species)
        ).copy()
        fit_in = F.concatenate([D_flat, Tensor(central)], axis=-1)
        fit_flat = F.reshape(
            fit_in, (B * N, self.m1 * self.m2 + self.config.n_species)
        )
        e_atom = self.fitting(fit_flat)
        e_atom = F.reshape(e_atom, (B, N))
        return F.add(e_atom, self.energy_bias_per_atom)

    def energy(self, batch: DescriptorBatch) -> Tensor:
        """Total energies ``(B,)`` (no force graph)."""
        disp = Tensor(batch.displacements)
        return F.sum(self.atomic_energies(disp, batch), axis=1)

    def energy_and_forces(
        self, batch: DescriptorBatch, create_graph: bool = False
    ) -> tuple[Tensor, Tensor]:
        """Total energies ``(B,)`` and forces ``(B, N, 3)``.

        Forces are computed as ``F_i = -dE/dr_i`` by differentiating
        the scalar total energy with respect to the displacement
        tensors: with ``d_ik = r_{j(k)} - r_i`` the chain rule gives

        ``F_i = sum_k g[i, k] - sum_{(a, k): j(a,k) = i} g[a, k]``

        where ``g = dE/dd``.  Both terms are expressed with taped
        operations so, under ``create_graph=True``, the force error can
        be backpropagated into the network parameters.
        """
        B, N, nn = batch.mask.shape
        disp = Tensor(batch.displacements, requires_grad=True)
        e_atom = self.atomic_energies(disp, batch)
        e_total = F.sum(e_atom, axis=1)  # (B,)
        # a single scalar seed suffices: frames are independent
        e_sum = F.sum(e_total)
        (g,) = grad(e_sum, [disp], create_graph=create_graph)
        # term 1: sum over neighbor slots (gradient w.r.t. central atom)
        central_term = F.sum(g, axis=2)  # (B, N, 3)
        # term 2: scatter-add onto neighbor atoms
        flat_vals = F.reshape(g, (B * N * nn, 3))
        frame_offsets = (np.arange(B) * N)[:, None, None]
        flat_idx = (batch.neighbor_indices + frame_offsets).reshape(-1)
        scattered = F.index_add(
            Tensor(np.zeros((B * N, 3))), flat_idx, flat_vals
        )
        neighbor_term = F.reshape(scattered, (B, N, 3))
        forces = F.sub(central_term, neighbor_term)
        return e_total, forces

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat parameter snapshot (copies)."""
        out: dict[str, np.ndarray] = {}
        for i, p in enumerate(self.parameters):
            out[f"param_{i}"] = p.data.copy()
        out["energy_bias_per_atom"] = np.array(self.energy_bias_per_atom)
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = self.parameters
        for i, p in enumerate(params):
            src = np.asarray(state[f"param_{i}"])
            if src.shape != p.data.shape:
                raise ConfigurationError(
                    f"parameter {i} shape mismatch: {src.shape} vs "
                    f"{p.data.shape}"
                )
            p.data = src.copy()
        if "energy_bias_per_atom" in state:
            self.energy_bias_per_atom = float(state["energy_bias_per_atom"])

"""The ``lcurve.out`` training-statistics file.

DeePMD-kit appends one row per display interval with the step number,
validation and training RMSEs for energy (eV/atom) and force (eV/Å),
and the current learning rate.  The paper's evaluation workflow reads
"the last values of the ``rmse_e_val`` and ``rmse_f_val`` columns"
(§2.2.4) as the two fitness objectives, so the format — including the
header naming — is reproduced exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

COLUMNS: tuple[str, ...] = (
    "step",
    "rmse_e_val",
    "rmse_e_trn",
    "rmse_f_val",
    "rmse_f_trn",
    "lr",
)


@dataclass
class LCurve:
    """In-memory learning curve, one row per display interval."""

    rows: list[dict[str, float]] = field(default_factory=list)

    def append(
        self,
        step: int,
        rmse_e_val: float,
        rmse_e_trn: float,
        rmse_f_val: float,
        rmse_f_trn: float,
        lr: float,
    ) -> None:
        self.rows.append(
            {
                "step": float(step),
                "rmse_e_val": rmse_e_val,
                "rmse_e_trn": rmse_e_trn,
                "rmse_f_val": rmse_f_val,
                "rmse_f_trn": rmse_f_trn,
                "lr": lr,
            }
        )

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> np.ndarray:
        if name not in COLUMNS:
            raise KeyError(f"unknown lcurve column {name!r}")
        return np.array([r[name] for r in self.rows])

    def final_losses(self) -> tuple[float, float]:
        """``(rmse_e_val, rmse_f_val)`` from the last row — the fitness."""
        if not self.rows:
            raise ValueError("lcurve has no rows")
        last = self.rows[-1]
        return last["rmse_e_val"], last["rmse_f_val"]


def write_lcurve(lcurve: LCurve, path: str | Path) -> None:
    """Write in DeePMD's whitespace-delimited format with a # header."""
    path = Path(path)
    lines = ["# " + "  ".join(f"{c:>12s}" for c in COLUMNS)]
    for row in lcurve.rows:
        lines.append(
            "  ".join(
                f"{int(row['step']):>12d}"
                if c == "step"
                else f"{row[c]:>12.6e}"
                for c in COLUMNS
            )
        )
    path.write_text("\n".join(lines) + "\n")


def read_lcurve(path: str | Path) -> LCurve:
    """Parse a file written by :func:`write_lcurve` (or DeePMD itself)."""
    path = Path(path)
    lcurve = LCurve()
    header: Sequence[str] | None = None
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            header = line.lstrip("#").split()
            continue
        if header is None:
            header = list(COLUMNS)
        values = line.split()
        row = {name: float(v) for name, v in zip(header, values)}
        lcurve.rows.append({c: row.get(c, float("nan")) for c in COLUMNS})
    return lcurve

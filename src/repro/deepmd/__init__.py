"""A DeePMD-kit-style deep-potential trainer (Deep Potential Smooth Edition).

Reproduces, at laptop scale, every mechanism of DeePMD-kit v2.1.4 that
the paper's hyperparameter search acts on:

* the **DeepPot-SE smooth descriptor** with its two radial cutoffs —
  the hard cutoff ``rcut`` and the smoothing onset ``rcut_smth``
  (§2.2.1): the searched genes that control the local-environment
  matrix;
* separate **embedding and fitting networks** whose activation
  functions are searched over {relu, relu6, softplus, sigmoid, tanh};
* energies as sums of per-atom contributions and **forces as exact
  negative gradients** of the predicted energy (via
  :mod:`repro.autodiff` double-backward, so the force loss trains);
* the **exponentially decaying learning rate** between ``start_lr`` and
  ``stop_lr`` with per-worker scaling {linear, sqrt, none};
* the **energy/force loss** with learning-rate-coupled prefactors
  (0.02, 1000, 1, 1 as in §2.1.2);
* the operational surface the EA drives: ``input.json`` templates
  filled with :class:`string.Template`, UUID-named run directories,
  the ``dp train`` command-line entry point, and the ``lcurve.out``
  training-statistics file whose last ``rmse_e_val`` / ``rmse_f_val``
  values become the two fitness objectives (§2.2.4).
"""

from repro.deepmd.descriptor import (
    DescriptorConfig,
    SmoothDescriptor,
    smooth_switch,
)
from repro.deepmd.model import DeepPotModel, ModelConfig
from repro.deepmd.data import DescriptorBatch, prepare_batches
from repro.deepmd.training import Trainer, TrainingConfig, TrainingResult
from repro.deepmd.lcurve import LCurve, read_lcurve, write_lcurve
from repro.deepmd.input_config import (
    InputConfig,
    default_input_template,
    render_input_json,
)
from repro.deepmd.runner import TrainingRun, run_training
from repro.deepmd.calculator import (
    DeepPotCalculator,
    force_rmse_along_trajectory,
)

__all__ = [
    "smooth_switch",
    "DescriptorConfig",
    "SmoothDescriptor",
    "ModelConfig",
    "DeepPotModel",
    "DescriptorBatch",
    "prepare_batches",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
    "LCurve",
    "read_lcurve",
    "write_lcurve",
    "InputConfig",
    "default_input_template",
    "render_input_json",
    "TrainingRun",
    "run_training",
    "DeepPotCalculator",
    "force_rmse_along_trajectory",
]

"""The training loop (the ``dp train`` equivalent).

Implements the training protocol the paper's fitness evaluation drives:
Adam under an exponential learning-rate decay from ``start_lr`` to
``stop_lr`` (scaled by the worker count per the searched scheme), the
energy/force loss with learning-rate-coupled prefactors, periodic
validation producing ``lcurve.out`` rows, a wall-clock timeout
(the paper's two-hour cap per training), and divergence detection
(non-finite losses) — the failure modes that the EA maps to ``MAXINT``
fitness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.autodiff import functional as F
from repro.autodiff.tensor import Tensor
from repro.deepmd.data import DescriptorBatch, prepare_batches
from repro.deepmd.lcurve import LCurve
from repro.deepmd.model import DeepPotModel
from repro.exceptions import TrainingDivergedError, TrainingTimeoutError
from repro.md.dataset import FrameDataset
from repro.nn.loss import EnergyForceLoss, PrefactorSchedule
from repro.nn.lr_schedule import ExponentialDecay
from repro.nn.optimizer import Adam
from repro.obs.trace import NullTracer, Tracer, get_tracer
from repro.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class TrainingConfig:
    """Run-time knobs of a single training (mirrors ``input.json``).

    ``numb_steps`` defaults far below the paper's 40 000 because the
    reproduction's model and dataset are scaled down accordingly; the
    schedule semantics are unchanged.
    """

    numb_steps: int = 200
    batch_size: int = 2
    disp_freq: int = 20
    start_lr: float = 1e-3
    stop_lr: float = 1e-5
    scale_by_worker: str = "none"
    n_workers: int = 6
    time_limit: Optional[float] = None  # seconds of wall clock
    prefactors: PrefactorSchedule = field(default_factory=PrefactorSchedule)
    seed: Optional[int] = None
    #: a training loss beyond this is treated as diverged — extreme
    #: learning rates oscillate at astronomical loss values without
    #: ever reaching IEEE infinity, and the EA must see those
    #: configurations fail (§2.2.4)
    divergence_threshold: float = 1e6


@dataclass
class TrainingResult:
    """Outcome of a completed training run."""

    rmse_e_val: float
    rmse_f_val: float
    lcurve: LCurve
    wall_time: float
    steps_completed: int

    @property
    def fitness(self) -> np.ndarray:
        """The two-element minimization fitness the EA consumes."""
        return np.array([self.rmse_e_val, self.rmse_f_val])


class Trainer:
    """Trains a :class:`DeepPotModel` on a :class:`FrameDataset`."""

    def __init__(
        self,
        model: DeepPotModel,
        dataset: FrameDataset,
        config: TrainingConfig,
        rng: RngLike = None,
        tracer: Optional[NullTracer | Tracer] = None,
    ) -> None:
        self.model = model
        self.dataset = dataset
        self.config = config
        self.tracer = tracer if tracer is not None else get_tracer()
        self.rng = ensure_rng(
            config.seed if rng is None and config.seed is not None else rng
        )
        rcut = model.config.descriptor.rcut
        with self.tracer.span(
            "train.data_load", n_train=len(dataset.train)
        ):
            self.train_batches = prepare_batches(
                dataset.train, rcut, batch_size=config.batch_size
            )
            val_frames = dataset.validation or dataset.train
            self.val_batches = prepare_batches(
                val_frames, rcut, batch_size=max(config.batch_size, 4)
            )
        # fit the constant per-atom energy bias from the training split
        stats = dataset.energy_statistics()
        model.energy_bias_per_atom = stats["per_atom_mean"]
        self.schedule = ExponentialDecay(
            start_lr=config.start_lr,
            stop_lr=config.stop_lr,
            total_steps=config.numb_steps,
            n_workers=config.n_workers,
            scale_by_worker=config.scale_by_worker,
        )
        self.loss_fn = EnergyForceLoss(
            self.schedule, config.prefactors, n_atoms=dataset.n_atoms
        )
        self.optimizer = Adam(model.parameters, lr=self.schedule(0))
        self.lcurve = LCurve()

    # ------------------------------------------------------------------
    def _evaluate(
        self, batches: Sequence[DescriptorBatch]
    ) -> tuple[float, float]:
        """Energy (eV/atom) and force (eV/Å) RMSE over ``batches``."""
        se = 0.0
        sf = 0.0
        n_frames = 0
        n_force = 0
        n_atoms = self.dataset.n_atoms
        for batch in batches:
            e_pred, f_pred = self.model.energy_and_forces(
                batch, create_graph=False
            )
            de = (e_pred.data - batch.energies) / n_atoms
            se += float(np.sum(de * de))
            df = f_pred.data - batch.forces
            sf += float(np.sum(df * df))
            n_frames += batch.n_frames
            n_force += df.size
        return float(np.sqrt(se / n_frames)), float(np.sqrt(sf / n_force))

    def evaluate_validation(self) -> tuple[float, float]:
        """``(rmse_e_val, rmse_f_val)`` on the validation split."""
        with self.tracer.span(
            "train.validation", n_batches=len(self.val_batches)
        ):
            return self._evaluate(self.val_batches)

    # ------------------------------------------------------------------
    # checkpointing: Summit jobs are preemptible and capped, so a
    # training must be resumable mid-run
    # ------------------------------------------------------------------
    def save_checkpoint(self, path, step: int) -> None:
        """Persist model + optimizer + progress to ``path`` (.npz)."""
        import numpy as _np

        payload: dict = {"step": _np.array(step)}
        for key, value in self.model.state_dict().items():
            payload[f"model_{key}"] = value
        opt = self.optimizer.state_dict()
        payload["opt_t"] = _np.array(opt["t"])
        payload["opt_lr"] = _np.array(opt["lr"])
        for i, m in enumerate(opt["m"]):
            payload[f"opt_m_{i}"] = m
        for i, v in enumerate(opt["v"]):
            payload[f"opt_v_{i}"] = v
        _np.savez(path, **payload)

    def load_checkpoint(self, path) -> int:
        """Restore from :meth:`save_checkpoint`; returns the next step."""
        import numpy as _np

        data = dict(_np.load(path))
        model_state = {
            key[len("model_") :]: value
            for key, value in data.items()
            if key.startswith("model_")
        }
        self.model.load_state_dict(model_state)
        n_params = len(self.optimizer.parameters)
        self.optimizer.load_state_dict(
            {
                "t": int(data["opt_t"]),
                "lr": float(data["opt_lr"]),
                "m": [data[f"opt_m_{i}"] for i in range(n_params)],
                "v": [data[f"opt_v_{i}"] for i in range(n_params)],
            }
        )
        return int(data["step"]) + 1

    def train(
        self,
        resume_from=None,
        checkpoint_path=None,
        checkpoint_freq: Optional[int] = None,
        stop_after: Optional[int] = None,
    ) -> TrainingResult:
        """Run the configured number of steps and return final losses.

        The whole loop runs inside a ``train.loop`` span (timeout /
        divergence exits mark the span ``err``), with the per-call
        ``train.validation`` spans nested under it.

        Parameters
        ----------
        resume_from:
            Path to a checkpoint written by a previous (e.g. timed-out)
            run; training continues from the stored step.
        checkpoint_path / checkpoint_freq:
            Write a checkpoint every ``checkpoint_freq`` steps, and on
            timeout, so the run can be resumed.
        stop_after:
            Execute at most this many steps in *this* invocation and
            checkpoint — training within a walltime slice; the LR and
            prefactor schedules still span the full ``numb_steps``.

        Raises
        ------
        TrainingTimeoutError
            When ``config.time_limit`` elapses before the steps finish
            (a checkpoint is written first when a path is configured).
        TrainingDivergedError
            When the training loss becomes non-finite or explodes.
        """
        with self.tracer.span(
            "train.loop", steps=self.config.numb_steps
        ) as span:
            result = self._train_steps(
                resume_from, checkpoint_path, checkpoint_freq, stop_after
            )
            span.tag(
                steps_completed=result.steps_completed,
                rmse_f_val=result.rmse_f_val,
            )
            return result

    def _train_steps(
        self,
        resume_from=None,
        checkpoint_path=None,
        checkpoint_freq: Optional[int] = None,
        stop_after: Optional[int] = None,
    ) -> TrainingResult:
        cfg = self.config
        start_time = time.monotonic()
        first_step = 0
        if resume_from is not None:
            first_step = self.load_checkpoint(resume_from)
        step = first_step
        for step in range(first_step, cfg.numb_steps):
            if stop_after is not None and step - first_step >= stop_after:
                if checkpoint_path is not None:
                    self.save_checkpoint(checkpoint_path, step - 1)
                break
            if cfg.time_limit is not None:
                elapsed = time.monotonic() - start_time
                if elapsed > cfg.time_limit:
                    if checkpoint_path is not None:
                        self.save_checkpoint(checkpoint_path, step - 1)
                    raise TrainingTimeoutError(elapsed, cfg.time_limit)
            if (
                checkpoint_path is not None
                and checkpoint_freq
                and step > first_step
                and (step - first_step) % checkpoint_freq == 0
            ):
                self.save_checkpoint(checkpoint_path, step - 1)
            batch = self.train_batches[
                int(self.rng.integers(len(self.train_batches)))
            ]
            e_pred, f_pred = self.model.energy_and_forces(
                batch, create_graph=True
            )
            loss = self.loss_fn(
                step,
                e_pred,
                Tensor(batch.energies),
                f_pred,
                Tensor(batch.forces),
            )
            loss_value = float(loss.data)
            if not np.isfinite(loss_value) or (
                loss_value > cfg.divergence_threshold
            ):
                raise TrainingDivergedError(
                    f"loss {loss_value:.3g} at step {step} "
                    f"(threshold {cfg.divergence_threshold:g})"
                )
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.lr = self.schedule(step)
            self.optimizer.step()
            if (step + 1) % cfg.disp_freq == 0 or step == 0:
                rmse_e_val, rmse_f_val = self.evaluate_validation()
                rmse_e_trn, rmse_f_trn = self._evaluate(
                    self.train_batches[:2]
                )
                if not (
                    np.isfinite(rmse_e_val) and np.isfinite(rmse_f_val)
                ):
                    raise TrainingDivergedError(
                        f"non-finite validation loss at step {step}"
                    )
                self.lcurve.append(
                    step + 1,
                    rmse_e_val,
                    rmse_e_trn,
                    rmse_f_val,
                    rmse_f_trn,
                    self.schedule(step),
                )
        if not self.lcurve.rows:
            rmse_e_val, rmse_f_val = self.evaluate_validation()
            rmse_e_trn, rmse_f_trn = self._evaluate(self.train_batches[:2])
            self.lcurve.append(
                cfg.numb_steps,
                rmse_e_val,
                rmse_e_trn,
                rmse_f_val,
                rmse_f_trn,
                self.schedule(max(cfg.numb_steps - 1, 0)),
            )
        rmse_e_val, rmse_f_val = self.lcurve.final_losses()
        return TrainingResult(
            rmse_e_val=rmse_e_val,
            rmse_f_val=rmse_f_val,
            lcurve=self.lcurve,
            wall_time=time.monotonic() - start_time,
            steps_completed=step + 1 if cfg.numb_steps else 0,
        )

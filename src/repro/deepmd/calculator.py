"""Deploying a trained potential back into molecular dynamics.

DeePMD-kit's raison d'être is not the training run but the deployment:
the trained network replaces the first-principles force evaluation
inside an MD engine at a ~10000× speedup (§1).  This module closes
that loop for the reproduction: :class:`DeepPotCalculator` adapts a
trained :class:`~repro.deepmd.model.DeepPotModel` to the
:class:`~repro.md.potentials.PairPotential` interface, so the same
integrators that generated the training data can run on the *learned*
surface — enabling the end-to-end validation the paper's §3.2 argues
for (force errors compound along a trajectory, so deployment quality,
not just validation RMSE, is the real target).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.deepmd.data import DescriptorBatch
from repro.deepmd.model import DeepPotModel
from repro.md.cell import PeriodicCell
from repro.md.neighbors import NeighborList
from repro.md.potentials import PairPotential


class DeepPotCalculator(PairPotential):
    """A trained deep potential as an MD-ready force field.

    Satisfies the :class:`PairPotential` calling convention
    (``energy_and_forces(positions, species, cell)``) so it is a
    drop-in replacement for the reference BMH+Coulomb potential in
    :class:`~repro.md.integrator.VelocityVerlet`,
    :class:`~repro.md.integrator.LangevinIntegrator`, and
    :class:`~repro.md.simulation.MDSimulation`.

    Parameters
    ----------
    model:
        The trained model; its descriptor config fixes the cutoff.
    max_neighbors:
        Fixed neighbor-table width.  ``None`` re-derives it per call
        (slower but always sufficient); a fixed value keeps array
        shapes stable across MD steps.
    """

    def __init__(
        self, model: DeepPotModel, max_neighbors: Optional[int] = None
    ) -> None:
        self.model = model
        self.cutoff = model.config.descriptor.rcut
        self.max_neighbors = max_neighbors

    def pair_energy_and_scalar_force(self, r, si, sj):  # pragma: no cover
        raise NotImplementedError(
            "a deep potential is not pairwise-decomposable; use "
            "energy_and_forces"
        )

    def energy_and_forces(
        self,
        positions: np.ndarray,
        species: np.ndarray,
        cell: PeriodicCell,
    ) -> tuple[float, np.ndarray]:
        """Predict total energy (eV) and per-atom forces (eV/Å)."""
        nl = NeighborList.build(
            positions, cell, self.cutoff, max_neighbors=self.max_neighbors
        )
        batch = DescriptorBatch(
            displacements=nl.displacements[None],
            neighbor_indices=nl.indices[None],
            mask=nl.mask[None],
            species=np.asarray(species),
            energies=np.zeros(1),
            forces=np.zeros((1, len(positions), 3)),
        )
        energy, forces = self.model.energy_and_forces(batch)
        return float(energy.data[0]), forces.data[0]


def force_rmse_along_trajectory(
    calculator: DeepPotCalculator,
    frames,
) -> np.ndarray:
    """Per-frame force RMSE of the learned potential vs reference labels.

    The §3.2 deployment criterion in number form: how far the learned
    forces drift from the reference across a trajectory.
    """
    out = []
    for frame in frames:
        _, f_pred = calculator.energy_and_forces(
            frame.positions, frame.species, frame.cell
        )
        out.append(float(np.sqrt(np.mean((f_pred - frame.forces) ** 2))))
    return np.asarray(out)

"""Training-run orchestration: UUID directories and the ``dp`` runner.

Reproduces §2.2.4 steps 2–4: every evaluation gets a sub-directory
named after the individual's UUID, an ``input.json`` rendered from the
template, a (sub)process-style invocation of the training executable,
and fitness extraction from the last ``rmse_e_val`` / ``rmse_f_val``
values of ``lcurve.out``.

Two execution modes are provided:

``mode="inprocess"``
    Runs the trainer in the current interpreter (fast; used by tests
    and by distributed workers, which already provide isolation).
``mode="subprocess"``
    Invokes ``python -m repro.deepmd.cli train input.json`` exactly as
    the paper invoked ``dp train`` through ``subprocess`` with a
    timeout, exercising the full file-based interface.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
import uuid as uuid_module
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.deepmd.input_config import (
    InputConfig,
    default_input_template,
    render_input_json,
)
from repro.deepmd.lcurve import read_lcurve
from repro.deepmd.model import DeepPotModel
from repro.deepmd.training import Trainer, TrainingResult
from repro.exceptions import (
    EvaluationError,
    TrainingTimeoutError,
)
from repro.md.dataset import FrameDataset


@dataclass
class TrainingRun:
    """Record of one orchestrated training."""

    uuid: str
    workdir: Path
    rmse_e_val: float
    rmse_f_val: float
    wall_time: float


def prepare_run_directory(
    base_dir: str | Path,
    variables: Mapping[str, Any],
    template: Optional[str] = None,
    run_uuid: Optional[str] = None,
) -> Path:
    """Create the UUID-named run directory with its ``input.json``."""
    run_uuid = run_uuid or str(uuid_module.uuid4())
    workdir = Path(base_dir) / run_uuid
    workdir.mkdir(parents=True, exist_ok=True)
    text = render_input_json(template or default_input_template(), variables)
    (workdir / "input.json").write_text(text)
    return workdir


def execute_training(
    workdir: str | Path,
    dataset: Optional[FrameDataset] = None,
    time_limit: Optional[float] = None,
    mode: str = "inprocess",
) -> TrainingResult:
    """Run the training described by ``workdir/input.json``.

    In ``subprocess`` mode a :class:`TrainingTimeoutError` is raised if
    the child exceeds ``time_limit`` (mirroring the paper's
    ``subprocess`` call raising ``TimeoutError`` after two hours), and
    an :class:`EvaluationError` on a non-zero exit status.
    """
    workdir = Path(workdir)
    config = InputConfig.from_file(workdir / "input.json")
    if mode == "inprocess":
        if dataset is None:
            if not config.data_dir:
                raise EvaluationError("input.json names no data directory")
            dataset = FrameDataset.load(config.data_dir)
        model = DeepPotModel(config.model_config(), rng=config.seed)
        trainer = Trainer(
            model,
            dataset,
            config.training_config(time_limit=time_limit),
            rng=config.seed,
        )
        result = trainer.train()
        from repro.deepmd.lcurve import write_lcurve

        write_lcurve(result.lcurve, workdir / "lcurve.out")
        import numpy as np

        np.savez(workdir / "model.npz", **model.state_dict())
        return result
    if mode == "subprocess":
        start = time.monotonic()
        cmd = [
            sys.executable,
            "-m",
            "repro.deepmd.cli",
            "train",
            "input.json",
        ]
        try:
            proc = subprocess.run(
                cmd,
                cwd=workdir,
                capture_output=True,
                text=True,
                timeout=time_limit,
            )
        except subprocess.TimeoutExpired as exc:
            raise TrainingTimeoutError(
                time.monotonic() - start, time_limit or 0.0
            ) from exc
        if proc.returncode != 0:
            raise EvaluationError(
                f"dp train failed (exit {proc.returncode}):\n{proc.stderr}"
            )
        lcurve = read_lcurve(workdir / "lcurve.out")
        rmse_e, rmse_f = lcurve.final_losses()
        return TrainingResult(
            rmse_e_val=rmse_e,
            rmse_f_val=rmse_f,
            lcurve=lcurve,
            wall_time=time.monotonic() - start,
            steps_completed=config.numb_steps,
        )
    raise ValueError(f"unknown execution mode {mode!r}")


def run_training(
    base_dir: str | Path,
    variables: Mapping[str, Any],
    dataset: Optional[FrameDataset] = None,
    template: Optional[str] = None,
    time_limit: Optional[float] = None,
    mode: str = "inprocess",
    run_uuid: Optional[str] = None,
) -> TrainingRun:
    """End-to-end §2.2.4 workflow for one individual.

    Creates the run directory, renders ``input.json``, executes the
    training, and reads the final validation losses from the learning
    curve.  Exceptions propagate so the caller (the EA's robust
    individual) can assign ``MAXINT`` fitness.
    """
    run_uuid = run_uuid or str(uuid_module.uuid4())
    workdir = prepare_run_directory(
        base_dir, variables, template=template, run_uuid=run_uuid
    )
    result = execute_training(
        workdir, dataset=dataset, time_limit=time_limit, mode=mode
    )
    return TrainingRun(
        uuid=run_uuid,
        workdir=workdir,
        rmse_e_val=result.rmse_e_val,
        rmse_f_val=result.rmse_f_val,
        wall_time=result.wall_time,
    )

"""Descriptor-ready batches built from frame datasets.

Neighbor lists depend on the descriptor's ``rcut`` — itself a searched
hyperparameter — so batch preparation happens per training run.  All
frames in a batch are padded to a common neighbor width and stacked so
the whole forward/backward pass is vectorized across the batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.md.cell import PeriodicCell
from repro.md.dataset import Frame
from repro.md.neighbors import NeighborList


@dataclass
class DescriptorBatch:
    """Stacked, padded descriptor inputs for a set of frames.

    Attributes
    ----------
    displacements:
        ``(n_frames, n_atoms, max_nbr, 3)`` displacement vectors.
    neighbor_indices:
        ``(n_frames, n_atoms, max_nbr)`` central-cell neighbor indices.
    mask:
        ``(n_frames, n_atoms, max_nbr)`` validity mask.
    species:
        ``(n_atoms,)`` species indices (identical across frames).
    energies / forces:
        Reference labels, ``(n_frames,)`` and ``(n_frames, n_atoms, 3)``.
    """

    displacements: np.ndarray
    neighbor_indices: np.ndarray
    mask: np.ndarray
    species: np.ndarray
    energies: np.ndarray
    forces: np.ndarray

    @property
    def n_frames(self) -> int:
        return self.displacements.shape[0]

    @property
    def n_atoms(self) -> int:
        return self.displacements.shape[1]

    @property
    def max_neighbors(self) -> int:
        return self.displacements.shape[2]


def _frame_neighbor_width(frame: Frame, rcut: float) -> int:
    nl = NeighborList.build(frame.positions, frame.cell, rcut)
    return int(nl.neighbor_counts().max())


def prepare_batches(
    frames: Sequence[Frame],
    rcut: float,
    batch_size: int = 4,
) -> list[DescriptorBatch]:
    """Split ``frames`` into stacked batches with a common pad width.

    The pad width is the maximum neighbor count over the whole frame
    set so every batch has identical shapes (important for the simple
    optimizer state handling and for fair step-time measurements).
    """
    if not frames:
        raise ValueError("need at least one frame")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    lists = [
        NeighborList.build(f.positions, f.cell, rcut) for f in frames
    ]
    width = max(max(int(nl.neighbor_counts().max()), 1) for nl in lists)
    rebuilt = [
        NeighborList.build(f.positions, f.cell, rcut, max_neighbors=width)
        for f in frames
    ]
    batches: list[DescriptorBatch] = []
    for start in range(0, len(frames), batch_size):
        chunk = slice(start, start + batch_size)
        fs = frames[chunk]
        nls = rebuilt[chunk]
        batches.append(
            DescriptorBatch(
                displacements=np.stack([nl.displacements for nl in nls]),
                neighbor_indices=np.stack([nl.indices for nl in nls]),
                mask=np.stack([nl.mask for nl in nls]),
                species=fs[0].species.copy(),
                energies=np.array([f.energy for f in fs]),
                forces=np.stack([f.forces for f in fs]),
            )
        )
    return batches

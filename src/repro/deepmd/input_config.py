"""``input.json`` configuration and template rendering.

§2.2.4 step 3: "A file containing JSON-formatted input template was
read in.  Using the Python Standard Library ``string.Template``
mechanism, variable substitution was performed with that JSON-formatted
template using the decoded gene values from the individual.  The
updated ``input.json`` file was written to the UUID-named run
directory."  This module reproduces that mechanism exactly, including
the schema layout of DeePMD-kit's training input.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from string import Template
from typing import Any, Mapping

from repro.deepmd.descriptor import DescriptorConfig
from repro.deepmd.model import ModelConfig
from repro.deepmd.training import TrainingConfig
from repro.exceptions import ConfigurationError
from repro.nn.loss import PrefactorSchedule

#: The template the EA fills in — the ``$``-prefixed fields are the
#: seven decoded genes (§2.2.1) plus run-time bookkeeping.
DEFAULT_INPUT_TEMPLATE = """\
{
  "model": {
    "type_map": ["Al", "K", "Cl"],
    "descriptor": {
      "type": "se_e2_a",
      "rcut": $rcut,
      "rcut_smth": $rcut_smth,
      "neuron": $embedding_widths,
      "axis_neuron": $axis_neurons,
      "activation_function": "$desc_activ_func"
    },
    "fitting_net": {
      "neuron": $fitting_widths,
      "activation_function": "$fitting_activ_func"
    }
  },
  "learning_rate": {
    "type": "exp",
    "start_lr": $start_lr,
    "stop_lr": $stop_lr,
    "scale_by_worker": "$scale_by_worker"
  },
  "loss": {
    "start_pref_e": 0.02,
    "limit_pref_e": 1,
    "start_pref_f": 1000,
    "limit_pref_f": 1
  },
  "training": {
    "numb_steps": $numb_steps,
    "batch_size": $batch_size,
    "disp_freq": $disp_freq,
    "seed": $seed,
    "systems": ["$data_dir"]
  }
}
"""


def default_input_template() -> str:
    """The built-in JSON-formatted input template."""
    return DEFAULT_INPUT_TEMPLATE


def render_input_json(
    template: str, variables: Mapping[str, Any]
) -> str:
    """Substitute ``$``-variables into ``template`` and validate JSON.

    Lists/tuples are rendered as JSON arrays; other values via ``str``.
    Raises :class:`ConfigurationError` when substitution leaves the
    template un-parseable or a variable is missing.
    """
    rendered_vars = {
        k: json.dumps(list(v)) if isinstance(v, (list, tuple)) else str(v)
        for k, v in variables.items()
    }
    try:
        text = Template(template).substitute(rendered_vars)
    except KeyError as exc:
        raise ConfigurationError(
            f"input template references undefined variable {exc}"
        ) from exc
    try:
        json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"rendered input.json is not valid JSON: {exc}"
        ) from exc
    return text


@dataclass
class InputConfig:
    """Parsed ``input.json`` — the full run configuration.

    Bridges the JSON schema to the in-process :class:`ModelConfig` and
    :class:`TrainingConfig` objects.
    """

    rcut: float = 6.0
    rcut_smth: float = 0.5
    embedding_widths: tuple[int, ...] = (8, 16)
    axis_neurons: int = 4
    fitting_widths: tuple[int, ...] = (24, 24)
    desc_activ_func: str = "tanh"
    fitting_activ_func: str = "tanh"
    start_lr: float = 1e-3
    stop_lr: float = 1e-5
    scale_by_worker: str = "none"
    start_pref_e: float = 0.02
    limit_pref_e: float = 1.0
    start_pref_f: float = 1000.0
    limit_pref_f: float = 1.0
    numb_steps: int = 200
    batch_size: int = 2
    disp_freq: int = 20
    seed: int = 0
    data_dir: str = ""
    n_species: int = 3

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "InputConfig":
        try:
            model = doc["model"]
            desc = model["descriptor"]
            fit = model["fitting_net"]
            lr = doc["learning_rate"]
            loss = doc["loss"]
            training = doc["training"]
        except KeyError as exc:
            raise ConfigurationError(
                f"input.json missing required section {exc}"
            ) from exc
        systems = training.get("systems", [""])
        return cls(
            rcut=float(desc["rcut"]),
            rcut_smth=float(desc["rcut_smth"]),
            embedding_widths=tuple(int(w) for w in desc["neuron"]),
            axis_neurons=int(desc.get("axis_neuron", 4)),
            fitting_widths=tuple(int(w) for w in fit["neuron"]),
            desc_activ_func=str(desc["activation_function"]),
            fitting_activ_func=str(fit["activation_function"]),
            start_lr=float(lr["start_lr"]),
            stop_lr=float(lr["stop_lr"]),
            scale_by_worker=str(lr.get("scale_by_worker", "linear")),
            start_pref_e=float(loss.get("start_pref_e", 0.02)),
            limit_pref_e=float(loss.get("limit_pref_e", 1.0)),
            start_pref_f=float(loss.get("start_pref_f", 1000.0)),
            limit_pref_f=float(loss.get("limit_pref_f", 1.0)),
            numb_steps=int(training["numb_steps"]),
            batch_size=int(training.get("batch_size", 2)),
            disp_freq=int(training.get("disp_freq", 20)),
            seed=int(training.get("seed", 0)),
            data_dir=str(systems[0]) if systems else "",
            n_species=len(model.get("type_map", ["Al", "K", "Cl"])),
        )

    @classmethod
    def from_json(cls, text: str) -> "InputConfig":
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid input.json: {exc}") from exc

    @classmethod
    def from_file(cls, path: str | Path) -> "InputConfig":
        return cls.from_json(Path(path).read_text())

    def model_config(self) -> ModelConfig:
        return ModelConfig(
            descriptor=DescriptorConfig(
                rcut=self.rcut, rcut_smth=self.rcut_smth
            ),
            n_species=self.n_species,
            embedding_widths=self.embedding_widths,
            axis_neurons=self.axis_neurons,
            fitting_widths=self.fitting_widths,
            desc_activation=self.desc_activ_func,
            fitting_activation=self.fitting_activ_func,
        )

    def training_config(
        self, time_limit: float | None = None, n_workers: int = 6
    ) -> TrainingConfig:
        return TrainingConfig(
            numb_steps=self.numb_steps,
            batch_size=self.batch_size,
            disp_freq=self.disp_freq,
            start_lr=self.start_lr,
            stop_lr=self.stop_lr,
            scale_by_worker=self.scale_by_worker,
            n_workers=n_workers,
            time_limit=time_limit,
            prefactors=PrefactorSchedule(
                pe_start=self.start_pref_e,
                pf_start=self.start_pref_f,
                pe_limit=self.limit_pref_e,
                pf_limit=self.limit_pref_f,
            ),
            seed=self.seed,
        )

"""Multi-run EA campaigns and their aggregation (§3).

The paper ran five *independent* EA deployments and analyzed them
jointly: Fig. 1 pools losses per generation over all runs, and Fig. 2 /
Tables 2–3 are computed from "the aggregated last generations of all
runs".  :class:`Campaign` reproduces that protocol with per-run seeds
derived from a single campaign seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.evo.algorithm import GenerationRecord
from repro.evo.individual import Individual
from repro.evo.problem import Problem
from repro.hpo.driver import (
    NSGA2Settings,
    run_deepmd_nsga2,
    run_deepmd_pso,
    run_deepmd_steady_state,
    run_deepmd_surrogate,
)
from repro.mo.pareto import pareto_front
from repro.obs.live import get_status
from repro.obs.trace import NullTracer, Tracer, get_tracer
from repro.rng import seeds_for_runs


#: deployment schemes a campaign run can use — the optimizer zoo
CAMPAIGN_MODES = ("generational", "steady-state", "pso", "surrogate")


@dataclass
class CampaignConfig:
    """Paper scale: 5 runs × (1 + 6) generations × 100 individuals.

    ``mode`` selects the deployment scheme per run: ``"generational"``
    (the paper's barrier-synchronized NSGA-II), ``"steady-state"``
    (the §2.2.5 breed-on-completion variant, same training budget,
    rendered as pseudo-generations for the §3 analysis stack),
    ``"pso"`` (the Natarajan & Caro multi-objective particle swarm),
    or ``"surrogate"`` (RBF-surrogate-assisted acquisition).

    ``objectives`` names the fitness dimensions, canonicalized by
    :func:`repro.hpo.objectives.parse_objectives` — the base
    ``("energy", "force")`` pair, optionally extended with
    ``"runtime"`` to make predicted training cost a third minimized
    objective.  ``hv_stop_eps``/``hv_stop_patience`` arm the N-D
    hypervolume early stop on every run.
    """

    n_runs: int = 5
    pop_size: int = 100
    generations: int = 6
    anneal_factor: float = 0.85
    sort_algorithm: str = "rank_ordinal"
    base_seed: int = 2023
    mode: str = "generational"
    objectives: Any = None
    hv_stop_eps: Optional[float] = None
    hv_stop_patience: int = 2
    #: batch data plane / pipelined generations (generational mode
    #: only; both bit-identical to the scalar path)
    batch_evals: bool = False
    pipeline: bool = False
    batch_chunk: Optional[int] = None

    def __post_init__(self) -> None:
        self.mode = str(self.mode).replace("_", "-")
        if self.mode not in CAMPAIGN_MODES:
            raise ValueError(
                f"mode must be one of {', '.join(CAMPAIGN_MODES)}, "
                f"got {self.mode!r}"
            )
        from repro.hpo.objectives import parse_objectives

        self.objectives = parse_objectives(self.objectives)

    def nsga2_settings(self) -> NSGA2Settings:
        return NSGA2Settings(
            pop_size=self.pop_size,
            generations=self.generations,
            anneal_factor=self.anneal_factor,
            sort_algorithm=self.sort_algorithm,
            batch_evals=self.batch_evals,
            pipeline=self.pipeline,
            batch_chunk=self.batch_chunk,
            hv_stop_eps=self.hv_stop_eps,
            hv_stop_patience=self.hv_stop_patience,
        )


@dataclass
class CampaignResult:
    """All records of all runs, plus the aggregate §3 views."""

    config: CampaignConfig
    runs: list[list[GenerationRecord]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def n_trainings(self) -> int:
        """Total models trained (the paper: 3500 over 7 generations)."""
        return sum(
            len(rec.evaluated) for run in self.runs for rec in run
        )

    def generation_evaluated(self, generation: int) -> list[Individual]:
        """Every individual evaluated at ``generation``, pooled over
        runs (the Fig. 1 populations)."""
        out: list[Individual] = []
        for run in self.runs:
            if generation < len(run):
                out.extend(run[generation].evaluated)
        return out

    def last_generation_individuals(self) -> list[Individual]:
        """The combined last-generation parent pools of all runs —
        the paper's "final solution dataset" behind Fig. 2/3 and
        Tables 2/3."""
        out: list[Individual] = []
        for run in self.runs:
            out.extend(run[-1].population)
        return out

    def aggregate_pareto_front(self) -> list[Individual]:
        """Fig. 2: the Pareto frontier of the aggregated last
        generations."""
        return pareto_front(self.last_generation_individuals())

    def failures_by_generation(self) -> list[int]:
        """Failed trainings per generation, pooled over runs (§3.2
        reports 25 early failures and none in the last generation)."""
        n_gens = max(len(run) for run in self.runs)
        counts = [0] * n_gens
        for run in self.runs:
            for g, rec in enumerate(run):
                counts[g] += rec.n_failures
        return counts

    def runtimes_last_generation(self) -> np.ndarray:
        """Runtime (minutes) of each final-generation solution."""
        return np.array(
            [
                ind.metadata.get("runtime_minutes", np.nan)
                for ind in self.last_generation_individuals()
            ]
        )


class Campaign:
    """Runs ``n_runs`` independent NSGA-II deployments.

    ``problem_factory`` builds a fresh problem per run (or reuse one by
    passing ``lambda seed: shared_problem``); per-run RNG seeds are
    derived from the campaign seed, making the whole campaign
    reproducible.

    ``tracer`` (default: the process-wide tracer) frames every run in
    a ``campaign.run`` span, which in turn parents the per-generation
    ``ea.generation`` spans — the top of the trace hierarchy a
    ``repro-hpo trace`` report breaks the wall-clock down by.

    ``journal`` (a :class:`repro.store.journal.CampaignJournal`,
    duck-typed to avoid a hard dependency) receives the write-ahead
    stream of campaign/run/generation records as the campaign runs, so
    a killed campaign can be continued with
    :func:`repro.store.resume.resume_campaign`.
    """

    def __init__(
        self,
        problem_factory: Callable[[int], Problem],
        config: Optional[CampaignConfig] = None,
        client: Any = None,
        tracer: Optional[NullTracer | Tracer] = None,
        journal: Any = None,
    ) -> None:
        self.problem_factory = problem_factory
        self.config = config or CampaignConfig()
        self.client = client
        self.tracer = tracer if tracer is not None else get_tracer()
        self.journal = journal

    def run(
        self,
        callback: Optional[Callable[[int, GenerationRecord], None]] = None,
    ) -> CampaignResult:
        result = CampaignResult(config=self.config)
        seeds = seeds_for_runs(self.config.base_seed, self.config.n_runs)
        self.tracer.event(
            "campaign.start",
            n_runs=self.config.n_runs,
            pop_size=self.config.pop_size,
            generations=self.config.generations,
            seed=self.config.base_seed,
        )
        status = get_status()
        if status.enabled:
            status.update(
                mode=self.config.mode,
                n_runs=self.config.n_runs,
                pop_size=self.config.pop_size,
                generations=self.config.generations,
                base_seed=self.config.base_seed,
            )
        if self.journal is not None:
            self.journal.begin_campaign(self.config)
        for run_index, seed in enumerate(seeds):
            problem = self.problem_factory(seed)
            cb = (
                (lambda rec, ri=run_index: callback(ri, rec))
                if callback is not None
                else None
            )
            if self.journal is not None:
                self.journal.begin_run(run_index, int(seed))
            if status.enabled:
                status.begin_run(run_index, seed=int(seed))
            with self.tracer.span(
                "campaign.run",
                run=run_index,
                seed=int(seed),
                mode=self.config.mode,
            ):
                if self.config.mode == "steady-state":
                    records = run_deepmd_steady_state(
                        problem=problem,
                        settings=self.config.nsga2_settings(),
                        client=self.client,
                        rng=seed,
                        callback=cb,
                        tracer=self.tracer,
                        journal=self.journal,
                    )
                elif self.config.mode == "pso":
                    records = run_deepmd_pso(
                        problem=problem,
                        settings=self.config.nsga2_settings(),
                        client=self.client,
                        rng=seed,
                        callback=cb,
                        tracer=self.tracer,
                        journal=self.journal,
                    )
                elif self.config.mode == "surrogate":
                    records = run_deepmd_surrogate(
                        problem=problem,
                        settings=self.config.nsga2_settings(),
                        client=self.client,
                        rng=seed,
                        callback=cb,
                        tracer=self.tracer,
                        journal=self.journal,
                    )
                else:
                    records = run_deepmd_nsga2(
                        problem=problem,
                        settings=self.config.nsga2_settings(),
                        client=self.client,
                        rng=seed,
                        callback=cb,
                        tracer=self.tracer,
                        journal=self.journal,
                    )
            result.runs.append(records)
            if self.journal is not None:
                self.journal.end_run(run_index)
        if self.journal is not None:
            self.journal.end_campaign()
        return result

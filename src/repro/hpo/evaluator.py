"""The §2.2.4 fitness-evaluation workflow against the real trainer.

For one individual:

1. decode the seven-gene genome (floor-mod for the categoricals);
2. create a sub-directory named after the individual's UUID;
3. render ``input.json`` from the JSON template via
   ``string.Template`` with the decoded gene values;
4. invoke the ``dp``-style trainer (in-process or as a subprocess with
   a timeout) and read the final ``rmse_e_val`` / ``rmse_f_val`` from
   ``lcurve.out`` as the two-element fitness.

Any exception — timeout, divergence, invalid configuration — escapes
to :class:`repro.evo.individual.RobustIndividual`, which assigns
``MAXINT`` fitness.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro.deepmd.runner import run_training
from repro.engine.invoke import failure_fitness
from repro.evo.problem import WithMetadataProblem
from repro.md.dataset import FrameDataset


@dataclass
class EvaluatorSettings:
    """Scaled-down training envelope for real evaluations.

    The paper fixes the network shapes and the step count (40 000); the
    defaults here shrink all three so one evaluation takes seconds.
    The searched hyperparameters are taken from the phenome, never from
    here.
    """

    numb_steps: int = 150
    batch_size: int = 2
    disp_freq: int = 50
    embedding_widths: tuple[int, ...] = (6, 12)
    axis_neurons: int = 3
    fitting_widths: tuple[int, ...] = (16, 16)
    n_workers: int = 6
    time_limit: Optional[float] = 120.0  # seconds (the paper: 2 hours)
    seed: int = 0
    mode: str = "inprocess"


class DeepMDProblem(WithMetadataProblem):
    """Two-objective minimization of (energy RMSE, force RMSE).

    Parameters
    ----------
    dataset:
        Training/validation frames (shared across all evaluations, as
        the paper shares its FPMD dataset).
    base_dir:
        Where UUID-named run directories are created; a temporary
        directory by default.
    settings:
        The fixed (non-searched) training envelope.
    cache:
        Optional :class:`repro.store.cache.EvaluationCache`; when set,
        evaluations are looked up before :func:`run_training` and
        inserted after, keyed by (phenome, dataset content hash,
        settings) — see :meth:`cache_fingerprint`.
    """

    n_objectives = 2

    def __init__(
        self,
        dataset: FrameDataset,
        base_dir: Optional[str | Path] = None,
        settings: Optional[EvaluatorSettings] = None,
        cache: Any = None,
    ) -> None:
        self.dataset = dataset
        self.settings = settings or EvaluatorSettings()
        self.cache = cache
        self._dataset_id: Optional[str] = None
        if base_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-hpo-")
            self.base_dir = Path(self._tmp.name)
        else:
            self.base_dir = Path(base_dir)
            self.base_dir.mkdir(parents=True, exist_ok=True)

    def cache_fingerprint(self) -> dict[str, Any]:
        """What, besides the phenome, determines an evaluation result.

        Any change here — different frames, a different step count or
        time limit, different fixed network shapes — yields different
        cache keys, so stale entries can never be served.
        """
        from dataclasses import asdict

        from repro.store.cache import dataset_fingerprint

        if self._dataset_id is None:
            self._dataset_id = dataset_fingerprint(self.dataset)
        return {
            "problem": "deepmd",
            "dataset": self._dataset_id,
            "settings": asdict(self.settings),
        }

    def cache_key(self, phenome: dict[str, Any]) -> str:
        from repro.store.cache import evaluation_key

        return evaluation_key(phenome, self.cache_fingerprint())

    def _template_variables(
        self, phenome: dict[str, Any]
    ) -> dict[str, Any]:
        s = self.settings
        return {
            "start_lr": phenome["start_lr"],
            "stop_lr": phenome["stop_lr"],
            "rcut": phenome["rcut"],
            "rcut_smth": phenome["rcut_smth"],
            "scale_by_worker": phenome["scale_by_worker"],
            "desc_activ_func": phenome["desc_activ_func"],
            "fitting_activ_func": phenome["fitting_activ_func"],
            "embedding_widths": list(s.embedding_widths),
            "axis_neurons": s.axis_neurons,
            "fitting_widths": list(s.fitting_widths),
            "numb_steps": s.numb_steps,
            "batch_size": s.batch_size,
            "disp_freq": s.disp_freq,
            "seed": s.seed,
            "data_dir": "",
        }

    def evaluate_with_metadata(
        self, phenome: dict[str, Any], uuid: Optional[str] = None
    ) -> tuple[np.ndarray, dict[str, Any]]:
        """Run the full workflow; returns fitness and runtime metadata.

        The metadata always carries an explicit ``failed`` flag: False
        on the returned dict, True (with a ``failure_cause``) on the
        metadata attached to any escaping exception — so MAXINT-fitness
        runs are distinguishable from legitimately bad ones downstream.
        """
        if self.cache is not None:
            key = self.cache_key(phenome)
            entry = self.cache.lookup(key)
            if entry is not None:
                if entry.failed:
                    from repro.store.cache import CachedFailure

                    raise CachedFailure(
                        entry.error or "memoized evaluation failure",
                        metadata={**entry.metadata, "cache_hit": True},
                    )
                return entry.fitness_array(), {
                    **entry.metadata,
                    "cache_hit": True,
                }
        try:
            run = run_training(
                base_dir=self.base_dir,
                variables=self._template_variables(phenome),
                dataset=self.dataset,
                time_limit=self.settings.time_limit,
                mode=self.settings.mode,
                run_uuid=uuid,
            )
        except Exception as exc:
            meta = dict(getattr(exc, "metadata", None) or {})
            meta.setdefault("phenome", dict(phenome))
            meta.setdefault("failed", True)
            meta.setdefault(
                "failure_cause", f"{type(exc).__name__}: {exc}"
            )
            exc.metadata = meta  # type: ignore[attr-defined]
            if self.cache is not None:
                self.cache.insert(
                    key,
                    failure_fitness(self.n_objectives),
                    metadata=meta,
                    failed=True,
                    error=meta["failure_cause"],
                )
            raise
        fitness = np.array([run.rmse_e_val, run.rmse_f_val])
        metadata = {
            "runtime_minutes": run.wall_time / 60.0,
            "workdir": str(run.workdir),
            "phenome": dict(phenome),
            "failed": False,
        }
        if self.cache is not None:
            self.cache.insert(key, fitness, metadata=metadata)
        return fitness, metadata

"""The seven-gene representation (Table 1, §2.2.1–2.2.2).

Each individual is a seven-element real-valued vector:

====================  ====================  =========================
hyperparameter        initialization range  mutation std. deviation
====================  ====================  =========================
``start_lr``          (3.51e-8, 0.01)       0.001
``stop_lr``           (3.51e-8, 0.0001)     0.0001
``rcut``              (6.0, 12.0)           0.0625
``rcut_smth``         (2.0, 6.0)            0.0625
``scale_by_worker``   (0.0, 3.0)            0.0625
``desc_activ_func``   (0.0, 5.0)            0.0625
``fitting_activ_func``(0.0, 5.0)            0.0625
====================  ====================  =========================

The last three genes decode to strings by floor-then-modulus
(§2.2.2): ``scale_by_worker`` over {"linear", "sqrt", "none"} and the
two activation genes over {"relu", "relu6", "softplus", "sigmoid",
"tanh"}.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.evo.decoder import MixedVectorDecoder
from repro.nn.activations import ACTIVATION_NAMES
from repro.nn.lr_schedule import WORKER_SCALINGS

#: Canonical gene order.
GENE_NAMES: tuple[str, ...] = (
    "start_lr",
    "stop_lr",
    "rcut",
    "rcut_smth",
    "scale_by_worker",
    "desc_activ_func",
    "fitting_activ_func",
)

_INIT_RANGES: dict[str, tuple[float, float]] = {
    "start_lr": (3.51e-8, 0.01),
    "stop_lr": (3.51e-8, 0.0001),
    "rcut": (6.0, 12.0),
    "rcut_smth": (2.0, 6.0),
    "scale_by_worker": (0.0, 3.0),
    "desc_activ_func": (0.0, 5.0),
    "fitting_activ_func": (0.0, 5.0),
}

_MUTATION_STD: dict[str, float] = {
    "start_lr": 0.001,
    "stop_lr": 0.0001,
    "rcut": 0.0625,
    "rcut_smth": 0.0625,
    "scale_by_worker": 0.0625,
    "desc_activ_func": 0.0625,
    "fitting_activ_func": 0.0625,
}

_CATEGORICAL_CHOICES: dict[str, tuple[str, ...]] = {
    "scale_by_worker": WORKER_SCALINGS,
    "desc_activ_func": ACTIVATION_NAMES,
    "fitting_activ_func": ACTIVATION_NAMES,
}


class DeepMDRepresentation:
    """Bounds, mutation scales, and decoder for the seven-gene genome."""

    gene_names = GENE_NAMES

    #: the objectives every DeepMD problem emits, in fitness order —
    #: campaigns may append ``runtime`` via
    #: :func:`repro.hpo.objectives.with_objectives`
    base_objectives: tuple[str, ...] = ("energy", "force")

    #: (7, 2) hard bounds applied after Gaussian mutation (Listing 1's
    #: ``hard_bounds=DeepMDRepresentation.bounds``) — identical to the
    #: initialization ranges.
    bounds: np.ndarray = np.array(
        [_INIT_RANGES[name] for name in GENE_NAMES]
    )

    #: (7, 2) initialization ranges (Table 1, column 2).
    init_ranges: np.ndarray = np.array(
        [_INIT_RANGES[name] for name in GENE_NAMES]
    )

    #: (7,) initial Gaussian-mutation standard deviations (column 3).
    mutation_std: np.ndarray = np.array(
        [_MUTATION_STD[name] for name in GENE_NAMES]
    )

    @classmethod
    def decoder(cls) -> MixedVectorDecoder:
        """The mixed real/categorical decoder for this genome."""
        spec = [
            (name, _CATEGORICAL_CHOICES.get(name))
            for name in GENE_NAMES
        ]
        return MixedVectorDecoder(spec)

    @classmethod
    def index_of(cls, gene: str) -> int:
        return GENE_NAMES.index(gene)

    @classmethod
    def encode(cls, phenome: dict[str, Any]) -> np.ndarray:
        """Build a genome whose decode reproduces ``phenome``.

        Categorical values are encoded as the (float of the) choice
        index, which floor-mod decodes back to the same string.  Useful
        for seeding known configurations (e.g. DeePMD defaults) into a
        population.
        """
        genome = np.zeros(len(GENE_NAMES))
        for i, name in enumerate(GENE_NAMES):
            value = phenome[name]
            choices = _CATEGORICAL_CHOICES.get(name)
            if choices is None:
                genome[i] = float(value)
            else:
                genome[i] = float(choices.index(value))
        return genome

    @classmethod
    def table1(cls) -> list[dict[str, Any]]:
        """Table 1 as structured rows (the bench prints these)."""
        return [
            {
                "hyperparameter": name,
                "initialization range": _INIT_RANGES[name],
                "mutation standard deviation": _MUTATION_STD[name],
            }
            for name in GENE_NAMES
        ]

    @classmethod
    def validate_phenome(cls, phenome: dict[str, Any]) -> list[str]:
        """Human-readable problems with a decoded phenome (empty = ok).

        Note that some decodable phenomes are *not* trainable — e.g.
        ``rcut_smth >= rcut`` — matching the paper's observation that
        some hyperparameter combinations simply fail; the evaluator
        converts those failures to MAXINT fitness rather than
        preventing them.
        """
        problems = []
        if phenome["rcut_smth"] >= phenome["rcut"]:
            problems.append(
                f"rcut_smth ({phenome['rcut_smth']:.3f}) >= rcut "
                f"({phenome['rcut']:.3f}): descriptor undefined"
            )
        if phenome["start_lr"] <= 0 or phenome["stop_lr"] <= 0:
            problems.append("learning rates must be positive")
        return problems

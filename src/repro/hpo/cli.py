"""The campaign command-line interface (``repro-hpo``).

Runs an NSGA-II campaign — surrogate (paper scale, seconds) or real
(scaled-down trainings, minutes) — and prints every reproduced table.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any


class _KillAfterJournaledEvaluations:
    """Test/CI harness for out-of-process backends: hard-kill the
    *campaign* process after N journaled evaluations.

    Under ``--backend pool``/``fleet`` the problem's ``evaluate`` runs
    inside a worker, so the problem-wrapping
    :class:`_KillAfterEvaluations` would kill a worker instead of the
    campaign.  Every completed evaluation is journaled by the engine in
    the campaign process, so wrapping the journal gives the same
    semantics (the Nth result is durably persisted, then SIGKILL)
    wherever the evaluation executed.
    """

    def __init__(self, journal: Any, limit: int) -> None:
        self.journal = journal
        self.limit = int(limit)
        self._done = 0

    def __getattr__(self, name: str) -> Any:
        try:
            inner = self.__dict__["journal"]
        except KeyError:
            raise AttributeError(name) from None
        return getattr(inner, name)

    def _count(self, n: int) -> None:
        self._done += n
        if self._done >= self.limit:
            import os

            sys.stderr.write(
                f"kill-after-evals: {self._done} evaluations "
                "journaled, exiting 137\n"
            )
            sys.stderr.flush()
            os._exit(137)

    def append_evaluation(self, individual: Any) -> None:
        self.journal.append_evaluation(individual)
        self._count(1)

    def append_generation(self, record: Any, **kwargs: Any) -> None:
        # campaign journals are per-generation write-ahead records;
        # count the evaluations each commit carries so the kill lands
        # right after the Nth evaluation became durable
        self.journal.append_generation(record, **kwargs)
        self._count(len(getattr(record, "evaluated", None) or ()))


class _KillAfterEvaluations:
    """Test/CI harness: hard-kill the process after N evaluations.

    Wraps a problem (outside its :class:`~repro.store.cache.CachedProblem`
    layer, so the Nth result is already persisted) and calls
    ``os._exit(137)`` once ``limit`` evaluations have *finished* —
    simulating a SIGKILL mid-generation for crash-resume smoke tests.
    Failed evaluations count too (they also hit the cache/journal
    machinery being exercised).
    """

    def __init__(self, problem: Any, limit: int) -> None:
        self.problem = problem
        self.n_objectives = problem.n_objectives
        self.limit = int(limit)
        self._done = 0

    def __getattr__(self, name: str) -> Any:
        try:
            inner = self.__dict__["problem"]
        except KeyError:
            raise AttributeError(name) from None
        return getattr(inner, name)

    def _count(self) -> None:
        self._done += 1
        if self._done >= self.limit:
            import os

            sys.stderr.write(
                f"kill-after-evals: {self._done} evaluations done, "
                "exiting 137\n"
            )
            sys.stderr.flush()
            os._exit(137)

    def evaluate_with_metadata(self, phenome, uuid=None):
        from repro.engine import call_problem

        try:
            return call_problem(self.problem, phenome, uuid=uuid)
        finally:
            self._count()

    def evaluate_batch_with_metadata(self, phenomes, uuids=None):
        """Batch path with the same kill point as the scalar path.

        Sub-batches never exceed the remaining budget, so exactly
        ``limit`` evaluations finish (and persist) before the process
        exits — a batch cannot overshoot the kill count.
        """
        from repro.engine import call_problem_batch

        phenome_list = list(phenomes)
        uuid_list = (
            list(uuids)
            if uuids is not None
            else [None] * len(phenome_list)
        )
        outcomes: list[Any] = []
        i = 0
        while i < len(phenome_list):
            remaining = max(1, self.limit - self._done)
            chunk = call_problem_batch(
                self.problem,
                phenome_list[i : i + remaining],
                uuids=uuid_list[i : i + remaining],
            )
            outcomes.extend(chunk)
            for _ in chunk:
                self._count()  # may os._exit(137) mid-batch
            i += len(chunk)
        return outcomes

    def evaluate(self, phenome):
        from repro.engine import call_problem

        try:
            fitness, _ = call_problem(self.problem, phenome)
            return fitness
        finally:
            self._count()


def _open_cache(args: argparse.Namespace, directory: Any = None):
    """The evaluation cache for this invocation, or None.

    Explicit ``--cache-dir`` wins; otherwise a campaign directory
    (``--save`` / the resume dir) hosts the cache at ``<dir>/cache``;
    ``--no-cache`` disables caching entirely.
    """
    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None and directory is not None:
        from pathlib import Path

        cache_dir = Path(directory) / "cache"
    if cache_dir is None:
        return None
    from repro.store import EvaluationCache

    return EvaluationCache(
        cache_dir,
        cache_failures=getattr(args, "cache_failures", False),
    )


def _chaos_injector(args: argparse.Namespace):
    """The chaos injector for this invocation, or None.

    ``--chaos-seed N`` draws a seed-deterministic plan of store-layer
    faults (cache-entry corruption, journal torn writes) — the kinds a
    single-process CLI campaign can both inject and recover from
    without changing its result.  The plan is saved next to the
    journal so a failing run can be replayed exactly.
    """
    seed = getattr(args, "chaos_seed", None)
    revoke = getattr(args, "chaos_revoke", None)
    if seed is None and not revoke:
        return None
    from repro.chaos import STORE_KINDS, Fault, FaultPlan

    faults = []
    if seed is not None:
        faults = list(
            FaultPlan.random(
                seed,
                kinds=STORE_KINDS,
                n_faults=4,
                horizon={"cache_corrupt": 24, "journal_truncate": 12},
            )
        )
    if revoke:
        # preemption storm: revoke a worker at these task-pickup
        # ordinals (fleet backends requeue; a bare pool fails → MAXINT)
        faults += [
            Fault("revoke_worker", at=int(at))
            for at in str(revoke).split(",")
            if at.strip()
        ]
    plan = FaultPlan(faults, seed=seed)
    save = getattr(args, "save", None) or getattr(args, "directory", None)
    if save:
        from pathlib import Path

        tag = seed if seed is not None else "revoke"
        plan.save(Path(save) / f"chaos_plan_{tag}.json")
    return plan.injector()


def _print_chaos_report(injector, directory) -> None:
    """Post-run chaos accounting: what fired, and whether every
    invariant held on the artifacts the campaign left behind."""
    if injector is None:
        return
    fired = [f"{f.kind}@{f.index}" for f in injector.log]
    print(f"chaos: {len(fired)} fault(s) fired: {fired or 'none'}")
    if not directory:
        return
    from pathlib import Path

    from repro.chaos import InvariantChecker
    from repro.store import journal_path

    directory = Path(directory)
    jpath = journal_path(directory)
    if not jpath.exists():
        return
    cache_dir = directory / "cache"
    report = InvariantChecker(
        journal=jpath,
        cache_dir=cache_dir if cache_dir.exists() else None,
        injected=injector.log,
        # a resumed campaign's journal may carry tears from faults
        # injected before the kill, which this injector never saw
        expect_torn=True,
    ).check()
    print(report.summary())


def _resolve_backend_args(args: argparse.Namespace) -> tuple[str, str]:
    """Split the overloaded ``--backend`` flag into (problem, execution).

    Historically ``--backend`` selected the *problem* (``surrogate`` |
    ``real``).  It now selects the *execution* backend (``inline`` |
    ``client`` | ``pool``) while ``--problem`` selects the problem; the
    old values are still accepted and routed to ``--problem`` so
    existing invocations keep working.
    """
    problem = getattr(args, "problem", None)
    backend = getattr(args, "backend", None)
    if backend in ("surrogate", "real"):
        if problem is not None and problem != backend:
            print(
                f"error: --backend {backend} (legacy problem selector) "
                f"conflicts with --problem {problem}",
                file=sys.stderr,
            )
            raise SystemExit(2)
        print(
            f"note: '--backend {backend}' now means '--problem "
            f"{backend}'; --backend selects the execution backend "
            "(inline | client | pool)",
            file=sys.stderr,
        )
        problem = backend
        backend = "inline"
    return problem or "surrogate", backend or "inline"


def _execution_backend(stack, args: argparse.Namespace, backend: str):
    """Build the execution backend for ``Campaign(client=...)``, or None.

    ``inline`` evaluates in-process; ``pool`` spawns a real
    ``multiprocessing`` worker pool (``--pool-workers``, with an
    optional per-evaluation ``--pool-deadline``); ``client`` runs the
    simulated thread cluster.  Pool and cluster lifetimes are tied to
    ``stack`` so workers are torn down even when the campaign raises.
    Constructed inside the chaos scope so dispatch-time fault hooks
    bind to the active plan.
    """
    workers = getattr(args, "pool_workers", None) or 4
    if backend == "inline":
        return None
    if backend == "pool":
        from repro.engine import ProcessPoolBackend

        return stack.enter_context(
            ProcessPoolBackend(
                workers=workers,
                deadline=getattr(args, "pool_deadline", None),
            )
        )
    if backend == "fleet":
        from repro.engine import (
            ElasticBackend,
            InlineBackend,
            ProcessPoolBackend,
        )

        min_workers = getattr(args, "min_workers", None) or workers
        max_workers = getattr(args, "max_workers", None) or max(
            min_workers, workers
        )
        pool = ProcessPoolBackend(
            workers=min_workers,
            deadline=getattr(args, "pool_deadline", None),
        )
        # the inline reserve rescues work when every pool worker has
        # been revoked and hosts speculative re-executions
        return stack.enter_context(
            ElasticBackend(
                [pool, InlineBackend()],
                min_workers=min_workers,
                max_workers=max_workers,
                slots_cap=getattr(args, "slots", None),
                speculate=bool(getattr(args, "speculate", False)),
                owns_members=True,
            )
        )
    from repro.distributed import LocalCluster

    cluster = stack.enter_context(LocalCluster(n_workers=workers))
    return cluster.client()


def _start_observability(stack, args: argparse.Namespace, tracer):
    """Start the live /metrics + /status plane, or return None.

    Enabled by ``--serve-metrics PORT``: installs a process-wide
    :class:`~repro.obs.live.CampaignStatus` (scoped to ``stack``) so
    the drivers/engine/pool publish into it, and serves it together
    with the registry's Prometheus export over HTTP.  The server is
    torn down when ``stack`` unwinds; ``--serve-linger`` holds it open
    after a completed campaign (see :func:`_finish_observability`).
    """
    port = getattr(args, "serve_metrics", None)
    if port is None:
        return None
    from repro.obs import (
        CampaignStatus,
        ObservabilityServer,
        use_status,
    )

    campaign_id = getattr(tracer, "campaign_id", None)
    if campaign_id is None:  # untraced run: still identify the campaign
        import uuid

        campaign_id = uuid.uuid4().hex[:12]
    status = CampaignStatus(campaign_id=campaign_id)
    stack.enter_context(use_status(status))
    server = ObservabilityServer(
        port=port,
        status=status,
        tracer=tracer if getattr(tracer, "enabled", False) else None,
    )
    stack.callback(server.close)
    server.start()
    print(
        f"serving live observability at {server.url} "
        "(/metrics, /status)",
        file=sys.stderr,
    )
    return status, server


def _finish_observability(serve, args: argparse.Namespace) -> None:
    """Campaign completed: mark the status done and optionally hold
    the endpoint open so scrapers/monitors can read the final state."""
    if serve is None:
        return
    status, server = serve
    status.mark_done()
    linger = getattr(args, "serve_linger", None) or 0.0
    if linger > 0:
        import time

        print(
            f"campaign done; serving {server.url} for "
            f"{linger:g}s more (--serve-linger)",
            file=sys.stderr,
        )
        time.sleep(linger)


def _print_report(result, plot: bool, export_csv: str | None) -> None:
    """The §3 tables (and optional figures) for a campaign result —
    shared by ``campaign`` and ``resume``."""
    from repro.analysis import (
        format_table,
        frontier_table,
        generation_level_plots,
        table3_rows,
    )

    print(f"total trainings: {result.n_trainings}")
    print(f"failures by generation: {result.failures_by_generation()}")
    print()
    panels = generation_level_plots(result)
    print(
        format_table(
            [p.summary() for p in panels],
            title="Fig. 1 — pooled loss distributions per generation",
        )
    )
    print()
    table = frontier_table(result)
    print(
        format_table(
            table.rows(),
            title=f"Table 2 — Pareto frontier ({len(table)} solutions)",
        )
    )
    print()
    rows = [r.as_dict() for r in table3_rows(result)]
    print(format_table(rows, title="Table 3 — selected solutions"))
    if plot:
        from repro.analysis import ascii_scatter

        final = [
            ind
            for ind in result.last_generation_individuals()
            if ind.is_viable
        ]
        print()
        print("final solutions (.) and frontier (O):")
        print(
            ascii_scatter(
                [(i.fitness[0], i.fitness[1]) for i in final],
                highlight=[
                    (i.fitness[0], i.fitness[1]) for i in table.members
                ],
                x_label="energy loss (eV/atom)",
                y_label="force loss (eV/A)",
            )
        )
    if export_csv:
        from pathlib import Path

        from repro.io import (
            export_frontier_csv,
            export_level_plot_csv,
            export_parallel_coordinates_csv,
        )

        out = Path(export_csv)
        out.mkdir(parents=True, exist_ok=True)
        export_level_plot_csv(result, out / "fig1_levels.csv")
        export_frontier_csv(result, out / "fig2_frontier.csv")
        export_parallel_coordinates_csv(result, out / "fig3_parallel.csv")
        print(f"figure data exported to {out}")


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.hpo.campaign import Campaign, CampaignConfig
    from repro.hpo.landscape import SurrogateDeepMDProblem
    from repro.obs import NULL_TRACER, Tracer, use_tracer

    from repro.hpo.objectives import BASE_OBJECTIVES, with_objectives

    config = CampaignConfig(
        n_runs=args.runs,
        pop_size=args.pop_size,
        generations=args.generations,
        base_seed=args.seed,
        mode=args.mode,
        objectives=getattr(args, "objectives", None),
        hv_stop_eps=getattr(args, "hv_stop_eps", None),
        hv_stop_patience=getattr(args, "hv_stop_patience", 2),
        batch_evals=getattr(args, "batch_evals", False),
        pipeline=getattr(args, "pipeline", False),
        batch_chunk=getattr(args, "batch_chunk", None),
    )
    objectives = config.objectives
    tracer = Tracer(args.trace) if args.trace else NULL_TRACER
    problem_kind, exec_backend = _resolve_backend_args(args)
    if problem_kind == "surrogate":
        base_factory = lambda seed: with_objectives(  # noqa: E731
            SurrogateDeepMDProblem(seed=seed), objectives
        )
        problem_spec = {"backend": "surrogate"}
    else:
        from repro.hpo.evaluator import DeepMDProblem, EvaluatorSettings
        from repro.md.dataset import generate_dataset

        dataset = generate_dataset(
            n_frames=args.frames, rng=args.seed
        )
        settings = EvaluatorSettings(numb_steps=args.steps)
        shared = with_objectives(
            DeepMDProblem(dataset, settings=settings), objectives
        )
        base_factory = lambda seed: shared  # noqa: E731
        problem_spec = {
            "backend": "real",
            "frames": args.frames,
            "seed": args.seed,
            "steps": args.steps,
        }
    if tuple(objectives) != BASE_OBJECTIVES:
        # journaled so resume rebuilds the same extended evaluator
        problem_spec["objectives"] = list(objectives)
    import contextlib

    from repro.injection import use_injector

    if args.save:
        from pathlib import Path

        Path(args.save).mkdir(parents=True, exist_ok=True)
    injector = _chaos_injector(args)
    with use_injector(injector), contextlib.ExitStack() as stack:
        # the tracer scope must wrap backend construction: the pool
        # binds get_tracer() when built, so entering it later would
        # leave pool events on the null tracer
        stack.enter_context(use_tracer(tracer))
        serve = _start_observability(stack, args, tracer)
        # cache + journal + execution backend are built inside the
        # chaos scope so their injection hooks bind to the active plan
        client = _execution_backend(stack, args, exec_backend)
        cache = _open_cache(args, directory=args.save)
        factory = base_factory
        if cache is not None:
            from repro.store import CachedProblem

            factory = lambda seed: CachedProblem(base_factory(seed), cache)  # noqa: E731
        if args.kill_after_evals and exec_backend == "inline":
            inner_factory = factory
            factory = lambda seed: _KillAfterEvaluations(  # noqa: E731
                inner_factory(seed), args.kill_after_evals
            )
        journal = None
        if args.save:
            from repro.store import CampaignJournal, journal_path

            journal = CampaignJournal(
                journal_path(args.save), problem_spec=problem_spec
            )
            if args.kill_after_evals and exec_backend != "inline":
                # out-of-process backends: evaluate() runs in workers,
                # so kill on the Nth *journaled* evaluation instead —
                # that hook runs in the campaign process
                journal = _KillAfterJournaledEvaluations(
                    journal, args.kill_after_evals
                )
        try:
            campaign = Campaign(
                factory,
                config,
                tracer=tracer,
                journal=journal,
                client=client,
            )
            result = campaign.run()
            _finish_observability(serve, args)
        finally:
            if journal is not None:
                journal.close()
    if args.trace:
        tracer.close()
        print(
            f"trace written to {args.trace} "
            f"(campaign {tracer.campaign_id}); render it with: "
            f"repro-hpo trace {args.trace}"
        )
    if cache is not None:
        print(f"evaluation cache: {cache.stats()}")
    _print_chaos_report(injector, args.save)
    _print_report(result, args.plot, args.export_csv)
    if args.save:
        from repro.io import save_campaign

        save_campaign(result, args.save)
        print(f"\ncampaign saved to {args.save}")
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.exceptions import StoreError
    from repro.obs import NULL_TRACER, Tracer, use_tracer
    from repro.store import resume_campaign

    from repro.injection import use_injector

    import contextlib

    directory = Path(args.directory)
    injector = _chaos_injector(args)
    tracer = Tracer(args.trace) if args.trace else NULL_TRACER
    _, exec_backend = _resolve_backend_args(args)
    try:
        with use_injector(injector), contextlib.ExitStack() as stack:
            # same ordering as `campaign`: tracer + status scopes wrap
            # backend construction
            stack.enter_context(use_tracer(tracer))
            serve = _start_observability(stack, args, tracer)
            client = _execution_backend(stack, args, exec_backend)
            cache = _open_cache(args, directory=directory)
            result = resume_campaign(
                directory, cache=cache, tracer=tracer, client=client
            )
            _finish_observability(serve, args)
    except StoreError as exc:
        print(f"cannot resume: {exc}", file=sys.stderr)
        return 1
    if args.trace:
        tracer.close()
        print(f"trace written to {args.trace}")
    if cache is not None:
        print(f"evaluation cache: {cache.stats()}")
    _print_chaos_report(injector, directory)
    _print_report(result, args.plot, args.export_csv)
    from repro.io import save_campaign

    save_campaign(result, directory)
    print(f"\ncampaign snapshot refreshed in {directory}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs import read_trace, render_trace_report

    path = Path(args.file)
    if not path.exists():
        print(f"trace file not found: {path}", file=sys.stderr)
        return 1
    records = read_trace(path)
    if not records:
        print(f"no trace records in {path}", file=sys.stderr)
        return 1
    print(render_trace_report(records, top=args.top))
    return 0


def _render_dashboard(snapshot: dict) -> str:
    """One frame of the ``repro-hpo monitor`` dashboard.

    A snapshot carrying a ``service`` key comes from the multi-tenant
    campaign server and gets the multi-campaign view; anything else is
    a solo campaign's ``--serve-metrics`` endpoint.
    """
    from repro.analysis import format_table, sparkline

    if snapshot.get("service") is not None:
        return _render_service_dashboard(snapshot)
    lines: list[str] = []
    lines.append(
        f"campaign {snapshot.get('campaign') or '?'}  "
        f"mode {snapshot.get('mode') or '?'}  "
        f"state {snapshot.get('state', '?')}  "
        f"run {snapshot.get('run')}  "
        f"generation {snapshot.get('generation')}"
    )
    lines.append(
        f"elapsed {snapshot.get('elapsed_s', 0.0):g}s  "
        f"evals/sec {snapshot.get('evals_per_sec', 0.0):g}  "
        f"cache-hit {100 * snapshot.get('cache_hit_rate', 0.0):.1f}%  "
        f"dedup {100 * snapshot.get('dedup_rate', 0.0):.1f}%"
    )
    series = snapshot.get("hypervolume_series") or []
    if series:
        values = [
            float(entry.get("hypervolume") or 0.0) for entry in series
        ]
        last = series[-1]
        lines.append("")
        lines.append(
            f"hypervolume {sparkline(values)}  "
            f"latest {values[-1]:.6g} "
            f"(front {last.get('front_size', 0)}, "
            f"{len(series)} point(s))"
        )
    front = snapshot.get("front") or []
    if front:
        lines.append(f"nondominated front: {len(front)} solution(s)")
    engine = snapshot.get("engine") or {}
    if engine:
        line = (
            "engine: "
            f"submitted {engine.get('submitted', 0)}  "
            f"completed {engine.get('completed', 0)}  "
            f"fresh {engine.get('fresh', 0)}  "
            f"failures {engine.get('failures', 0)}"
        )
        if engine.get("batches"):
            line += (
                f"  batches {engine.get('batches', 0)}"
                f" (last {engine.get('last_batch_size', 0)})"
            )
        if engine.get("evals_per_sec"):
            line += f"  evals/sec {engine.get('evals_per_sec', 0.0):g}"
        lines.append(line)
    fleet = snapshot.get("fleet") or {}
    if fleet:
        lines.append(_format_fleet_line(fleet))
    workers = snapshot.get("workers") or {}
    if workers:
        rows = [
            {
                "worker": name,
                "state": info.get("state", "?"),
                "task": info.get("task") or "-",
                "dispatched": info.get("tasks_dispatched", 0),
                "respawns": info.get("respawns", 0),
            }
            for name, info in sorted(workers.items())
        ]
        lines.append("")
        lines.append(format_table(rows, title="workers"))
    stragglers = snapshot.get("stragglers") or {}
    slowest = stragglers.get("slowest") or []
    if slowest:
        lines.append("")
        lines.append(format_table(slowest, title="slowest tasks"))
        lines.append(
            f"retries: {stragglers.get('retries', 0)}  "
            f"requeued: {stragglers.get('requeued', 0)}  "
            f"pool deaths: {stragglers.get('pool_worker_deaths', 0)}  "
            f"pool respawns: {stragglers.get('pool_respawns', 0)}"
        )
    return "\n".join(lines)


def _cmd_monitor(args: argparse.Namespace) -> int:
    """Poll a live campaign's ``/status`` and render a dashboard."""
    import json
    import time
    import urllib.error
    import urllib.request

    url = args.url
    if "://" not in url:
        url = f"http://{url}"
    url = url.rstrip("/")
    if url.endswith("/status"):
        url = url[: -len("/status")]
    status_url = f"{url}/status"
    failures = 0
    while True:
        try:
            with urllib.request.urlopen(
                status_url, timeout=args.timeout
            ) as resp:
                snapshot = json.loads(resp.read().decode("utf-8"))
            failures = 0
        except (urllib.error.URLError, OSError, ValueError) as exc:
            failures += 1
            print(
                f"monitor: cannot read {status_url}: {exc}",
                file=sys.stderr,
            )
            if args.once or failures > args.max_failures:
                return 1
            time.sleep(args.interval)
            continue
        if not args.once:
            # ANSI clear + home: a live dashboard, not a scrolling log
            sys.stdout.write("\x1b[2J\x1b[H")
        print(_render_dashboard(snapshot))
        sys.stdout.flush()
        if args.once or snapshot.get("state") == "done":
            return 0
        time.sleep(args.interval)


def _render_service_dashboard(snapshot: dict) -> str:
    """One frame of the multi-campaign (service) monitor view."""
    from repro.analysis import format_table

    service = snapshot.get("service") or {}
    scheduler = service.get("scheduler") or {}
    lines: list[str] = []
    lines.append(
        f"campaign service  state {snapshot.get('state', '?')}  "
        f"campaigns {len(service.get('campaigns') or [])}  "
        f"slots {scheduler.get('total_slots', '?')}  "
        f"in-flight {scheduler.get('in_flight', 0)}"
    )
    campaigns = service.get("campaigns") or []
    if campaigns:
        rows = [
            {
                "id": c.get("id", "?"),
                "name": c.get("name", "?"),
                "tenant": c.get("tenant", "?"),
                "state": c.get("state", "?"),
                "run": c.get("run"),
                "gen": c.get("generation"),
                "hv": (
                    f"{c['hypervolume']:.5g}"
                    if c.get("hypervolume") is not None
                    else "-"
                ),
                "front": c.get("front_size", "-"),
                "cache-hit %": round(
                    100 * (c.get("cache_hit_rate") or 0.0), 1
                ),
            }
            for c in campaigns
        ]
        lines.append("")
        lines.append(format_table(rows, title="campaigns"))
    tenants = scheduler.get("tenants") or {}
    if tenants:
        rows = [
            {
                "tenant": name,
                "weight": t.get("weight", 1.0),
                "priority": t.get("priority", 0),
                "in-flight": t.get("in_flight", 0),
                "peak": t.get("peak_in_flight", 0),
                "quota": t.get("max_in_flight", "?"),
                "dispatched": t.get("dispatched", 0),
            }
            for name, t in sorted(tenants.items())
        ]
        lines.append("")
        lines.append(format_table(rows, title="tenants (fair share)"))
    cache = service.get("cache") or {}
    if cache:
        lines.append("")
        lines.append(
            "shared cache: "
            f"hits {cache.get('hits', 0)}  "
            f"misses {cache.get('misses', 0)}  "
            f"inserts {cache.get('inserts', 0)}"
        )
    fleet = service.get("fleet") or {}
    if fleet:
        lines.append("")
        lines.append(_format_fleet_line(fleet))
    return "\n".join(lines)


def _format_fleet_line(fleet: dict) -> str:
    """One-line elastic fleet summary shared by both monitor views."""
    bounds = (
        f"{fleet.get('min_workers') or '?'}"
        f"-{fleet.get('max_workers') or '?'}"
    )
    line = (
        "fleet: "
        f"workers {fleet.get('workers', '?')} ({bounds})  "
        f"in-flight {fleet.get('in_flight', 0)}  "
        f"queued {fleet.get('queue_depth', 0)}  "
        f"requeued {fleet.get('requeued', 0)}  "
        f"scale +{fleet.get('scale_ups', 0)}/-{fleet.get('scale_downs', 0)}"
    )
    if fleet.get("speculate"):
        line += (
            f"  spec {fleet.get('speculations', 0)}"
            f" (wins {fleet.get('speculative_wins', 0)},"
            f" dup {fleet.get('duplicates_discarded', 0)})"
        )
    return line


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant campaign server until SIGTERM/SIGINT."""
    import contextlib

    from repro.service import CampaignServer, CampaignService

    _, exec_backend = _resolve_backend_args(args)
    with contextlib.ExitStack() as stack:
        backend = _execution_backend(stack, args, exec_backend)
        service = CampaignService(
            args.root,
            backend=backend,
            max_active=args.max_active,
            total_slots=args.slots,
            cache_failures=getattr(args, "cache_failures", False),
        )
        recovered = service.recover()
        if recovered:
            print(
                f"recovered {len(recovered)} campaign(s): "
                + " ".join(c.id for c in recovered),
                file=sys.stderr,
            )
        server = CampaignServer(
            service, port=args.port, host=args.host
        ).start()
        print(
            f"campaign service at {server.url} "
            "(POST /campaigns, /status, /metrics); SIGTERM drains "
            "gracefully",
            file=sys.stderr,
        )
        sys.stderr.flush()
        server.install_signal_handlers()
        try:
            server.serve_until_shutdown(timeout=args.drain_timeout)
        finally:
            # serve_until_shutdown already drained; the stack now tears
            # down the backend the service was lent
            print("campaign service stopped", file=sys.stderr)
    return 0


def _load_submission(args: argparse.Namespace) -> dict:
    """Build the POST /campaigns body from a spec file plus flags.

    The file may be a full submission (``{"tenant": ..., "config":
    ...}``) or a bare campaign config (``{"n_runs": 4, ...}``);
    command-line tenant/name flags override the file.
    """
    import json
    from pathlib import Path

    spec: dict = {}
    if args.config:
        doc = json.loads(Path(args.config).read_text())
        if not isinstance(doc, dict):
            print("error: spec file must hold a JSON object", file=sys.stderr)
            raise SystemExit(2)
        spec = doc if "config" in doc else {"config": doc}
    spec.setdefault("config", {})
    if args.name:
        spec["name"] = args.name
    if args.tenant or not spec.get("tenant"):
        tenant = spec.get("tenant")
        tenant = (
            dict(tenant)
            if isinstance(tenant, dict)
            else ({"name": tenant} if tenant else {})
        )
        if args.tenant:
            tenant["name"] = args.tenant
        if args.weight is not None:
            tenant["weight"] = args.weight
        if args.max_in_flight is not None:
            tenant["max_in_flight"] = args.max_in_flight
        if args.priority is not None:
            tenant["priority"] = args.priority
        if tenant:
            spec["tenant"] = tenant
    return spec


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.exceptions import ServiceError
    from repro.service import ServiceClient

    client = ServiceClient(args.url)
    try:
        summary = _submit_and_maybe_watch(client, args)
    except ServiceError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    return 0 if summary.get("state") != "failed" else 1


def _submit_and_maybe_watch(client, args: argparse.Namespace) -> dict:
    import time

    summary = client.submit(_load_submission(args))
    print(
        f"campaign {summary['id']} submitted "
        f"(tenant {summary.get('tenant')}, state {summary.get('state')})"
    )
    if not args.watch:
        return summary
    terminal = {"done", "failed", "cancelled", "interrupted"}
    while summary.get("state") not in terminal:
        time.sleep(args.interval)
        summary = client.campaign(summary["id"])
    print(f"campaign {summary['id']}: {summary['state']}")
    if summary.get("error"):
        print(f"error: {summary['error']}", file=sys.stderr)
    if summary["state"] == "done":
        front = client.front(summary["id"]).get("front") or []
        print(f"pareto front: {len(front)} solution(s)")
        for member in front:
            print(f"  fitness {member.get('fitness')}")
    return summary


def _cmd_campaigns(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.exceptions import ServiceError
    from repro.service import ServiceClient

    try:
        campaigns = ServiceClient(args.url).campaigns()
    except ServiceError as exc:
        print(f"cannot list campaigns: {exc}", file=sys.stderr)
        return 1
    if not campaigns:
        print("no campaigns")
        return 0
    rows = [
        {
            "id": c.get("id", "?"),
            "name": c.get("name", "?"),
            "tenant": c.get("tenant", "?"),
            "state": c.get("state", "?"),
            "mode": c.get("mode", "?"),
            "runs": c.get("n_runs", "?"),
            "pop": c.get("pop_size", "?"),
            "gens": c.get("generations", "?"),
            "error": c.get("error") or "-",
        }
        for c in campaigns
    ]
    print(format_table(rows, title="campaigns"))
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.exceptions import ServiceError
    from repro.service import ServiceClient

    try:
        summary = ServiceClient(args.url).cancel(args.id)
    except ServiceError as exc:
        print(f"cannot cancel: {exc}", file=sys.stderr)
        return 1
    print(f"campaign {summary['id']}: {summary['state']}")
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.hpo.landscape import SurrogateDeepMDProblem
    from repro.hpo.sensitivity import morris_screening, one_at_a_time

    problem = SurrogateDeepMDProblem(
        seed=args.seed, simulate_runtime=False
    )
    profiles = one_at_a_time(problem, n_points=args.points)
    rows = [
        {
            "gene": p.gene,
            "force range over sweep": p.force_range(),
        }
        for p in profiles
    ]
    rows.sort(key=lambda r: -r["force range over sweep"])
    print(format_table(rows, title="one-at-a-time sensitivity"))
    result = morris_screening(
        problem, n_trajectories=args.trajectories, rng=args.seed
    )
    print(
        "\nMorris ranking (force): "
        + " > ".join(result.ranking_by_force())
    )
    return 0


def _cmd_nas(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.analysis import format_table
    from repro.hpo.chemical import filter_chemically_accurate
    from repro.hpo.nas import (
        NASRepresentation,
        NASSurrogateProblem,
        run_nas_nsga2,
    )

    records = run_nas_nsga2(
        NASSurrogateProblem(seed=args.seed),
        pop_size=args.pop_size,
        generations=args.generations,
        rng=args.seed,
    )
    final = [i for i in records[-1].population if i.is_viable]
    accurate = filter_chemically_accurate(final)
    print(
        f"NAS search: {len(final)} final solutions, "
        f"{len(accurate)} chemically accurate"
    )
    best = sorted(accurate or final, key=lambda i: float(i.fitness[1]))
    rows = []
    for ind in best[:5]:
        phenome = ind.metadata["phenome"]
        arch = NASRepresentation.architecture_of(phenome)
        rows.append(
            {
                "embedding": str(arch["embedding_widths"]),
                "fitting": str(arch["fitting_widths"]),
                "rcut": phenome["rcut"],
                "force loss": float(ind.fitness[1]),
                "energy loss": float(ind.fitness[0]),
                "runtime (min)": float(
                    ind.metadata.get("runtime_minutes", np.nan)
                ),
            }
        )
    print(format_table(rows, title="best architectures found"))
    return 0


def _add_backend_flags(
    parser: argparse.ArgumentParser, legacy_problem_values: bool = False
) -> None:
    choices = ["inline", "client", "pool", "fleet"]
    if legacy_problem_values:
        # pre-existing scripts pass the problem here; _resolve_backend_args
        # routes these to --problem with a note
        choices += ["surrogate", "real"]
    parser.add_argument(
        "--backend",
        choices=choices,
        default=None,
        help=(
            "execution backend: inline (in-process, default), pool "
            "(multiprocessing worker pool), client (simulated thread "
            "cluster), or fleet (elastic pool + inline reserve with "
            "preemption survival; see --min-workers/--max-workers/"
            "--speculate)"
        ),
    )
    parser.add_argument(
        "--pool-workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker count for --backend pool/client (default: 4)"
        ),
    )
    parser.add_argument(
        "--pool-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "pool backend: hard per-evaluation deadline; overruns are "
            "killed (SIGKILL) and scored MAXINT"
        ),
    )
    parser.add_argument(
        "--min-workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fleet backend: autoscale floor (default: --pool-workers)"
        ),
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fleet backend: autoscale ceiling (default: --pool-workers)"
        ),
    )
    parser.add_argument(
        "--speculate",
        action="store_true",
        help=(
            "fleet backend: re-execute straggling evaluations on a "
            "second member; first result wins, the duplicate is "
            "discarded"
        ),
    )


def _add_serve_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve live observability over HTTP while the campaign "
            "runs: /metrics (Prometheus text) and /status (JSON "
            "snapshot with the hypervolume series); PORT 0 binds an "
            "ephemeral port (printed on stderr)"
        ),
    )
    parser.add_argument(
        "--serve-linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help=(
            "keep the --serve-metrics endpoint up this long after the "
            "campaign completes (lets scrapers and 'repro-hpo "
            "monitor' read the final state)"
        ),
    )


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "evaluation-cache directory (default: <save-dir>/cache "
            "when --save / resuming, else no cache)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the evaluation cache entirely",
    )
    parser.add_argument(
        "--cache-failures",
        action="store_true",
        help=(
            "also memoize failed evaluations (default: failures are "
            "re-run, in case they were environmental)"
        ),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-hpo",
        description=(
            "NSGA-II hyperparameter optimization campaign for deep "
            "potential training (paper reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p = sub.add_parser(
        "campaign",
        aliases=["run"],
        help="run a multi-run EA campaign",
    )
    p.add_argument(
        "--problem",
        choices=["surrogate", "real"],
        default=None,
        help=(
            "fitness landscape: the paper-scale surrogate (default) "
            "or real scaled-down trainings"
        ),
    )
    _add_backend_flags(p, legacy_problem_values=True)
    p.add_argument(
        "--mode",
        choices=["generational", "steady-state", "pso", "surrogate"],
        default="generational",
        help=(
            "deployment scheme: the paper's barrier-synchronized "
            "generational NSGA-II, the §2.2.5 asynchronous "
            "steady-state variant (same budget, breed-on-completion), "
            "multi-objective particle swarm, or RBF-surrogate-"
            "assisted acquisition"
        ),
    )
    p.add_argument(
        "--objectives",
        default=None,
        metavar="SPEC",
        help=(
            "comma-separated objective selection: 'loss' (the paper's "
            "energy+force pair, default) optionally extended with "
            "'time'/'cost' to minimize predicted training runtime as "
            "a third objective (e.g. 'loss,time')"
        ),
    )
    p.add_argument(
        "--hv-stop-eps",
        type=float,
        default=None,
        metavar="EPS",
        help=(
            "stop a run early once its relative hypervolume gain "
            "stays below EPS for --hv-stop-patience consecutive "
            "generations (stopped runs are bit-identical prefixes of "
            "unstopped ones)"
        ),
    )
    p.add_argument(
        "--hv-stop-patience",
        type=int,
        default=2,
        metavar="K",
        help="generations of stalled hypervolume before stopping",
    )
    p.add_argument("--runs", type=int, default=5)
    p.add_argument("--pop-size", type=int, default=100)
    p.add_argument("--generations", type=int, default=6)
    p.add_argument("--seed", type=int, default=2023)
    p.add_argument(
        "--frames", type=int, default=60, help="real backend: MD frames"
    )
    p.add_argument(
        "--steps", type=int, default=100, help="real backend: training steps"
    )
    p.add_argument(
        "--plot", action="store_true", help="render the Fig. 2 scatter"
    )
    p.add_argument(
        "--save",
        default=None,
        help=(
            "persist the campaign to a directory (also write-ahead "
            "journals there, making the campaign resumable with "
            "'repro-hpo resume')"
        ),
    )
    p.add_argument(
        "--export-csv", default=None, help="export figure data as CSV"
    )
    p.add_argument(
        "--batch-evals",
        action="store_true",
        help=(
            "route each generation through the engine's batch data "
            "plane (one chunked submission per generation; results "
            "bit-identical to the scalar path)"
        ),
    )
    p.add_argument(
        "--pipeline",
        action="store_true",
        help=(
            "overlap generation-commit bookkeeping (journal, "
            "telemetry) with the next generation's evaluations "
            "(implies --batch-evals; fronts bit-identical)"
        ),
    )
    p.add_argument(
        "--batch-chunk",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fresh evaluations per backend chunk in batch mode "
            "(default: the backend's hint, e.g. ceil(n/workers) for "
            "--backend pool)"
        ),
    )
    p.add_argument(
        "--trace",
        default=None,
        help="capture a span/event trace to this JSONL file",
    )
    _add_serve_flags(p)
    _add_cache_flags(p)
    p.add_argument(
        "--kill-after-evals",
        type=int,
        default=0,
        metavar="N",
        help=(
            "testing: hard-exit (137) after N finished evaluations, "
            "simulating a mid-generation crash; under --backend "
            "pool/client/fleet the kill fires on the Nth *journaled* "
            "evaluation instead (requires --save), since evaluate() "
            "runs in workers there"
        ),
    )
    p.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help=(
            "testing: inject a seed-deterministic plan of store-layer "
            "faults (cache corruption, journal torn writes) and print "
            "an invariant report afterwards"
        ),
    )
    p.add_argument(
        "--chaos-revoke",
        default=None,
        metavar="AT[,AT...]",
        help=(
            "testing: revoke (spot-preempt) a worker at these "
            "task-pickup ordinals; --backend fleet requeues the "
            "in-flight work, --backend pool scores it MAXINT"
        ),
    )
    p.set_defaults(func=_cmd_campaign)

    p_resume = sub.add_parser(
        "resume",
        help=(
            "continue a killed campaign from its directory (journal + "
            "evaluation cache), bit-identically"
        ),
    )
    p_resume.add_argument(
        "directory", help="campaign directory written by --save"
    )
    p_resume.add_argument(
        "--plot", action="store_true", help="render the Fig. 2 scatter"
    )
    p_resume.add_argument(
        "--export-csv", default=None, help="export figure data as CSV"
    )
    p_resume.add_argument(
        "--trace",
        default=None,
        help="capture a span/event trace to this JSONL file",
    )
    _add_backend_flags(p_resume)
    _add_serve_flags(p_resume)
    _add_cache_flags(p_resume)
    p_resume.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help=(
            "testing: inject store-layer faults during the resume "
            "itself and print an invariant report afterwards"
        ),
    )
    p_resume.add_argument(
        "--chaos-revoke",
        default=None,
        metavar="AT[,AT...]",
        help=(
            "testing: revoke a worker at these task-pickup ordinals "
            "during the resume"
        ),
    )
    p_resume.set_defaults(func=_cmd_resume)

    p_trace = sub.add_parser(
        "trace",
        help=(
            "render a wall-clock breakdown, worker utilization, and "
            "straggler summary from a trace file"
        ),
    )
    p_trace.add_argument("file", help="trace JSONL written by a Tracer")
    p_trace.add_argument(
        "--top", type=int, default=5, help="how many stragglers to list"
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_mon = sub.add_parser(
        "monitor",
        help=(
            "live ASCII dashboard for a campaign serving "
            "--serve-metrics (polls its /status endpoint)"
        ),
    )
    p_mon.add_argument(
        "url",
        help=(
            "base URL of the campaign's observability endpoint, e.g. "
            "http://127.0.0.1:9100 (a /status suffix is accepted)"
        ),
    )
    p_mon.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="poll period (default: 1s)",
    )
    p_mon.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )
    p_mon.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="per-request HTTP timeout",
    )
    p_mon.add_argument(
        "--max-failures",
        type=int,
        default=5,
        metavar="N",
        help=(
            "give up after this many consecutive unreachable polls "
            "(the campaign probably exited)"
        ),
    )
    p_mon.set_defaults(func=_cmd_monitor)

    p_serve = sub.add_parser(
        "serve",
        help=(
            "run the multi-tenant campaign server: accepts JSON "
            "submissions over HTTP and schedules many campaigns "
            "fairly over one shared worker fleet"
        ),
    )
    p_serve.add_argument(
        "root",
        help=(
            "service state directory (campaign journals, specs, and "
            "the shared cross-campaign evaluation cache live here)"
        ),
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8321,
        help="HTTP port (0 binds an ephemeral port, printed on stderr)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    _add_backend_flags(p_serve)
    p_serve.add_argument(
        "--slots",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fleet-wide concurrent-evaluation cap (default: the "
            "backend's worker count)"
        ),
    )
    p_serve.add_argument(
        "--max-active",
        type=int,
        default=4,
        metavar="N",
        help="campaigns running concurrently; the rest queue (default 4)",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help=(
            "graceful-shutdown budget: how long SIGTERM waits for "
            "running campaigns to reach a generation boundary"
        ),
    )
    p_serve.add_argument(
        "--cache-failures",
        action="store_true",
        help="also memoize failed evaluations in the shared cache",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit a campaign to a running 'repro-hpo serve' server",
    )
    p_submit.add_argument(
        "config",
        nargs="?",
        default=None,
        help=(
            "JSON spec file: either a full submission ({tenant, "
            "config, problem}) or a bare campaign config ({n_runs, "
            "pop_size, ...}); omit to submit the defaults"
        ),
    )
    p_submit.add_argument(
        "--url",
        default="http://127.0.0.1:8321",
        help="campaign server base URL",
    )
    p_submit.add_argument(
        "--name", default=None, help="display name for the campaign"
    )
    p_submit.add_argument(
        "--tenant", default=None, help="tenant name to submit as"
    )
    p_submit.add_argument(
        "--weight",
        type=float,
        default=None,
        help="tenant fair-share weight (relative dispatch rate)",
    )
    p_submit.add_argument(
        "--max-in-flight",
        type=int,
        default=None,
        metavar="N",
        help="tenant quota: concurrent evaluations across its campaigns",
    )
    p_submit.add_argument(
        "--priority",
        type=int,
        default=None,
        help="tenant priority class (lower dispatches first)",
    )
    p_submit.add_argument(
        "--watch",
        action="store_true",
        help="poll until the campaign finishes and print its front",
    )
    p_submit.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="--watch poll period",
    )
    p_submit.set_defaults(func=_cmd_submit)

    p_list = sub.add_parser(
        "campaigns", help="list campaigns on a running server"
    )
    p_list.add_argument(
        "--url",
        default="http://127.0.0.1:8321",
        help="campaign server base URL",
    )
    p_list.set_defaults(func=_cmd_campaigns)

    p_cancel = sub.add_parser(
        "cancel",
        help=(
            "cancel a campaign (stops at its next generation "
            "boundary; journaled work stays valid)"
        ),
    )
    p_cancel.add_argument("id", help="campaign id")
    p_cancel.add_argument(
        "--url",
        default="http://127.0.0.1:8321",
        help="campaign server base URL",
    )
    p_cancel.set_defaults(func=_cmd_cancel)

    p_sens = sub.add_parser(
        "sensitivity", help="OAT + Morris screening of the genes"
    )
    p_sens.add_argument("--seed", type=int, default=0)
    p_sens.add_argument("--points", type=int, default=11)
    p_sens.add_argument("--trajectories", type=int, default=25)
    p_sens.set_defaults(func=_cmd_sensitivity)

    p_nas = sub.add_parser(
        "nas", help="neural-architecture search (11-gene extension)"
    )
    p_nas.add_argument("--seed", type=int, default=0)
    p_nas.add_argument("--pop-size", type=int, default=60)
    p_nas.add_argument("--generations", type=int, default=6)
    p_nas.set_defaults(func=_cmd_nas)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Neural-architecture-search extension (the paper's future work).

§4: "model fidelity may also be further improved by incorporating
neural architecture searching on the two DeePMD neural networks".
This module extends the seven-gene representation with four
architecture genes — depth and width of the embedding and fitting
networks (the paper fixed them at {25, 50, 100} and {240, 240, 240}) —
and provides both a real evaluator (architecture genes reshape the
trained model) and a surrogate extension (capacity helps with
diminishing returns while inflating runtime).

Integer-valued architecture genes use the same trick as the
categorical genes: real-valued genome entries, decoded by flooring
into a discrete set, so Gaussian mutation applies uniformly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.evo.decoder import Decoder, floor_mod_choice
from repro.exceptions import DecodeError, TrainingDivergedError
from repro.hpo.landscape import (
    LandscapeCalibration,
    SurrogateDeepMDProblem,
)
from repro.hpo.representation import (
    _CATEGORICAL_CHOICES,
    _INIT_RANGES,
    _MUTATION_STD,
    GENE_NAMES,
)

#: The four architecture genes appended to the seven training genes.
NAS_GENE_NAMES: tuple[str, ...] = GENE_NAMES + (
    "embedding_depth",
    "embedding_width",
    "fitting_depth",
    "fitting_width",
)

_NAS_INIT_RANGES: dict[str, tuple[float, float]] = {
    **_INIT_RANGES,
    "embedding_depth": (1.0, 4.0),  # floors to 1..3 layers
    "embedding_width": (4.0, 33.0),  # floors to 4..32 units
    "fitting_depth": (1.0, 4.0),
    "fitting_width": (8.0, 65.0),
}

_NAS_MUTATION_STD: dict[str, float] = {
    **_MUTATION_STD,
    "embedding_depth": 0.25,
    "embedding_width": 2.0,
    "fitting_depth": 0.25,
    "fitting_width": 4.0,
}


class NASDecoder(Decoder):
    """Decode the 11-gene genome into a phenome dict.

    Training genes decode exactly as in the base representation;
    architecture genes floor to integers and are clipped into their
    valid sets so mutation at the boundary stays decodable.
    """

    def decode(self, genome: np.ndarray) -> dict[str, Any]:
        if len(genome) != len(NAS_GENE_NAMES):
            raise DecodeError(
                f"genome length {len(genome)} != "
                f"{len(NAS_GENE_NAMES)} NAS genes"
            )
        phenome: dict[str, Any] = {}
        for value, name in zip(genome, NAS_GENE_NAMES):
            choices = _CATEGORICAL_CHOICES.get(name)
            if choices is not None:
                phenome[name] = floor_mod_choice(float(value), choices)
            elif name in (
                "embedding_depth",
                "embedding_width",
                "fitting_depth",
                "fitting_width",
            ):
                lo, hi = _NAS_INIT_RANGES[name]
                v = int(math.floor(float(value)))
                phenome[name] = int(np.clip(v, int(lo), int(hi) - 1))
            else:
                phenome[name] = float(value)
        return phenome


class NASRepresentation:
    """Bounds/deviations/decoder for the 11-gene NAS genome."""

    gene_names = NAS_GENE_NAMES

    init_ranges: np.ndarray = np.array(
        [_NAS_INIT_RANGES[name] for name in NAS_GENE_NAMES]
    )
    bounds: np.ndarray = np.array(
        [_NAS_INIT_RANGES[name] for name in NAS_GENE_NAMES]
    )
    mutation_std: np.ndarray = np.array(
        [_NAS_MUTATION_STD[name] for name in NAS_GENE_NAMES]
    )

    @classmethod
    def decoder(cls) -> NASDecoder:
        return NASDecoder()

    @classmethod
    def architecture_of(cls, phenome: dict[str, Any]) -> dict[str, Any]:
        """The concrete network shapes a phenome describes.

        The embedding net doubles its width per layer from the base
        width (mirroring DeePMD's {25, 50, 100} progression); the
        fitting net repeats a constant width (like {240, 240, 240}).
        """
        emb = tuple(
            phenome["embedding_width"] * (2**i)
            for i in range(phenome["embedding_depth"])
        )
        fit = tuple(
            phenome["fitting_width"]
            for _ in range(phenome["fitting_depth"])
        )
        return {"embedding_widths": emb, "fitting_widths": fit}


@dataclass(frozen=True)
class NASCalibration:
    """Capacity terms added to the base landscape.

    Accuracy improves with log-capacity up to a plateau (diminishing
    returns), tiny networks underfit badly, and runtime grows with
    parameter count — so NAS exposes a genuine accuracy/runtime
    trade-off instead of "bigger is always better".
    """

    reference_params: float = 3000.0
    underfit_force_gain: float = 0.03
    underfit_energy_gain: float = 0.003
    overfit_force_gain: float = 0.0008
    runtime_per_kparam_minutes: float = 1.2


class NASSurrogateProblem(SurrogateDeepMDProblem):
    """Surrogate landscape over the 11-gene phenome."""

    def __init__(
        self,
        calibration: Optional[LandscapeCalibration] = None,
        nas_calibration: Optional[NASCalibration] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(calibration=calibration, **kwargs)
        self.nas = nas_calibration or NASCalibration()

    @staticmethod
    def _parameter_count(phenome: dict[str, Any]) -> float:
        arch = NASRepresentation.architecture_of(phenome)
        emb = arch["embedding_widths"]
        fit = arch["fitting_widths"]
        n = 0
        prev = 4  # descriptor input channels (s + species one-hot)
        for w in emb:
            n += prev * w + w
            prev = w
        m1 = emb[-1]
        prev = m1 * 4  # flattened D features (m2 = 4 nominal)
        for w in fit:
            n += prev * w + w
            prev = w
        n += prev + 1
        return float(n)

    def capacity_terms(
        self, phenome: dict[str, Any]
    ) -> tuple[float, float, float]:
        """(force penalty, energy penalty, runtime minutes added)."""
        nas = self.nas
        params = self._parameter_count(phenome)
        ratio = params / nas.reference_params
        log_ratio = math.log(max(ratio, 1e-9))
        if ratio < 1.0:
            # underfitting: penalty grows as capacity shrinks
            force_pen = nas.underfit_force_gain * log_ratio**2
            energy_pen = nas.underfit_energy_gain * log_ratio**2
        else:
            # mild overfitting/optimization drag for very large nets
            force_pen = nas.overfit_force_gain * log_ratio**2
            energy_pen = 0.0
        runtime_extra = nas.runtime_per_kparam_minutes * params / 1000.0
        return force_pen, energy_pen, runtime_extra

    def mean_objectives(
        self, phenome: dict[str, Any]
    ) -> tuple[float, float]:
        energy, force = super().mean_objectives(phenome)
        force_pen, energy_pen, _ = self.capacity_terms(phenome)
        return energy + energy_pen, force + force_pen

    def _sample_runtime(self, phenome, rng, failed):
        base = super()._sample_runtime(phenome, rng, failed)
        if failed:
            return base
        _, _, extra = self.capacity_terms(phenome)
        return base + extra


def run_nas_nsga2(
    problem: Optional[NASSurrogateProblem] = None,
    pop_size: int = 60,
    generations: int = 6,
    rng=None,
    client: Any = None,
):
    """Convenience driver: NSGA-II over the extended representation."""
    from repro.evo.algorithm import generational_nsga2
    from repro.evo.individual import RobustIndividual

    problem = problem or NASSurrogateProblem(seed=0)
    rep = NASRepresentation
    return generational_nsga2(
        problem=problem,
        init_ranges=rep.init_ranges,
        initial_std=rep.mutation_std,
        pop_size=pop_size,
        generations=generations,
        hard_bounds=rep.bounds,
        decoder=rep.decoder(),
        individual_cls=RobustIndividual,
        client=client,
        rng=rng,
    )

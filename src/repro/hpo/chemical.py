"""Chemical-accuracy criteria and solution selection (§3.2, Table 3).

"For training a molecular potential such that errors are within the
precision of the reference DFT, the trained network should yield
energy and force errors of below about 0.004 eV/atom and 0.04 eV/Å,
respectively."  The Pareto frontier is a *mathematical* optimum; the
paper stresses that chemically meaningful solutions must additionally
pass these physics-driven thresholds, and then picks representatives
by lowest force loss, lowest energy loss, and lowest runtime.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.evo.individual import Individual

#: §3.2 thresholds.
ENERGY_ACCURACY_EV_PER_ATOM: float = 0.004
FORCE_ACCURACY_EV_PER_A: float = 0.04


def chemically_accurate(
    individual: Individual,
    energy_threshold: float = ENERGY_ACCURACY_EV_PER_ATOM,
    force_threshold: float = FORCE_ACCURACY_EV_PER_A,
) -> bool:
    """Does this solution meet the DFT-precision requirements?

    Fitness layout is ``[energy RMSE, force RMSE]`` throughout the
    package; failed (MAXINT) individuals are never accurate.
    """
    if individual.fitness is None or not individual.is_viable:
        return False
    energy, force = float(individual.fitness[0]), float(
        individual.fitness[1]
    )
    return energy < energy_threshold and force < force_threshold


def filter_chemically_accurate(
    population: Sequence[Individual],
    energy_threshold: float = ENERGY_ACCURACY_EV_PER_ATOM,
    force_threshold: float = FORCE_ACCURACY_EV_PER_A,
) -> list[Individual]:
    """The blue-colored subset of the paper's Fig. 3."""
    return [
        ind
        for ind in population
        if chemically_accurate(ind, energy_threshold, force_threshold)
    ]


def select_representatives(
    population: Sequence[Individual],
    energy_threshold: float = ENERGY_ACCURACY_EV_PER_ATOM,
    force_threshold: float = FORCE_ACCURACY_EV_PER_A,
) -> dict[str, Optional[Individual]]:
    """Table 3's three selections among the chemically accurate set:
    lowest force loss, lowest energy loss, and lowest runtime.

    Entries are ``None`` when no accurate solution exists (or, for
    ``lowest_runtime``, when no accurate solution carries runtime
    metadata).
    """
    accurate = filter_chemically_accurate(
        population, energy_threshold, force_threshold
    )
    if not accurate:
        return {
            "lowest_force": None,
            "lowest_energy": None,
            "lowest_runtime": None,
        }
    lowest_force = min(accurate, key=lambda ind: float(ind.fitness[1]))
    lowest_energy = min(accurate, key=lambda ind: float(ind.fitness[0]))
    with_runtime = [
        ind
        for ind in accurate
        if np.isfinite(ind.metadata.get("runtime_minutes", np.nan))
    ]
    lowest_runtime = (
        min(
            with_runtime,
            key=lambda ind: float(ind.metadata["runtime_minutes"]),
        )
        if with_runtime
        else None
    )
    return {
        "lowest_force": lowest_force,
        "lowest_energy": lowest_energy,
        "lowest_runtime": lowest_runtime,
    }

"""The customized NSGA-II deployment for DeePMD tuning (§2.2.3).

Thin configuration layer over :func:`repro.evo.algorithm.generational_nsga2`
that wires in the paper's choices: the seven-gene representation with
Table 1 ranges and deviations, robust (MAXINT-on-failure) individuals,
the Listing 1 pipeline, the ×0.85 per-generation mutation annealing,
and the rank-ordinal non-dominated sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from repro.context import Context
from repro.evo.algorithm import GenerationRecord, generational_nsga2
from repro.evo.asynchronous import (
    SteadyStateRecord,
    steady_state_as_generations,
    steady_state_nsga2,
)
from repro.evo.individual import RobustIndividual
from repro.evo.problem import Problem
from repro.evo.pso import PSOResumeState, multi_objective_pso
from repro.evo.surrogate import (
    SurrogateResumeState,
    surrogate_assisted_search,
)
from repro.hpo.representation import DeepMDRepresentation
from repro.mo.stopping import HypervolumeStopper
from repro.rng import RngLike


@dataclass
class NSGA2Settings:
    """Run-scale knobs (paper values: pop 100 = one per Summit node,
    6 EA steps after the random generation, anneal 0.85).

    ``dedup_within_generation`` collapses genome-identical offspring to
    a single training per generation; duplicates receive a copy of the
    shared result.  For deterministic evaluators this changes nothing
    but the training count.
    """

    pop_size: int = 100
    generations: int = 6
    anneal_factor: float = 0.85
    sort_algorithm: str = "rank_ordinal"
    dedup_within_generation: bool = True
    #: route each generation through the engine's batch data plane
    #: (bit-identical results; a throughput choice)
    batch_evals: bool = False
    #: overlap generation-commit bookkeeping with the next
    #: generation's evaluations (implies ``batch_evals``)
    pipeline: bool = False
    #: fresh evaluations per backend chunk (None: backend's hint)
    batch_chunk: Optional[int] = None
    #: hypervolume early stop: halt once the relative HV gain stays
    #: below ``hv_stop_eps`` for ``hv_stop_patience`` consecutive
    #: generations (None disables; stopped runs are bit-identical to
    #: the same-length prefix of unstopped ones)
    hv_stop_eps: Optional[float] = None
    hv_stop_patience: int = 2

    def stopper(self) -> Optional[HypervolumeStopper]:
        """A fresh per-run stopper, or None when early stop is off."""
        if self.hv_stop_eps is None:
            return None
        return HypervolumeStopper(
            eps=self.hv_stop_eps, patience=self.hv_stop_patience
        )


def run_deepmd_nsga2(
    problem: Problem,
    settings: Optional[NSGA2Settings] = None,
    client: Any = None,
    rng: RngLike = None,
    callback: Optional[Callable[[GenerationRecord], None]] = None,
    tracer: Any = None,
    journal: Any = None,
    resume_from: Any = None,
) -> list[GenerationRecord]:
    """One EA deployment over the DeePMD hyperparameter space.

    ``problem`` is either the real :class:`DeepMDProblem` or the
    surrogate :class:`SurrogateDeepMDProblem`; both consume the decoded
    seven-gene phenome dict.  ``journal``/``resume_from`` are the
    durable-state hooks of :mod:`repro.store` (see
    :func:`repro.evo.algorithm.generational_nsga2`).
    """
    settings = settings or NSGA2Settings()
    rep = DeepMDRepresentation
    return generational_nsga2(
        problem=problem,
        init_ranges=rep.init_ranges,
        initial_std=rep.mutation_std,
        pop_size=settings.pop_size,
        generations=settings.generations,
        hard_bounds=rep.bounds,
        decoder=rep.decoder(),
        individual_cls=RobustIndividual,
        client=client,
        anneal_factor=settings.anneal_factor,
        sort_algorithm=settings.sort_algorithm,
        rng=rng,
        context=Context(),
        callback=callback,
        tracer=tracer,
        dedup=settings.dedup_within_generation,
        journal=journal,
        resume_from=resume_from,
        batch=settings.batch_evals,
        pipeline=settings.pipeline,
        batch_chunk=settings.batch_chunk,
        stopper=settings.stopper(),
    )


def run_deepmd_steady_state(
    problem: Problem,
    settings: Optional[NSGA2Settings] = None,
    client: Any = None,
    rng: RngLike = None,
    callback: Optional[Callable[[GenerationRecord], None]] = None,
    tracer: Any = None,
    journal: Any = None,
    raw_record: Optional[list[SteadyStateRecord]] = None,
) -> list[GenerationRecord]:
    """One asynchronous steady-state deployment (§2.2.5) over the same
    space, budget, and knobs as :func:`run_deepmd_nsga2`.

    The budget is ``pop_size * (generations + 1)`` — the generational
    campaign's training count — and the result is rendered as
    pseudo-generations (one per annealing window) so the §3 analysis
    stack consumes either mode unchanged.  ``journal`` receives every
    completed evaluation as it finishes (via the evaluation engine)
    plus the pseudo-generation records at the end of the run.
    ``raw_record``, if given, is a list the underlying
    :class:`SteadyStateRecord` is appended to — the honest accounting
    (fresh vs cache vs dedup) for callers that report it.
    """
    settings = settings or NSGA2Settings()
    rep = DeepMDRepresentation
    record = steady_state_nsga2(
        problem=problem,
        init_ranges=rep.init_ranges,
        initial_std=rep.mutation_std,
        pop_size=settings.pop_size,
        max_evaluations=settings.pop_size * (settings.generations + 1),
        client=client,
        hard_bounds=rep.bounds,
        decoder=rep.decoder(),
        individual_cls=RobustIndividual,
        anneal_factor=settings.anneal_factor,
        rng=rng,
        journal=journal,
        tracer=tracer,
        stopper=settings.stopper(),
    )
    if raw_record is not None:
        raw_record.append(record)
    records = steady_state_as_generations(
        record,
        pop_size=settings.pop_size,
        initial_std=rep.mutation_std,
        anneal_factor=settings.anneal_factor,
    )
    for rec in records:
        if journal is not None:
            journal.append_generation(rec)
        if callback is not None:
            callback(rec)
    return records


def run_deepmd_pso(
    problem: Problem,
    settings: Optional[NSGA2Settings] = None,
    client: Any = None,
    rng: RngLike = None,
    callback: Optional[Callable[[GenerationRecord], None]] = None,
    tracer: Any = None,
    journal: Any = None,
    resume_from: Optional[PSOResumeState] = None,
) -> list[GenerationRecord]:
    """One multi-objective PSO deployment (Natarajan & Caro) over the
    same space, budget, and engine contract as
    :func:`run_deepmd_nsga2`: ``pop_size`` particles for
    ``generations`` swarm moves after the random initialization, with
    the same journal/cache/resume/chaos semantics.
    """
    settings = settings or NSGA2Settings()
    rep = DeepMDRepresentation
    return multi_objective_pso(
        problem=problem,
        init_ranges=rep.init_ranges,
        initial_std=rep.mutation_std,
        pop_size=settings.pop_size,
        iterations=settings.generations,
        hard_bounds=rep.bounds,
        decoder=rep.decoder(),
        individual_cls=RobustIndividual,
        client=client,
        rng=rng,
        callback=callback,
        tracer=tracer,
        dedup=settings.dedup_within_generation,
        journal=journal,
        resume_from=resume_from,
        batch_chunk=settings.batch_chunk,
        stopper=settings.stopper(),
    )


def run_deepmd_surrogate(
    problem: Problem,
    settings: Optional[NSGA2Settings] = None,
    client: Any = None,
    rng: RngLike = None,
    callback: Optional[Callable[[GenerationRecord], None]] = None,
    tracer: Any = None,
    journal: Any = None,
    resume_from: Optional[SurrogateResumeState] = None,
) -> list[GenerationRecord]:
    """One surrogate-assisted acquisition deployment (RBF surrogate +
    greedy predicted-hypervolume-improvement batches) over the same
    space, budget, and engine contract as :func:`run_deepmd_nsga2`.
    """
    settings = settings or NSGA2Settings()
    rep = DeepMDRepresentation
    return surrogate_assisted_search(
        problem=problem,
        init_ranges=rep.init_ranges,
        initial_std=rep.mutation_std,
        pop_size=settings.pop_size,
        iterations=settings.generations,
        hard_bounds=rep.bounds,
        decoder=rep.decoder(),
        individual_cls=RobustIndividual,
        client=client,
        rng=rng,
        callback=callback,
        tracer=tracer,
        dedup=settings.dedup_within_generation,
        journal=journal,
        resume_from=resume_from,
        batch_chunk=settings.batch_chunk,
        stopper=settings.stopper(),
    )

"""Hyperparameter sensitivity analysis.

§2.2.1 motivates the seven searched genes with "initial sensitivity
testing and simulation considerations".  This module makes that step a
first-class, repeatable analysis:

:func:`one_at_a_time`
    Sweep each gene across its initialization range around a baseline
    phenome and record both objectives — the classic OAT profile.

:func:`morris_screening`
    Morris elementary-effects screening: randomized OAT trajectories
    yielding ``mu*`` (mean absolute effect — overall importance) and
    ``sigma`` (effect standard deviation — interaction/nonlinearity)
    per gene.  The standard budget-frugal global screening method,
    appropriate exactly where the paper stood: deciding which of many
    hyperparameters deserve a slot in the expensive search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.engine import call_problem, failure_fitness
from repro.evo.problem import Problem
from repro.exceptions import MAXINT
from repro.hpo.representation import DeepMDRepresentation, GENE_NAMES
from repro.rng import RngLike, ensure_rng


def _evaluate_genome(problem: Problem, genome: np.ndarray) -> np.ndarray:
    """Decode + evaluate, mapping failures to MAXINT (robust OAT)."""
    decoder = DeepMDRepresentation.decoder()
    try:
        fitness, _ = call_problem(problem, decoder.decode(genome))
        return fitness
    except Exception:  # noqa: BLE001 - same contract as the EA
        return failure_fitness(problem.n_objectives)


@dataclass
class OATProfile:
    """One gene's sweep."""

    gene: str
    values: np.ndarray
    energy: np.ndarray
    force: np.ndarray

    def force_range(self) -> float:
        """Spread of the force objective over the sweep (failures
        excluded) — a simple sensitivity score."""
        ok = self.force < MAXINT
        if not ok.any():
            return float("inf")
        return float(self.force[ok].max() - self.force[ok].min())


def one_at_a_time(
    problem: Problem,
    baseline: Optional[dict[str, Any]] = None,
    n_points: int = 11,
) -> list[OATProfile]:
    """Sweep each of the seven genes around ``baseline``.

    ``baseline`` defaults to a known-good configuration near the
    paper's selected solutions.
    """
    baseline = baseline or {
        "start_lr": 4e-3,
        "stop_lr": 1e-4,
        "rcut": 10.0,
        "rcut_smth": 2.5,
        "scale_by_worker": "none",
        "desc_activ_func": "tanh",
        "fitting_activ_func": "tanh",
    }
    base_genome = DeepMDRepresentation.encode(baseline)
    ranges = DeepMDRepresentation.init_ranges
    profiles: list[OATProfile] = []
    for g, gene in enumerate(GENE_NAMES):
        lo, hi = ranges[g]
        values = np.linspace(lo, hi, n_points)
        energy = np.empty(n_points)
        force = np.empty(n_points)
        for k, v in enumerate(values):
            genome = base_genome.copy()
            genome[g] = v
            fitness = _evaluate_genome(problem, genome)
            energy[k], force[k] = fitness[0], fitness[1]
        profiles.append(
            OATProfile(gene=gene, values=values, energy=energy, force=force)
        )
    return profiles


@dataclass
class MorrisResult:
    """Elementary-effects screening summary (per gene, per objective)."""

    gene_names: tuple[str, ...]
    mu_star_energy: np.ndarray
    mu_star_force: np.ndarray
    sigma_force: np.ndarray
    trajectories: int = 0

    def ranking_by_force(self) -> list[str]:
        """Genes ordered from most to least influential on force."""
        order = np.argsort(-self.mu_star_force)
        return [self.gene_names[i] for i in order]


def morris_screening(
    problem: Problem,
    n_trajectories: int = 20,
    n_levels: int = 8,
    rng: RngLike = None,
) -> MorrisResult:
    """Morris (1991) randomized one-at-a-time screening.

    Each trajectory starts at a random lattice point of the scaled
    [0, 1]^7 input space and perturbs one gene at a time by
    ``delta = n_levels / (2 (n_levels - 1))``; the absolute elementary
    effects are averaged into ``mu*``.  Failed evaluations are skipped
    (they would swamp the statistics with MAXINT deltas) — failures
    are themselves a sensitivity signal, but a separate one.
    """
    gen = ensure_rng(rng)
    ranges = DeepMDRepresentation.init_ranges
    n_genes = len(GENE_NAMES)
    delta = n_levels / (2.0 * (n_levels - 1.0))
    effects_e: list[list[float]] = [[] for _ in range(n_genes)]
    effects_f: list[list[float]] = [[] for _ in range(n_genes)]

    def to_genome(x: np.ndarray) -> np.ndarray:
        return ranges[:, 0] + x * (ranges[:, 1] - ranges[:, 0])

    for _ in range(n_trajectories):
        # random base lattice point low enough that +delta stays inside
        levels = gen.integers(0, n_levels // 2, size=n_genes)
        x = levels / (n_levels - 1.0)
        f_prev = _evaluate_genome(problem, to_genome(x))
        order = gen.permutation(n_genes)
        for g in order:
            x_next = x.copy()
            x_next[g] += delta
            f_next = _evaluate_genome(problem, to_genome(x_next))
            if np.all(f_prev < MAXINT) and np.all(f_next < MAXINT):
                effects_e[g].append(
                    abs(f_next[0] - f_prev[0]) / delta
                )
                effects_f[g].append(
                    abs(f_next[1] - f_prev[1]) / delta
                )
            x, f_prev = x_next, f_next
    mu_e = np.array(
        [np.mean(e) if e else np.nan for e in effects_e]
    )
    mu_f = np.array(
        [np.mean(e) if e else np.nan for e in effects_f]
    )
    sigma_f = np.array(
        [np.std(e) if len(e) > 1 else np.nan for e in effects_f]
    )
    return MorrisResult(
        gene_names=GENE_NAMES,
        mu_star_energy=mu_e,
        mu_star_force=mu_f,
        sigma_force=sigma_f,
        trajectories=n_trajectories,
    )

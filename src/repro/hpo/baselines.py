"""Baseline hyperparameter-search strategies.

The paper motivates the EA against "the commonly used grid-based
search", noting that ten grid points per parameter would cost 10^7
evaluations versus the campaign's 3500 (§1, §3.1), and argues that a
*multiobjective* formulation is required because minimizing either
loss alone (or a fixed weighted sum) misses the energy–force coupling.
These baselines make both comparisons measurable:

:func:`grid_search`
    Full-factorial grid over the seven genes (optionally budgeted by
    subsampling the factorial lattice uniformly at random, since 10^7
    surrogate evaluations is wasteful even when cheap).
:func:`random_search`
    Bergstra & Bengio (2012) uniform random sampling.
:func:`weighted_sum_ea`
    A single-objective generational EA on ``w·energy + (1-w)·force``
    using the same mutation/annealing machinery as the NSGA-II
    deployment.

All three run their evaluations through
:class:`repro.engine.EvaluationEngine`, so a ``client`` fans a sweep
out across workers and a cached problem serves repeated phenomes
without retraining — the baselines compete against NSGA-II on equal
infrastructure, not just equal budgets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from repro.engine import EvaluationEngine, call_problem, call_problem_batch
from repro.evo import ops
from repro.evo.annealing import AnnealingSchedule
from repro.evo.decoder import MixedVectorDecoder
from repro.evo.individual import Individual, RobustIndividual
from repro.evo.problem import FunctionProblem, Problem, WithMetadataProblem
from repro.hpo.representation import DeepMDRepresentation
from repro.rng import RngLike, ensure_rng


@dataclass
class SearchResult:
    """Outcome of a baseline search.

    ``evaluations`` counts every candidate resolved (the search's
    nominal budget); ``fresh`` and ``cache_hits`` break out how many
    actually trained versus replayed from the evaluation cache.
    """

    evaluated: list[Individual]
    evaluations: int
    fresh: int = 0
    cache_hits: int = 0

    def fitness_matrix(self) -> np.ndarray:
        return np.asarray(
            [ind.fitness for ind in self.evaluated if ind.is_viable]
        )


def _make_individual(genome: np.ndarray, problem: Problem) -> Individual:
    ind = RobustIndividual(
        genome,
        decoder=DeepMDRepresentation.decoder(),
        problem=problem,
    )
    ind.n_objectives = problem.n_objectives
    return ind


def _engine_for(client: Any, engine: Optional[EvaluationEngine]):
    if engine is not None:
        return engine
    return EvaluationEngine(client=client, dedup=True, dedup_scope="run")


def _search_result(
    evaluated: list[Individual], engine: EvaluationEngine, before
) -> SearchResult:
    used = engine.stats.delta(before)
    return SearchResult(
        evaluated=evaluated,
        evaluations=used.completed,
        fresh=used.fresh,
        cache_hits=used.cache_hits,
    )


def grid_search(
    problem: Problem,
    points_per_gene: int = 10,
    budget: Optional[int] = None,
    rng: RngLike = None,
    client: Any = None,
    engine: Optional[EvaluationEngine] = None,
) -> SearchResult:
    """Full-factorial grid over the Table 1 ranges.

    With 7 genes and 10 points each the lattice holds 10^7 nodes —
    the paper's "brute-force" figure.  ``budget`` caps the number of
    lattice nodes actually evaluated by sampling them uniformly
    without replacement, preserving the grid's coverage
    characteristics while making the comparison computable.
    """
    if points_per_gene < 2:
        raise ValueError("need at least two points per gene")
    gen = ensure_rng(rng)
    ranges = DeepMDRepresentation.init_ranges
    axes = [
        np.linspace(lo, hi, points_per_gene) for lo, hi in ranges
    ]
    total = points_per_gene ** len(axes)
    if budget is None or budget >= total:
        lattice = itertools.product(*axes)
        genomes = (np.array(node) for node in lattice)
    else:
        flat = gen.choice(total, size=budget, replace=False)
        n = points_per_gene

        def node(index: int) -> np.ndarray:
            coords = []
            for axis in reversed(axes):
                coords.append(axis[index % n])
                index //= n
            return np.array(list(reversed(coords)))

        genomes = (node(int(i)) for i in flat)
    eng = _engine_for(client, engine)
    before = eng.stats.copy()
    evaluated = eng.evaluate(
        [_make_individual(g, problem) for g in genomes]
    )
    return _search_result(evaluated, eng, before)


def random_search(
    problem: Problem,
    budget: int,
    rng: RngLike = None,
    client: Any = None,
    engine: Optional[EvaluationEngine] = None,
) -> SearchResult:
    """Uniform random sampling within the initialization ranges."""
    gen = ensure_rng(rng)
    ranges = DeepMDRepresentation.init_ranges
    eng = _engine_for(client, engine)
    before = eng.stats.copy()
    evaluated = eng.evaluate(
        [
            _make_individual(
                gen.uniform(ranges[:, 0], ranges[:, 1]), problem
            )
            for _ in range(budget)
        ]
    )
    return _search_result(evaluated, eng, before)


def weighted_sum_ea(
    problem: Problem,
    weight_energy: float = 0.5,
    pop_size: int = 50,
    generations: int = 6,
    anneal_factor: float = 0.85,
    rng: RngLike = None,
    client: Any = None,
    engine: Optional[EvaluationEngine] = None,
) -> SearchResult:
    """Single-objective EA on a fixed weighted sum of the two losses.

    Because energy (eV/atom) and force (eV/Å) errors live on different
    scales and trade off, any fixed weighting collapses the frontier to
    one point — this baseline exists to demonstrate what the
    multiobjective formulation buys.
    """
    if not 0.0 <= weight_energy <= 1.0:
        raise ValueError("weight_energy must be in [0, 1]")
    gen = ensure_rng(rng)

    scalar = _WeightedSumProblem(problem, weight_energy)
    ranges = DeepMDRepresentation.init_ranges
    schedule = AnnealingSchedule(
        DeepMDRepresentation.mutation_std, factor=anneal_factor
    )
    eng = _engine_for(client, engine)
    before = eng.stats.copy()
    population = eng.evaluate(
        [
            _make_individual(
                gen.uniform(ranges[:, 0], ranges[:, 1]), scalar
            )
            for _ in range(pop_size)
        ]
    )
    evaluated = list(population)
    for _ in range(generations):
        offspring = ops.pipe(
            population,
            lambda pop: ops.tournament_selection(pop, rng=gen),
            ops.clone,
            ops.mutate_gaussian(
                std=schedule.current,
                hard_bounds=DeepMDRepresentation.bounds,
                rng=gen,
            ),
            ops.eval_pool(size=pop_size, engine=eng),
        )
        evaluated.extend(offspring)
        population = ops.truncation_selection(size=pop_size)(
            population + offspring
        )
        schedule.step()
    return _search_result(evaluated, eng, before)


class _WeightedSumProblem(WithMetadataProblem):
    """Scalarized view of a two-objective problem.

    The underlying objective vector is preserved in the individual's
    metadata (key ``"objectives"``) so comparisons against
    multiobjective strategies remain possible after the collapse.
    """

    n_objectives = 1

    def __init__(self, problem: Problem, weight_energy: float) -> None:
        self.problem = problem
        self.weight_energy = float(weight_energy)

    def _scalarize(self, fitness, meta):
        # normalize scales: energy errors are roughly 10x smaller
        scalar = np.array(
            [
                self.weight_energy * fitness[0] * 10.0
                + (1.0 - self.weight_energy) * fitness[1]
            ]
        )
        meta = dict(meta)
        meta["objectives"] = np.asarray(fitness, dtype=np.float64)
        return scalar, meta

    def evaluate_with_metadata(self, phenome, uuid=None):
        fitness, meta = call_problem(self.problem, phenome, uuid=uuid)
        return self._scalarize(fitness, meta)

    def evaluate_batch_with_metadata(self, phenomes, uuids=None):
        """Scalarize each slot of the inner problem's batch outcome;
        failed slots (exception instances) pass through untouched."""
        inner = call_problem_batch(self.problem, phenomes, uuids=uuids)
        return [
            slot
            if isinstance(slot, BaseException)
            else self._scalarize(*slot)
            for slot in inner
        ]

"""Baseline hyperparameter-search strategies.

The paper motivates the EA against "the commonly used grid-based
search", noting that ten grid points per parameter would cost 10^7
evaluations versus the campaign's 3500 (§1, §3.1), and argues that a
*multiobjective* formulation is required because minimizing either
loss alone (or a fixed weighted sum) misses the energy–force coupling.
These baselines make both comparisons measurable:

:func:`grid_search`
    Full-factorial grid over the seven genes (optionally budgeted by
    subsampling the factorial lattice uniformly at random, since 10^7
    surrogate evaluations is wasteful even when cheap).
:func:`random_search`
    Bergstra & Bengio (2012) uniform random sampling.
:func:`weighted_sum_ea`
    A single-objective generational EA on ``w·energy + (1-w)·force``
    using the same mutation/annealing machinery as the NSGA-II
    deployment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.evo import ops
from repro.evo.annealing import AnnealingSchedule
from repro.evo.decoder import MixedVectorDecoder
from repro.evo.individual import Individual, RobustIndividual
from repro.evo.problem import FunctionProblem, Problem
from repro.hpo.representation import DeepMDRepresentation
from repro.rng import RngLike, ensure_rng


@dataclass
class SearchResult:
    """Outcome of a baseline search."""

    evaluated: list[Individual]
    evaluations: int

    def fitness_matrix(self) -> np.ndarray:
        return np.asarray(
            [ind.fitness for ind in self.evaluated if ind.is_viable]
        )


def _make_individual(genome: np.ndarray, problem: Problem) -> Individual:
    ind = RobustIndividual(
        genome,
        decoder=DeepMDRepresentation.decoder(),
        problem=problem,
    )
    ind.n_objectives = problem.n_objectives
    return ind


def grid_search(
    problem: Problem,
    points_per_gene: int = 10,
    budget: Optional[int] = None,
    rng: RngLike = None,
) -> SearchResult:
    """Full-factorial grid over the Table 1 ranges.

    With 7 genes and 10 points each the lattice holds 10^7 nodes —
    the paper's "brute-force" figure.  ``budget`` caps the number of
    lattice nodes actually evaluated by sampling them uniformly
    without replacement, preserving the grid's coverage
    characteristics while making the comparison computable.
    """
    if points_per_gene < 2:
        raise ValueError("need at least two points per gene")
    gen = ensure_rng(rng)
    ranges = DeepMDRepresentation.init_ranges
    axes = [
        np.linspace(lo, hi, points_per_gene) for lo, hi in ranges
    ]
    total = points_per_gene ** len(axes)
    if budget is None or budget >= total:
        lattice = itertools.product(*axes)
        genomes = (np.array(node) for node in lattice)
        n_eval = total
    else:
        flat = gen.choice(total, size=budget, replace=False)
        n = points_per_gene

        def node(index: int) -> np.ndarray:
            coords = []
            for axis in reversed(axes):
                coords.append(axis[index % n])
                index //= n
            return np.array(list(reversed(coords)))

        genomes = (node(int(i)) for i in flat)
        n_eval = budget
    evaluated = [
        _make_individual(g, problem).evaluate() for g in genomes
    ]
    return SearchResult(evaluated=evaluated, evaluations=n_eval)


def random_search(
    problem: Problem, budget: int, rng: RngLike = None
) -> SearchResult:
    """Uniform random sampling within the initialization ranges."""
    gen = ensure_rng(rng)
    ranges = DeepMDRepresentation.init_ranges
    evaluated = []
    for _ in range(budget):
        genome = gen.uniform(ranges[:, 0], ranges[:, 1])
        evaluated.append(_make_individual(genome, problem).evaluate())
    return SearchResult(evaluated=evaluated, evaluations=budget)


def weighted_sum_ea(
    problem: Problem,
    weight_energy: float = 0.5,
    pop_size: int = 50,
    generations: int = 6,
    anneal_factor: float = 0.85,
    rng: RngLike = None,
) -> SearchResult:
    """Single-objective EA on a fixed weighted sum of the two losses.

    Because energy (eV/atom) and force (eV/Å) errors live on different
    scales and trade off, any fixed weighting collapses the frontier to
    one point — this baseline exists to demonstrate what the
    multiobjective formulation buys.
    """
    if not 0.0 <= weight_energy <= 1.0:
        raise ValueError("weight_energy must be in [0, 1]")
    gen = ensure_rng(rng)

    scalar = _WeightedSumProblem(problem, weight_energy)
    ranges = DeepMDRepresentation.init_ranges
    schedule = AnnealingSchedule(
        DeepMDRepresentation.mutation_std, factor=anneal_factor
    )
    population = []
    for _ in range(pop_size):
        genome = gen.uniform(ranges[:, 0], ranges[:, 1])
        population.append(_make_individual(genome, scalar).evaluate())
    evaluated = list(population)
    for _ in range(generations):
        offspring = ops.pipe(
            population,
            lambda pop: ops.tournament_selection(pop, rng=gen),
            ops.clone,
            ops.mutate_gaussian(
                std=schedule.current,
                hard_bounds=DeepMDRepresentation.bounds,
                rng=gen,
            ),
            ops.pool(pop_size),
        )
        offspring = [ind.evaluate() for ind in offspring]
        evaluated.extend(offspring)
        population = ops.truncation_selection(size=pop_size)(
            population + offspring
        )
        schedule.step()
    return SearchResult(
        evaluated=evaluated, evaluations=pop_size * (generations + 1)
    )


class _WeightedSumProblem(Problem):
    """Scalarized view of a two-objective problem.

    The underlying objective vector is preserved in the individual's
    metadata (key ``"objectives"``) so comparisons against
    multiobjective strategies remain possible after the collapse.
    """

    n_objectives = 1

    def __init__(self, problem: Problem, weight_energy: float) -> None:
        self.problem = problem
        self.weight_energy = float(weight_energy)

    def evaluate_with_metadata(self, phenome, uuid=None):
        if hasattr(self.problem, "evaluate_with_metadata"):
            fitness, meta = self.problem.evaluate_with_metadata(
                phenome, uuid=uuid
            )
        else:
            fitness, meta = self.problem.evaluate(phenome), {}
        # normalize scales: energy errors are roughly 10x smaller
        scalar = np.array(
            [
                self.weight_energy * fitness[0] * 10.0
                + (1.0 - self.weight_energy) * fitness[1]
            ]
        )
        meta = dict(meta)
        meta["objectives"] = np.asarray(fitness, dtype=np.float64)
        return scalar, meta

    def evaluate(self, phenome) -> np.ndarray:
        scalar, _ = self.evaluate_with_metadata(phenome)
        return scalar

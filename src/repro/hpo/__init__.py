"""The paper's contribution: NSGA-II hyperparameter optimization for
deep-potential training.

Everything in §2.2 and §3 lives here:

* :mod:`repro.hpo.representation` — the seven-gene real-valued
  representation with Table 1's initialization ranges and mutation
  standard deviations, and the floor-modulus decoding of the three
  categorical genes;
* :mod:`repro.hpo.evaluator` — the §2.2.4 fitness-evaluation workflow
  against the *real* (scaled-down) DeepPot-SE trainer;
* :mod:`repro.hpo.landscape` — the calibrated surrogate
  hyperparameter→(energy RMSE, force RMSE, runtime, failure) response
  surface used for full-scale campaign benchmarks (the substitution
  for 3500 × 2 GPU-hours; see DESIGN.md);
* :mod:`repro.hpo.driver` — the customized NSGA-II deployment
  (Listing 1 pipeline + ×0.85 mutation annealing);
* :mod:`repro.hpo.campaign` — five independent EA runs and their
  aggregation, as in §3;
* :mod:`repro.hpo.chemical` — chemical-accuracy filtering and the
  Table 3 solution selection;
* :mod:`repro.hpo.baselines` — grid search, random search, and the
  weighted-sum single-objective EA the multiobjective approach is
  motivated against.
"""

from repro.hpo.representation import (
    GENE_NAMES,
    DeepMDRepresentation,
)
from repro.hpo.evaluator import DeepMDProblem, EvaluatorSettings
from repro.hpo.landscape import (
    LandscapeCalibration,
    SurrogateDeepMDProblem,
)
from repro.hpo.driver import NSGA2Settings, run_deepmd_nsga2
from repro.hpo.campaign import Campaign, CampaignConfig, CampaignResult
from repro.hpo.chemical import (
    ENERGY_ACCURACY_EV_PER_ATOM,
    FORCE_ACCURACY_EV_PER_A,
    chemically_accurate,
    filter_chemically_accurate,
    select_representatives,
)
from repro.hpo.baselines import (
    grid_search,
    random_search,
    weighted_sum_ea,
)
from repro.hpo.nas import (
    NASRepresentation,
    NASSurrogateProblem,
    run_nas_nsga2,
)

__all__ = [
    "GENE_NAMES",
    "DeepMDRepresentation",
    "DeepMDProblem",
    "EvaluatorSettings",
    "SurrogateDeepMDProblem",
    "LandscapeCalibration",
    "NSGA2Settings",
    "run_deepmd_nsga2",
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "FORCE_ACCURACY_EV_PER_A",
    "ENERGY_ACCURACY_EV_PER_ATOM",
    "chemically_accurate",
    "filter_chemically_accurate",
    "select_representatives",
    "grid_search",
    "random_search",
    "weighted_sum_ea",
    "NASRepresentation",
    "NASSurrogateProblem",
    "run_nas_nsga2",
]

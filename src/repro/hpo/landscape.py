"""Calibrated surrogate response surface for campaign-scale benchmarks.

One paper-scale campaign is 5 runs × 7 generations × 100 individuals =
3500 DeePMD trainings of 2 GPU-hours each — unavailable here.  The
figures and tables of §3, however, depend only on the *shape* of the
hyperparameter → (energy RMSE, force RMSE, runtime, failure) mapping.
This module provides that mapping as an analytic response surface whose
structure is mechanistic (each term mirrors how the hyperparameter acts
in real training) and whose constants are calibrated to the paper's
reported findings:

* **Effective learning rate.**  The worker-scaling gene multiplies
  ``start_lr`` by {6, √6, 1} for {linear, sqrt, none} (6 GPUs per
  node); accuracy follows a log-quadratic basin around an effective
  start rate of ≈4e-3.  This mechanistically yields the paper's
  finding that "none"/"sqrt" produce more chemically accurate
  solutions: linear scaling pushes otherwise-good start rates out of
  the basin.
* **Radial cutoff.**  Larger ``rcut`` captures longer-ranged
  interactions in the charged melt; error decays exponentially with
  ``rcut`` such that chemical force accuracy (≤0.04 eV/Å) requires
  ``rcut ≳ 8.5 Å`` (§3.2) — while runtime grows as ``rcut³``.
* **Smoothing radius.**  A mild, force-sided penalty grows with
  ``rcut_smth`` (the paper sees accurate solutions densest below
  4.5 Å but spread across the range).
* **Activations.**  Fitting-net relu/relu6 carry penalties large
  enough that they drop off the frontier entirely; descriptor sigmoid
  carries a force penalty that excludes it from the chemically
  accurate set; tanh/softplus are neutral (§3.2).
* **Energy/force trade-off.**  The loss prefactors interpolate with
  ``f_end = stop_lr / eff_start_lr``: a larger final ratio keeps the
  force term dominant to the end (better force, worse energy) and
  vice versa — the mechanism that produces a genuine Pareto frontier
  rather than a single optimum.
* **Failures.**  Configurations with ``rcut_smth ≥ rcut`` are
  undefined; effective start rates ≳0.03 diverge; plus a small
  background failure rate.  Failed trainings return ``MAXINT`` fitness
  upstream and a short runtime (§3.2 observed 25 early-generation
  failures in 3500 trainings and none in the final generations).
* **Noise.**  Multiplicative log-normal training stochasticity, seeded
  per evaluation.

The surface is cross-checked against real scaled-down trainings by
``benchmarks/bench_real_training.py`` where the scaled-down system can
express the effect: training reduces force error, extreme learning
rates diverge, invalid radii fail, worker scaling multiplies the
schedule, and runtime grows with ``rcut``.  One term is *not*
verifiable at toy scale and is encoded from the paper's physics
instead: the accuracy gain of large ``rcut`` exists because the real
160-atom DFT melt has charged interactions beyond 8 Å, whereas the
scaled-down reference force field is truncated near 4.4 Å (half the
small box), so its training data contains no long-range signal for a
bigger descriptor cutoff to capture.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.evo.problem import Problem
from repro.exceptions import TrainingDivergedError
from repro.hpc.runtime_model import TrainingRuntimeModel
from repro.nn.lr_schedule import scale_lr_by_workers
from repro.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class LandscapeCalibration:
    """Constants of the response surface (defaults fit §3's numbers)."""

    # best achievable errors (frontier anchors, Table 2)
    force_floor: float = 0.0345
    energy_floor: float = 0.00025
    # learning-rate basin (log10 of effective start rate); asymmetric:
    # an effectively untrained model (tiny LR) degrades to data-RMS
    # force errors fast, while slightly-too-large rates degrade gently
    lr_optimum_log10: float = -2.4  # ≈ 4e-3
    lr_width_log10: float = 1.3  # above the optimum
    lr_width_low_log10: float = 0.8  # below the optimum (undertraining)
    lr_force_gain: float = 0.09
    lr_energy_gain: float = 0.012
    # stop-lr basin (log10), optimum at the top of the searched range
    stop_lr_optimum_log10: float = -4.0
    stop_lr_width_log10: float = 2.0
    stop_lr_force_gain: float = 0.004
    stop_lr_energy_gain: float = 0.0008
    # radial cutoff: error decays with rcut, length scale in Å
    rcut_force_gain: float = 0.06
    rcut_energy_gain: float = 0.004
    rcut_length: float = 0.85
    rcut_ref: float = 6.0
    # smoothing radius: linear force-sided penalty above 2 Å
    smth_force_gain: float = 0.0012
    smth_energy_gain: float = 0.0001
    # activation penalties (force, energy)
    fitting_relu_penalty: tuple[float, float] = (0.035, 0.004)
    fitting_relu6_penalty: tuple[float, float] = (0.025, 0.003)
    desc_sigmoid_penalty: tuple[float, float] = (0.012, 0.0008)
    desc_relu_penalty: tuple[float, float] = (0.006, 0.0004)
    desc_relu6_penalty: tuple[float, float] = (0.004, 0.0003)
    # energy/force trade-off driven by the final prefactor fraction
    tradeoff_force_span: float = 0.0045
    tradeoff_energy_span: float = 0.0018
    # training stochasticity (log-normal sigmas): independent jitter per
    # objective plus a shared anti-correlated component modelling where
    # along the energy/force balance an individual run happens to land
    force_noise: float = 0.015
    energy_noise: float = 0.10
    balance_noise_energy: float = 0.15
    balance_noise_force: float = 0.02
    # failure model: hard divergence above the threshold, a risky band
    # below it where divergence is stochastic, plus a small background
    lr_divergence_threshold: float = 0.08
    lr_risky_threshold: float = 0.03
    lr_risky_failure_rate: float = 0.15
    background_failure_rate: float = 0.002


class SurrogateDeepMDProblem(Problem):
    """Drop-in replacement for :class:`repro.hpo.evaluator.DeepMDProblem`.

    Evaluations are deterministic given the problem seed and the
    phenome (noise is drawn from a per-evaluation stream derived from
    both), so campaign results are exactly reproducible regardless of
    evaluation order or parallelism.
    """

    n_objectives = 2

    def __init__(
        self,
        calibration: Optional[LandscapeCalibration] = None,
        n_workers: int = 6,
        rng: RngLike = None,
        seed: int = 0,
        simulate_runtime: bool = True,
    ) -> None:
        self.calibration = calibration or LandscapeCalibration()
        self.n_workers = int(n_workers)
        self.seed = int(seed)
        self.simulate_runtime = simulate_runtime
        self._runtime_model = TrainingRuntimeModel(rng=ensure_rng(seed))
        self._lock = threading.Lock()
        self.evaluations = 0
        self.failures = 0

    def __getstate__(self) -> dict[str, Any]:
        """Spawn-safe pickling for the process-pool backend: the lock
        stays behind (each process gets its own)."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def cache_fingerprint(self) -> dict[str, Any]:
        """Identity for the evaluation cache: the surface is fully
        determined by the calibration constants, the worker count, and
        the problem seed (which seeds the per-phenome noise)."""
        from dataclasses import asdict

        return {
            "problem": "surrogate",
            "seed": self.seed,
            "n_workers": self.n_workers,
            "simulate_runtime": self.simulate_runtime,
            "calibration": asdict(self.calibration),
        }

    # ------------------------------------------------------------------
    def _eval_rng(self, phenome: dict[str, Any]) -> np.random.Generator:
        """Per-evaluation RNG: hash of the phenome plus the problem seed.

        Uses a *process-stable* hash for strings (``zlib.crc32``) —
        Python's built-in ``hash`` is salted per interpreter, which
        would make campaign results irreproducible across runs.
        """
        import zlib

        key_parts = [self.seed]
        for name in sorted(phenome):
            v = phenome[name]
            if isinstance(v, float):
                key_parts.append(np.float64(v).view(np.uint64))
            else:
                key_parts.append(zlib.crc32(str(v).encode("utf-8")))
        ss = np.random.SeedSequence([int(p) % (2**32) for p in key_parts])
        return np.random.default_rng(ss)

    def effective_start_lr(self, phenome: dict[str, Any]) -> float:
        return scale_lr_by_workers(
            phenome["start_lr"], self.n_workers, phenome["scale_by_worker"]
        )

    def mean_objectives(
        self, phenome: dict[str, Any]
    ) -> tuple[float, float]:
        """Noise-free (energy RMSE, force RMSE) at a phenome.

        Raises :class:`TrainingDivergedError` for configurations in
        the deterministic failure region.
        """
        c = self.calibration
        if phenome["rcut_smth"] >= phenome["rcut"]:
            raise TrainingDivergedError(
                "rcut_smth >= rcut: descriptor undefined"
            )
        eff_lr = self.effective_start_lr(phenome)
        if eff_lr <= 0 or phenome["stop_lr"] <= 0:
            raise TrainingDivergedError("non-positive learning rate")
        if eff_lr > c.lr_divergence_threshold:
            raise TrainingDivergedError(
                f"effective start_lr {eff_lr:.3g} diverges"
            )
        # learning-rate basins (log-quadratic, asymmetric)
        log_eff = np.log10(eff_lr)
        lr_width = (
            c.lr_width_low_log10
            if log_eff < c.lr_optimum_log10
            else c.lr_width_log10
        )
        lr_term = ((log_eff - c.lr_optimum_log10) / lr_width) ** 2
        stop_term = (
            (np.log10(phenome["stop_lr"]) - c.stop_lr_optimum_log10)
            / c.stop_lr_width_log10
        ) ** 2
        # radial cutoff: exponential decay toward the floor
        rcut_decay = np.exp(
            -(phenome["rcut"] - c.rcut_ref) / c.rcut_length
        )
        # smoothing radius: linear growth above 2 Å
        smth_excess = max(phenome["rcut_smth"] - 2.0, 0.0)
        # activation penalties
        f_pen = e_pen = 0.0
        fit_act = phenome["fitting_activ_func"]
        if fit_act == "relu":
            f_pen += c.fitting_relu_penalty[0]
            e_pen += c.fitting_relu_penalty[1]
        elif fit_act == "relu6":
            f_pen += c.fitting_relu6_penalty[0]
            e_pen += c.fitting_relu6_penalty[1]
        desc_act = phenome["desc_activ_func"]
        if desc_act == "sigmoid":
            f_pen += c.desc_sigmoid_penalty[0]
            e_pen += c.desc_sigmoid_penalty[1]
        elif desc_act == "relu":
            f_pen += c.desc_relu_penalty[0]
            e_pen += c.desc_relu_penalty[1]
        elif desc_act == "relu6":
            f_pen += c.desc_relu6_penalty[0]
            e_pen += c.desc_relu6_penalty[1]
        # energy/force trade-off from the final prefactor fraction:
        # f_end = stop_lr / eff_start_lr in (0, 1]; large -> force-led
        f_end = min(phenome["stop_lr"] / eff_lr, 1.0)
        theta = (np.log10(max(f_end, 1e-8)) + 4.0) / 4.0
        theta = float(np.clip(theta, 0.0, 1.0))
        force = (
            c.force_floor
            + c.lr_force_gain * lr_term
            + c.stop_lr_force_gain * stop_term
            + c.rcut_force_gain * rcut_decay
            + c.smth_force_gain * smth_excess
            + f_pen
            + c.tradeoff_force_span * (1.0 - theta)
        )
        energy = (
            c.energy_floor
            + c.lr_energy_gain * lr_term
            + c.stop_lr_energy_gain * stop_term
            + c.rcut_energy_gain * rcut_decay
            + c.smth_energy_gain * smth_excess
            + e_pen
            + c.tradeoff_energy_span * theta
        )
        return float(energy), float(force)

    # ------------------------------------------------------------------
    def evaluate_with_metadata(
        self, phenome: dict[str, Any], uuid: Optional[str] = None
    ) -> tuple[np.ndarray, dict[str, Any]]:
        rng = self._eval_rng(phenome)
        with self._lock:
            self.evaluations += 1
        c = self.calibration
        try:
            if rng.random() < c.background_failure_rate:
                raise TrainingDivergedError(
                    "spurious configuration/system failure"
                )
            eff_lr = self.effective_start_lr(phenome)
            if (
                eff_lr > c.lr_risky_threshold
                and rng.random() < c.lr_risky_failure_rate
            ):
                raise TrainingDivergedError(
                    f"effective start_lr {eff_lr:.3g} in the unstable band"
                )
            energy, force = self.mean_objectives(phenome)
        except TrainingDivergedError as exc:
            with self._lock:
                self.failures += 1
            # failed trainings abort quickly (§3.2: "very short
            # runtimes ... corresponding to failed training tasks");
            # attach the runtime so RobustIndividual can record it
            exc.metadata = {  # type: ignore[attr-defined]
                "phenome": dict(phenome),
                "failed": True,
                "failure_cause": f"{type(exc).__name__}: {exc}",
                "runtime_minutes": (
                    self._sample_runtime(phenome, rng, failed=True)
                    if self.simulate_runtime
                    else 0.0
                ),
            }
            raise
        z = rng.normal()
        energy *= float(
            np.exp(rng.normal(0.0, c.energy_noise) + c.balance_noise_energy * z)
        )
        force *= float(
            np.exp(rng.normal(0.0, c.force_noise) - c.balance_noise_force * z)
        )
        metadata: dict[str, Any] = {
            "phenome": dict(phenome),
            "failed": False,
        }
        if self.simulate_runtime:
            metadata["runtime_minutes"] = self._sample_runtime(
                phenome, rng, failed=False
            )
        return np.array([energy, force]), metadata

    def _sample_runtime(
        self,
        phenome: dict[str, Any],
        rng: np.random.Generator,
        failed: bool,
    ) -> float:
        model = TrainingRuntimeModel(rng=rng)
        return model.runtime_minutes(phenome["rcut"], failed=failed)

    def evaluate(self, phenome: dict[str, Any]) -> np.ndarray:
        from repro.engine.invoke import call_problem

        fitness, _ = call_problem(self, phenome)
        return fitness

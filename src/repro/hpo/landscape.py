"""Calibrated surrogate response surface for campaign-scale benchmarks.

One paper-scale campaign is 5 runs × 7 generations × 100 individuals =
3500 DeePMD trainings of 2 GPU-hours each — unavailable here.  The
figures and tables of §3, however, depend only on the *shape* of the
hyperparameter → (energy RMSE, force RMSE, runtime, failure) mapping.
This module provides that mapping as an analytic response surface whose
structure is mechanistic (each term mirrors how the hyperparameter acts
in real training) and whose constants are calibrated to the paper's
reported findings:

* **Effective learning rate.**  The worker-scaling gene multiplies
  ``start_lr`` by {6, √6, 1} for {linear, sqrt, none} (6 GPUs per
  node); accuracy follows a log-quadratic basin around an effective
  start rate of ≈4e-3.  This mechanistically yields the paper's
  finding that "none"/"sqrt" produce more chemically accurate
  solutions: linear scaling pushes otherwise-good start rates out of
  the basin.
* **Radial cutoff.**  Larger ``rcut`` captures longer-ranged
  interactions in the charged melt; error decays exponentially with
  ``rcut`` such that chemical force accuracy (≤0.04 eV/Å) requires
  ``rcut ≳ 8.5 Å`` (§3.2) — while runtime grows as ``rcut³``.
* **Smoothing radius.**  A mild, force-sided penalty grows with
  ``rcut_smth`` (the paper sees accurate solutions densest below
  4.5 Å but spread across the range).
* **Activations.**  Fitting-net relu/relu6 carry penalties large
  enough that they drop off the frontier entirely; descriptor sigmoid
  carries a force penalty that excludes it from the chemically
  accurate set; tanh/softplus are neutral (§3.2).
* **Energy/force trade-off.**  The loss prefactors interpolate with
  ``f_end = stop_lr / eff_start_lr``: a larger final ratio keeps the
  force term dominant to the end (better force, worse energy) and
  vice versa — the mechanism that produces a genuine Pareto frontier
  rather than a single optimum.
* **Failures.**  Configurations with ``rcut_smth ≥ rcut`` are
  undefined; effective start rates ≳0.03 diverge; plus a small
  background failure rate.  Failed trainings return ``MAXINT`` fitness
  upstream and a short runtime (§3.2 observed 25 early-generation
  failures in 3500 trainings and none in the final generations).
* **Noise.**  Multiplicative log-normal training stochasticity, seeded
  per evaluation.  Draws come from a counter-based generator (splitmix64
  over a per-phenome hash with one fixed counter slot per draw), so a
  whole population's noise is a handful of NumPy array sweeps and the
  value at a phenome never depends on batch composition or evaluation
  order — batch, scalar, and pipelined paths are bit-identical by
  construction.

The surface is cross-checked against real scaled-down trainings by
``benchmarks/bench_real_training.py`` where the scaled-down system can
express the effect: training reduces force error, extreme learning
rates diverge, invalid radii fail, worker scaling multiplies the
schedule, and runtime grows with ``rcut``.  One term is *not*
verifiable at toy scale and is encoded from the paper's physics
instead: the accuracy gain of large ``rcut`` exists because the real
160-atom DFT melt has charged interactions beyond 8 Å, whereas the
scaled-down reference force field is truncated near 4.4 Å (half the
small box), so its training data contains no long-range signal for a
bigger descriptor cutoff to capture.
"""

from __future__ import annotations

import math
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from repro.evo.problem import WithMetadataProblem
from repro.exceptions import TrainingDivergedError
from repro.hpc.runtime_model import TrainingRuntimeModel
from repro.nn.lr_schedule import scale_lr_by_workers
from repro.rng import RngLike, ensure_rng

# ----------------------------------------------------------------------
# counter-based noise: splitmix64 over a per-phenome hash
# ----------------------------------------------------------------------
_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_MUL2 = np.uint64(0x94D049BB133111EB)

#: fixed counter slots — every draw a phenome's evaluation can consume
#: has its own slot, so no draw's value depends on which branches ran
_SLOT_BACKGROUND = 0
_SLOT_RISKY = 1
_SLOT_BALANCE_A, _SLOT_BALANCE_B = 2, 3
_SLOT_ENERGY_A, _SLOT_ENERGY_B = 4, 5
_SLOT_FORCE_A, _SLOT_FORCE_B = 6, 7
_SLOT_FAIL_RUNTIME = 8
_SLOT_RUNTIME_A, _SLOT_RUNTIME_B = 9, 10

_CRC_CACHE: dict[str, int] = {}


def _mix64(z: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, vectorized over uint64 arrays."""
    z = (z ^ (z >> np.uint64(30))) * _MIX_MUL1
    z = (z ^ (z >> np.uint64(27))) * _MIX_MUL2
    return z ^ (z >> np.uint64(31))


def _slot_uniform(h: np.ndarray, slot: int) -> np.ndarray:
    """Uniform [0, 1) draws for counter ``slot`` at each hash."""
    inc = np.uint64((_GOLDEN * (slot + 1)) & _MASK64)
    return (_mix64(h + inc) >> np.uint64(11)) * np.float64(2.0**-53)


def _slot_normal(h: np.ndarray, slot_a: int, slot_b: int) -> np.ndarray:
    """Standard-normal draws via Box–Muller from two uniform slots."""
    u_a = _slot_uniform(h, slot_a)
    u_b = _slot_uniform(h, slot_b)
    return np.sqrt(-2.0 * np.log1p(-u_a)) * np.cos(
        (2.0 * math.pi) * u_b
    )


def _crc_word(value: Any) -> int:
    """Process-stable hash word for a non-float gene value."""
    s = value if isinstance(value, str) else str(value)
    word = _CRC_CACHE.get(s)
    if word is None:
        word = _CRC_CACHE[s] = zlib.crc32(s.encode("utf-8"))
    return word


def _column_words(values: list[Any]) -> np.ndarray:
    """Hash words for one gene column (float bits or crc32)."""
    if all(isinstance(v, float) for v in values):
        return np.asarray(values, dtype=np.float64).view(np.uint64)
    return np.fromiter(
        (
            np.float64(v).view(np.uint64)
            if isinstance(v, float)
            else _crc_word(v)
            for v in values
        ),
        dtype=np.uint64,
        count=len(values),
    )


@dataclass(frozen=True)
class LandscapeCalibration:
    """Constants of the response surface (defaults fit §3's numbers)."""

    # best achievable errors (frontier anchors, Table 2)
    force_floor: float = 0.0345
    energy_floor: float = 0.00025
    # learning-rate basin (log10 of effective start rate); asymmetric:
    # an effectively untrained model (tiny LR) degrades to data-RMS
    # force errors fast, while slightly-too-large rates degrade gently
    lr_optimum_log10: float = -2.4  # ≈ 4e-3
    lr_width_log10: float = 1.3  # above the optimum
    lr_width_low_log10: float = 0.8  # below the optimum (undertraining)
    lr_force_gain: float = 0.09
    lr_energy_gain: float = 0.012
    # stop-lr basin (log10), optimum at the top of the searched range
    stop_lr_optimum_log10: float = -4.0
    stop_lr_width_log10: float = 2.0
    stop_lr_force_gain: float = 0.004
    stop_lr_energy_gain: float = 0.0008
    # radial cutoff: error decays with rcut, length scale in Å
    rcut_force_gain: float = 0.06
    rcut_energy_gain: float = 0.004
    rcut_length: float = 0.85
    rcut_ref: float = 6.0
    # smoothing radius: linear force-sided penalty above 2 Å
    smth_force_gain: float = 0.0012
    smth_energy_gain: float = 0.0001
    # activation penalties (force, energy)
    fitting_relu_penalty: tuple[float, float] = (0.035, 0.004)
    fitting_relu6_penalty: tuple[float, float] = (0.025, 0.003)
    desc_sigmoid_penalty: tuple[float, float] = (0.012, 0.0008)
    desc_relu_penalty: tuple[float, float] = (0.006, 0.0004)
    desc_relu6_penalty: tuple[float, float] = (0.004, 0.0003)
    # energy/force trade-off driven by the final prefactor fraction
    tradeoff_force_span: float = 0.0045
    tradeoff_energy_span: float = 0.0018
    # training stochasticity (log-normal sigmas): independent jitter per
    # objective plus a shared anti-correlated component modelling where
    # along the energy/force balance an individual run happens to land
    force_noise: float = 0.015
    energy_noise: float = 0.10
    balance_noise_energy: float = 0.15
    balance_noise_force: float = 0.02
    # failure model: hard divergence above the threshold, a risky band
    # below it where divergence is stochastic, plus a small background
    lr_divergence_threshold: float = 0.08
    lr_risky_threshold: float = 0.03
    lr_risky_failure_rate: float = 0.15
    background_failure_rate: float = 0.002


class SurrogateDeepMDProblem(WithMetadataProblem):
    """Drop-in replacement for :class:`repro.hpo.evaluator.DeepMDProblem`.

    Evaluations are deterministic given the problem seed and the
    phenome (noise is drawn from a counter-based stream derived from
    both), so campaign results are exactly reproducible regardless of
    evaluation order, batch composition, or parallelism.  A whole
    population evaluates in one NumPy sweep via
    :meth:`evaluate_batch_with_metadata`; subclasses that override the
    scalar surface hooks (``mean_objectives``, ``_sample_runtime``,
    ``effective_start_lr``) automatically fall back to the per-phenome
    path.
    """

    n_objectives = 2

    def __init__(
        self,
        calibration: Optional[LandscapeCalibration] = None,
        n_workers: int = 6,
        rng: RngLike = None,
        seed: int = 0,
        simulate_runtime: bool = True,
    ) -> None:
        self.calibration = calibration or LandscapeCalibration()
        self.n_workers = int(n_workers)
        self.seed = int(seed)
        self.simulate_runtime = simulate_runtime
        self._runtime_model = TrainingRuntimeModel(rng=ensure_rng(seed))
        self._lock = threading.Lock()
        self.evaluations = 0
        self.failures = 0

    def __getstate__(self) -> dict[str, Any]:
        """Spawn-safe pickling for the process-pool backend: the lock
        stays behind (each process gets its own)."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def cache_fingerprint(self) -> dict[str, Any]:
        """Identity for the evaluation cache: the surface is fully
        determined by the calibration constants, the worker count, and
        the problem seed (which seeds the per-phenome noise)."""
        from dataclasses import asdict

        return {
            "problem": "surrogate",
            "seed": self.seed,
            "n_workers": self.n_workers,
            "simulate_runtime": self.simulate_runtime,
            "calibration": asdict(self.calibration),
        }

    # ------------------------------------------------------------------
    def _eval_rng(self, phenome: dict[str, Any]) -> np.random.Generator:
        """Per-evaluation RNG: hash of the phenome plus the problem seed.

        Uses a *process-stable* hash for strings (``zlib.crc32``) —
        Python's built-in ``hash`` is salted per interpreter, which
        would make campaign results irreproducible across runs.
        """
        import zlib

        key_parts = [self.seed]
        for name in sorted(phenome):
            v = phenome[name]
            if isinstance(v, float):
                key_parts.append(np.float64(v).view(np.uint64))
            else:
                key_parts.append(zlib.crc32(str(v).encode("utf-8")))
        ss = np.random.SeedSequence([int(p) % (2**32) for p in key_parts])
        return np.random.default_rng(ss)

    def effective_start_lr(self, phenome: dict[str, Any]) -> float:
        return scale_lr_by_workers(
            phenome["start_lr"], self.n_workers, phenome["scale_by_worker"]
        )

    def mean_objectives(
        self, phenome: dict[str, Any]
    ) -> tuple[float, float]:
        """Noise-free (energy RMSE, force RMSE) at a phenome.

        Raises :class:`TrainingDivergedError` for configurations in
        the deterministic failure region.
        """
        c = self.calibration
        if phenome["rcut_smth"] >= phenome["rcut"]:
            raise TrainingDivergedError(
                "rcut_smth >= rcut: descriptor undefined"
            )
        eff_lr = self.effective_start_lr(phenome)
        if eff_lr <= 0 or phenome["stop_lr"] <= 0:
            raise TrainingDivergedError("non-positive learning rate")
        if eff_lr > c.lr_divergence_threshold:
            raise TrainingDivergedError(
                f"effective start_lr {eff_lr:.3g} diverges"
            )
        # learning-rate basins (log-quadratic, asymmetric)
        log_eff = np.log10(eff_lr)
        lr_width = (
            c.lr_width_low_log10
            if log_eff < c.lr_optimum_log10
            else c.lr_width_log10
        )
        lr_term = ((log_eff - c.lr_optimum_log10) / lr_width) ** 2
        stop_term = (
            (np.log10(phenome["stop_lr"]) - c.stop_lr_optimum_log10)
            / c.stop_lr_width_log10
        ) ** 2
        # radial cutoff: exponential decay toward the floor
        rcut_decay = np.exp(
            -(phenome["rcut"] - c.rcut_ref) / c.rcut_length
        )
        # smoothing radius: linear growth above 2 Å
        smth_excess = max(phenome["rcut_smth"] - 2.0, 0.0)
        # activation penalties
        f_pen = e_pen = 0.0
        fit_act = phenome["fitting_activ_func"]
        if fit_act == "relu":
            f_pen += c.fitting_relu_penalty[0]
            e_pen += c.fitting_relu_penalty[1]
        elif fit_act == "relu6":
            f_pen += c.fitting_relu6_penalty[0]
            e_pen += c.fitting_relu6_penalty[1]
        desc_act = phenome["desc_activ_func"]
        if desc_act == "sigmoid":
            f_pen += c.desc_sigmoid_penalty[0]
            e_pen += c.desc_sigmoid_penalty[1]
        elif desc_act == "relu":
            f_pen += c.desc_relu_penalty[0]
            e_pen += c.desc_relu_penalty[1]
        elif desc_act == "relu6":
            f_pen += c.desc_relu6_penalty[0]
            e_pen += c.desc_relu6_penalty[1]
        # energy/force trade-off from the final prefactor fraction:
        # f_end = stop_lr / eff_start_lr in (0, 1]; large -> force-led
        f_end = min(phenome["stop_lr"] / eff_lr, 1.0)
        theta = (np.log10(max(f_end, 1e-8)) + 4.0) / 4.0
        theta = float(np.clip(theta, 0.0, 1.0))
        force = (
            c.force_floor
            + c.lr_force_gain * lr_term
            + c.stop_lr_force_gain * stop_term
            + c.rcut_force_gain * rcut_decay
            + c.smth_force_gain * smth_excess
            + f_pen
            + c.tradeoff_force_span * (1.0 - theta)
        )
        energy = (
            c.energy_floor
            + c.lr_energy_gain * lr_term
            + c.stop_lr_energy_gain * stop_term
            + c.rcut_energy_gain * rcut_decay
            + c.smth_energy_gain * smth_excess
            + e_pen
            + c.tradeoff_energy_span * theta
        )
        return float(energy), float(force)

    # ------------------------------------------------------------------
    def evaluate_with_metadata(
        self, phenome: dict[str, Any], uuid: Optional[str] = None
    ) -> tuple[np.ndarray, dict[str, Any]]:
        """Scalar view: a batch of one through the vectorized path, so
        scalar and batch evaluation are bit-identical by construction
        (subclasses overriding the surface hooks use the rng path)."""
        if not self._vectorizable():
            return self._evaluate_one_with_metadata(phenome)
        outcome = self._evaluate_batch_vectorized([phenome])[0]
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    def evaluate_batch_with_metadata(
        self,
        phenomes: Sequence[dict[str, Any]],
        uuids: Optional[Sequence[Optional[str]]] = None,
    ) -> list[Any]:
        """One outcome slot per phenome: ``(fitness, metadata)`` or the
        exception that phenome raises, whole batch in one NumPy sweep."""
        if self._vectorizable():
            return self._evaluate_batch_vectorized(list(phenomes))
        outcomes: list[Any] = []
        for phenome in phenomes:
            try:
                outcomes.append(self._evaluate_one_with_metadata(phenome))
            except Exception as exc:  # noqa: BLE001 - isolated per slot
                outcomes.append(exc)
        return outcomes

    def _vectorizable(self) -> bool:
        """The vectorized sweep mirrors this class's scalar surface; a
        subclass overriding any surface hook gets the rng path."""
        cls = type(self)
        return (
            cls.mean_objectives is SurrogateDeepMDProblem.mean_objectives
            and cls._sample_runtime is SurrogateDeepMDProblem._sample_runtime
            and cls.effective_start_lr
            is SurrogateDeepMDProblem.effective_start_lr
        )

    def _evaluate_one_with_metadata(
        self, phenome: dict[str, Any]
    ) -> tuple[np.ndarray, dict[str, Any]]:
        """Per-phenome rng path (subclasses with overridden hooks)."""
        rng = self._eval_rng(phenome)
        with self._lock:
            self.evaluations += 1
        c = self.calibration
        try:
            if rng.random() < c.background_failure_rate:
                raise TrainingDivergedError(
                    "spurious configuration/system failure"
                )
            eff_lr = self.effective_start_lr(phenome)
            if (
                eff_lr > c.lr_risky_threshold
                and rng.random() < c.lr_risky_failure_rate
            ):
                raise TrainingDivergedError(
                    f"effective start_lr {eff_lr:.3g} in the unstable band"
                )
            energy, force = self.mean_objectives(phenome)
        except TrainingDivergedError as exc:
            with self._lock:
                self.failures += 1
            # failed trainings abort quickly (§3.2: "very short
            # runtimes ... corresponding to failed training tasks");
            # attach the runtime so RobustIndividual can record it
            exc.metadata = {  # type: ignore[attr-defined]
                "phenome": dict(phenome),
                "failed": True,
                "failure_cause": f"{type(exc).__name__}: {exc}",
                "runtime_minutes": (
                    self._sample_runtime(phenome, rng, failed=True)
                    if self.simulate_runtime
                    else 0.0
                ),
            }
            raise
        z = rng.normal()
        energy *= float(
            np.exp(rng.normal(0.0, c.energy_noise) + c.balance_noise_energy * z)
        )
        force *= float(
            np.exp(rng.normal(0.0, c.force_noise) - c.balance_noise_force * z)
        )
        metadata: dict[str, Any] = {
            "phenome": dict(phenome),
            "failed": False,
        }
        if self.simulate_runtime:
            metadata["runtime_minutes"] = self._sample_runtime(
                phenome, rng, failed=False
            )
        return np.array([energy, force]), metadata

    def _sample_runtime(
        self,
        phenome: dict[str, Any],
        rng: np.random.Generator,
        failed: bool,
    ) -> float:
        model = TrainingRuntimeModel(rng=rng)
        return model.runtime_minutes(phenome["rcut"], failed=failed)

    # ------------------------------------------------------------------
    # vectorized sweep
    # ------------------------------------------------------------------
    #: the genes the response surface reads
    _GENES = (
        "rcut",
        "rcut_smth",
        "start_lr",
        "stop_lr",
        "fitting_activ_func",
        "desc_activ_func",
        "scale_by_worker",
    )

    def _evaluate_batch_vectorized(
        self, phenomes: list[dict[str, Any]]
    ) -> list[Any]:
        """One NumPy sweep per homogeneous phenome group.

        Phenomes are grouped by key set (the per-phenome hash folds
        over *all* keys, so grouping keeps the value at a phenome
        independent of batch composition); in practice a population is
        one group and the whole batch is a single sweep.
        """
        outcomes: list[Any] = [None] * len(phenomes)
        groups: dict[tuple[str, ...], list[int]] = {}
        for i, phenome in enumerate(phenomes):
            try:
                key = tuple(sorted(phenome))
            except Exception as exc:  # noqa: BLE001 - not a mapping
                outcomes[i] = exc
                continue
            groups.setdefault(key, []).append(i)
        for key, idx in groups.items():
            missing = next(
                (name for name in self._GENES if name not in key), None
            )
            if missing is not None:
                with self._lock:
                    self.evaluations += len(idx)
                for i in idx:
                    outcomes[i] = KeyError(missing)
                continue
            self._evaluate_group(phenomes, idx, key, outcomes)
        return outcomes

    def _evaluate_group(
        self,
        phenomes: list[dict[str, Any]],
        idx: list[int],
        key_names: tuple[str, ...],
        outcomes: list[Any],
    ) -> None:
        c = self.calibration
        m = len(idx)
        cols = {
            name: [phenomes[i][name] for i in idx] for name in key_names
        }
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            # per-phenome hash: the problem seed folded with every
            # gene's (name, value) — the counter-based analogue of the
            # old per-evaluation SeedSequence
            h = np.full(
                m, np.uint64(self.seed & _MASK64), dtype=np.uint64
            )
            for name in key_names:
                words = _column_words(cols[name])
                h = _mix64(
                    h ^ _mix64(words ^ np.uint64(_crc_word(name)))
                )
            try:
                rcut = np.asarray(cols["rcut"], dtype=np.float64)
                rcut_smth = np.asarray(
                    cols["rcut_smth"], dtype=np.float64
                )
                start_lr = np.asarray(
                    cols["start_lr"], dtype=np.float64
                )
                stop_lr = np.asarray(cols["stop_lr"], dtype=np.float64)
            except (TypeError, ValueError) as exc:
                with self._lock:
                    self.evaluations += m
                for i in idx:
                    outcomes[i] = TypeError(str(exc))
                return
            # effective start rate (nan marks an unresolvable scheme,
            # surfaced per slot as the scalar path's ValueError)
            workers_ok = self.n_workers >= 1
            factor_map = {
                "linear": float(self.n_workers),
                "sqrt": math.sqrt(self.n_workers) if workers_ok else 0.0,
                "none": 1.0,
            }
            schemes = cols["scale_by_worker"]
            factors = np.empty(m, dtype=np.float64)
            bad_scheme: list[int] = []
            for j, scheme in enumerate(schemes):
                factor = (
                    factor_map.get(scheme) if workers_ok else None
                )
                if factor is None:
                    factors[j] = np.nan
                    bad_scheme.append(j)
                else:
                    factors[j] = factor
            eff = start_lr * factors
            # failure partition, in the scalar path's precedence order
            code = np.zeros(m, dtype=np.int8)
            code[
                _slot_uniform(h, _SLOT_BACKGROUND)
                < c.background_failure_rate
            ] = 1
            for j in bad_scheme:
                if code[j] == 0:
                    code[j] = 2
            ok = code == 0
            u_risky = _slot_uniform(h, _SLOT_RISKY)
            code[
                ok
                & (eff > c.lr_risky_threshold)
                & (u_risky < c.lr_risky_failure_rate)
            ] = 3
            ok = code == 0
            code[ok & (rcut_smth >= rcut)] = 4
            ok = code == 0
            code[ok & ((eff <= 0.0) | (stop_lr <= 0.0))] = 5
            ok = code == 0
            code[ok & (eff > c.lr_divergence_threshold)] = 6
            # the response surface (nan-safe: failed slots are masked
            # out of the outcomes below)
            log_eff = np.log10(eff)
            lr_width = np.where(
                log_eff < c.lr_optimum_log10,
                c.lr_width_low_log10,
                c.lr_width_log10,
            )
            lr_term = ((log_eff - c.lr_optimum_log10) / lr_width) ** 2
            stop_term = (
                (np.log10(stop_lr) - c.stop_lr_optimum_log10)
                / c.stop_lr_width_log10
            ) ** 2
            rcut_decay = np.exp(-(rcut - c.rcut_ref) / c.rcut_length)
            smth_excess = np.maximum(rcut_smth - 2.0, 0.0)
            fit_f = {
                "relu": c.fitting_relu_penalty[0],
                "relu6": c.fitting_relu6_penalty[0],
            }
            fit_e = {
                "relu": c.fitting_relu_penalty[1],
                "relu6": c.fitting_relu6_penalty[1],
            }
            desc_f = {
                "sigmoid": c.desc_sigmoid_penalty[0],
                "relu": c.desc_relu_penalty[0],
                "relu6": c.desc_relu6_penalty[0],
            }
            desc_e = {
                "sigmoid": c.desc_sigmoid_penalty[1],
                "relu": c.desc_relu_penalty[1],
                "relu6": c.desc_relu6_penalty[1],
            }
            fit_act = cols["fitting_activ_func"]
            desc_act = cols["desc_activ_func"]
            f_pen = np.fromiter(
                (fit_f.get(a, 0.0) for a in fit_act), np.float64, m
            ) + np.fromiter(
                (desc_f.get(a, 0.0) for a in desc_act), np.float64, m
            )
            e_pen = np.fromiter(
                (fit_e.get(a, 0.0) for a in fit_act), np.float64, m
            ) + np.fromiter(
                (desc_e.get(a, 0.0) for a in desc_act), np.float64, m
            )
            f_end = np.minimum(stop_lr / eff, 1.0)
            theta = np.clip(
                (np.log10(np.maximum(f_end, 1e-8)) + 4.0) / 4.0,
                0.0,
                1.0,
            )
            force = (
                c.force_floor
                + c.lr_force_gain * lr_term
                + c.stop_lr_force_gain * stop_term
                + c.rcut_force_gain * rcut_decay
                + c.smth_force_gain * smth_excess
                + f_pen
                + c.tradeoff_force_span * (1.0 - theta)
            )
            energy = (
                c.energy_floor
                + c.lr_energy_gain * lr_term
                + c.stop_lr_energy_gain * stop_term
                + c.rcut_energy_gain * rcut_decay
                + c.smth_energy_gain * smth_excess
                + e_pen
                + c.tradeoff_energy_span * theta
            )
            z = _slot_normal(h, _SLOT_BALANCE_A, _SLOT_BALANCE_B)
            energy = energy * np.exp(
                c.energy_noise
                * _slot_normal(h, _SLOT_ENERGY_A, _SLOT_ENERGY_B)
                + c.balance_noise_energy * z
            )
            force = force * np.exp(
                c.force_noise
                * _slot_normal(h, _SLOT_FORCE_A, _SLOT_FORCE_B)
                - c.balance_noise_force * z
            )
            if self.simulate_runtime:
                rt = self._runtime_model
                lo, hi = rt.fail_minutes
                fail_runtime = (
                    lo
                    + _slot_uniform(h, _SLOT_FAIL_RUNTIME) * (hi - lo)
                ).tolist()
                base = rt.fixed_minutes + rt.env_minutes * (
                    rcut / rt.rcut_ref
                ) ** 3
                ok_runtime = (
                    base
                    * np.exp(
                        rt.jitter_sigma
                        * _slot_normal(
                            h, _SLOT_RUNTIME_A, _SLOT_RUNTIME_B
                        )
                    )
                ).tolist()
            else:
                fail_runtime = ok_runtime = [0.0] * m
        codes = code.tolist()
        with self._lock:
            self.evaluations += m
            self.failures += sum(
                1 for k in codes if k not in (0, 2)
            )
        effs = eff.tolist()
        energies = energy.tolist()
        forces = force.tolist()
        for j, i in enumerate(idx):
            k = codes[j]
            if k == 0:
                metadata: dict[str, Any] = {
                    "phenome": dict(phenomes[i]),
                    "failed": False,
                }
                if self.simulate_runtime:
                    metadata["runtime_minutes"] = ok_runtime[j]
                outcomes[i] = (
                    np.array([energies[j], forces[j]]),
                    metadata,
                )
                continue
            if k == 2:
                try:
                    scale_lr_by_workers(
                        cols["start_lr"][j], self.n_workers, schemes[j]
                    )
                    outcomes[i] = ValueError(
                        f"unknown worker scaling {schemes[j]!r}"
                    )  # pragma: no cover - scale_lr always raises here
                except ValueError as exc:
                    outcomes[i] = exc
                continue
            if k == 1:
                message = "spurious configuration/system failure"
            elif k == 3:
                message = (
                    f"effective start_lr {effs[j]:.3g} in the "
                    "unstable band"
                )
            elif k == 4:
                message = "rcut_smth >= rcut: descriptor undefined"
            elif k == 5:
                message = "non-positive learning rate"
            else:
                message = f"effective start_lr {effs[j]:.3g} diverges"
            exc = TrainingDivergedError(message)
            exc.metadata = {  # type: ignore[attr-defined]
                "phenome": dict(phenomes[i]),
                "failed": True,
                "failure_cause": f"{type(exc).__name__}: {exc}",
                "runtime_minutes": (
                    fail_runtime[j] if self.simulate_runtime else 0.0
                ),
            }
            outcomes[i] = exc

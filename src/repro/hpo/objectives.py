"""Objective selection: promote training cost to a first-class
objective.

The paper optimizes two validation losses (energy RMSE, force RMSE).
The follow-up literature trades accuracy against *training cost*; this
module makes that a configuration choice rather than a new problem
class: ``--objectives loss,time`` (or any alias spelling) appends a
deterministic runtime-minutes objective to the base two, and every
driver, journal record, cache entry, and telemetry gauge downstream is
already N-D-safe.

Canonical objective names (in fitness-vector order):

``energy``, ``force``
    The base problem's two validation losses — always present, always
    first.
``runtime``
    Expected training wall-clock minutes from the calibrated
    :class:`repro.hpc.runtime_model.TrainingRuntimeModel` — the
    *deterministic* mean (``rcut``-driven, no jitter), so identical
    genomes always receive identical fitness vectors and cache /
    kill-resume bit-identity is preserved.  The *sampled* runtime with
    jitter still lands in ``metadata["runtime_minutes"]``, unchanged.

Aliases accepted by :func:`parse_objectives`: ``loss`` expands to
``energy,force``; ``time`` and ``cost`` are synonyms of ``runtime``.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.evo.problem import Problem, WithMetadataProblem
from repro.hpc.runtime_model import TrainingRuntimeModel
from repro.mo.metrics import default_reference

#: the base problem's objective names, in fitness order
BASE_OBJECTIVES: tuple[str, ...] = ("energy", "force")

#: every canonical objective this layer knows how to produce
KNOWN_OBJECTIVES: tuple[str, ...] = ("energy", "force", "runtime")

#: alias → canonical expansion
_ALIASES: dict[str, tuple[str, ...]] = {
    "loss": ("energy", "force"),
    "time": ("runtime",),
    "cost": ("runtime",),
    "runtime": ("runtime",),
    "energy": ("energy",),
    "force": ("force",),
}


def parse_objectives(
    spec: Optional[str | Sequence[str]],
) -> tuple[str, ...]:
    """Normalize an objective selection to canonical names.

    Accepts a comma-separated string (``"loss,time"``), a sequence of
    names/aliases, or None (→ the base two objectives).  The result
    always starts with ``energy, force`` (the base problem emits them
    unconditionally); ``runtime`` may follow.  Unknown names raise.
    """
    if spec is None:
        return BASE_OBJECTIVES
    if isinstance(spec, str):
        parts = [p.strip() for p in spec.split(",") if p.strip()]
    else:
        parts = [str(p).strip() for p in spec if str(p).strip()]
    if not parts:
        return BASE_OBJECTIVES
    expanded: list[str] = []
    for part in parts:
        canon = _ALIASES.get(part.lower())
        if canon is None:
            raise ValueError(
                f"unknown objective {part!r}; known: "
                f"{sorted(_ALIASES)} (canonical: {KNOWN_OBJECTIVES})"
            )
        for name in canon:
            if name not in expanded:
                expanded.append(name)
    for name in BASE_OBJECTIVES:
        if name not in expanded:
            expanded.insert(BASE_OBJECTIVES.index(name), name)
    ordered = tuple(
        name for name in KNOWN_OBJECTIVES if name in expanded
    )
    return ordered


def reference_point(objectives: Sequence[str]) -> tuple[float, ...]:
    """The campaign-fixed hypervolume reference for an objective
    selection (the canonical order means this is just the first
    ``len(objectives)`` entries of the default corner)."""
    names = parse_objectives(tuple(objectives))
    return default_reference(len(names))


class RuntimeCostProblem(WithMetadataProblem):
    """Append expected training minutes as a third minimization
    objective.

    Wraps any two-objective DeePMD problem (surrogate or real) and
    extends each fitness vector with the deterministic
    ``mean_runtime_minutes(rcut)`` of the calibrated runtime model —
    the same ``rcut^3`` law the sampled ``runtime_minutes`` metadata
    follows, minus the jitter, so the objective is a pure function of
    the genome.  Failures pass through untouched (the engine's MAXINT
    policy then fills all three objectives).
    """

    n_objectives = 3

    def __init__(
        self,
        problem: Problem,
        runtime_model: Optional[TrainingRuntimeModel] = None,
    ) -> None:
        self.problem = problem
        self.runtime_model = (
            runtime_model
            if runtime_model is not None
            else TrainingRuntimeModel()
        )

    # ------------------------------------------------------------------
    def cost_minutes(self, phenome: Any) -> float:
        """The deterministic cost objective for one phenome."""
        return float(
            self.runtime_model.mean_runtime_minutes(
                float(phenome["rcut"])
            )
        )

    def _extend(self, fitness, meta, phenome):
        cost = self.cost_minutes(phenome)
        extended = np.concatenate(
            [np.atleast_1d(np.asarray(fitness, dtype=np.float64)), [cost]]
        )
        meta = dict(meta)
        meta["cost_minutes"] = cost
        return extended, meta

    def evaluate_with_metadata(self, phenome, uuid=None):
        from repro.engine.invoke import call_problem

        fitness, meta = call_problem(self.problem, phenome, uuid=uuid)
        return self._extend(fitness, meta, phenome)

    def evaluate_batch_with_metadata(self, phenomes, uuids=None):
        """Extend each slot of the inner batch outcome; failed slots
        (exception instances) pass through untouched."""
        from repro.engine.invoke import call_problem_batch

        inner = call_problem_batch(self.problem, phenomes, uuids=uuids)
        return [
            slot
            if isinstance(slot, BaseException)
            else self._extend(slot[0], slot[1], phenome)
            for slot, phenome in zip(inner, phenomes)
        ]

    def cache_fingerprint(self) -> dict[str, Any]:
        """The inner problem's fingerprint plus the objective set —
        two- and three-objective campaigns must never share cache
        entries (their fitness vectors differ)."""
        inner = getattr(self.problem, "cache_fingerprint", None)
        doc = dict(inner() if inner is not None else {"problem": "unknown"})
        doc["objectives"] = ",".join(KNOWN_OBJECTIVES[:3])
        return doc


def with_objectives(
    problem: Problem, objectives: Optional[str | Sequence[str]]
) -> Problem:
    """Apply an objective selection to a base two-objective problem.

    The base selection returns the problem unchanged; a selection
    including ``runtime`` wraps it in :class:`RuntimeCostProblem`.
    This is the single seam the CLI, the journal's problem spec, the
    resume engine, and the campaign service all route through.
    """
    names = parse_objectives(objectives)
    if names == BASE_OBJECTIVES:
        return problem
    return RuntimeCostProblem(problem)

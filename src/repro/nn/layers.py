"""Dense layers.

DeepPot-SE's embedding network grows its width layer to layer and uses
"timestep" residual connections when the output width equals (or
doubles) the input width; :class:`ResidualDense` reproduces that
behaviour, and :class:`Dense` is the plain affine+activation layer used
by the fitting network.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.autodiff import functional as F
from repro.autodiff.tensor import Tensor
from repro.rng import RngLike, ensure_rng


class Dense:
    """Affine transform plus optional activation.

    Weights use Glorot-style normal initialization scaled by fan-in +
    fan-out, matching DeePMD-kit's default initializer closely enough
    for the training dynamics the HPO explores.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: Optional[Callable[[Tensor], Tensor]] = None,
        rng: RngLike = None,
    ) -> None:
        gen = ensure_rng(rng)
        scale = np.sqrt(2.0 / (in_features + out_features))
        self.weight = Tensor(
            gen.normal(0.0, scale, size=(in_features, out_features)),
            requires_grad=True,
            name="weight",
        )
        self.bias = Tensor(
            np.zeros(out_features), requires_grad=True, name="bias"
        )
        self.activation = activation
        self.in_features = in_features
        self.out_features = out_features

    def __call__(self, x: Tensor) -> Tensor:
        y = F.add(F.matmul(x, self.weight), self.bias)
        if self.activation is not None:
            y = self.activation(y)
        return y

    @property
    def parameters(self) -> list[Tensor]:
        return [self.weight, self.bias]

    def n_parameters(self) -> int:
        return self.weight.size + self.bias.size


class ResidualDense(Dense):
    """Dense layer with DeepPot-SE timestep/residual connection.

    When ``out_features == in_features`` the input is added to the
    output; when ``out_features == 2 * in_features`` the input is
    concatenated with itself before the addition.  Otherwise the layer
    degrades to a plain :class:`Dense`.
    """

    def __call__(self, x: Tensor) -> Tensor:
        y = super().__call__(x)
        if self.out_features == self.in_features:
            return F.add(y, x)
        if self.out_features == 2 * self.in_features:
            return F.add(y, F.concatenate([x, x], axis=-1))
        return y

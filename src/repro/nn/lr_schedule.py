"""Learning-rate schedule and per-worker scaling.

DeePMD-kit decays the learning rate exponentially from ``start_lr``
toward ``stop_lr`` over the training run (§2.2.1: "The learning rate
decays exponentially, based on the input start and stop learning
rates").  For distributed data-parallel training the start rate is
additionally scaled by the worker count; the paper searches over the
scaling rule ``{"linear", "sqrt", "none"}`` because the default linear
rule (Goyal et al. 2017) may over-scale when only 6 GPUs are used.
"""

from __future__ import annotations

import math

#: Decode order for the ``scale_by_worker`` categorical gene.
WORKER_SCALINGS: tuple[str, ...] = ("linear", "sqrt", "none")


def scale_lr_by_workers(lr: float, n_workers: int, scheme: str) -> float:
    """Scale ``lr`` for ``n_workers``-way data-parallel training.

    ``"linear"`` multiplies by the worker count (DeePMD-kit's default),
    ``"sqrt"`` by its square root, ``"none"`` leaves it unchanged.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if scheme == "linear":
        return lr * n_workers
    if scheme == "sqrt":
        return lr * math.sqrt(n_workers)
    if scheme == "none":
        return lr
    raise ValueError(
        f"unknown worker scaling {scheme!r}; expected one of {WORKER_SCALINGS}"
    )


class ExponentialDecay:
    """Exponential decay from ``start_lr`` to ``stop_lr`` over ``total_steps``.

    ``lr(t) = start_lr * (stop_lr / start_lr) ** (t / total_steps)``

    so that ``lr(0) == start_lr`` and ``lr(total_steps) == stop_lr``.
    Steps beyond ``total_steps`` keep decaying along the same geometric
    schedule, matching DeePMD-kit's ``exp`` learning-rate policy.
    """

    def __init__(
        self,
        start_lr: float,
        stop_lr: float,
        total_steps: int,
        n_workers: int = 1,
        scale_by_worker: str = "none",
    ) -> None:
        if start_lr <= 0 or stop_lr <= 0:
            raise ValueError("learning rates must be positive")
        if total_steps < 1:
            raise ValueError("total_steps must be >= 1")
        self.base_start_lr = float(start_lr)
        self.start_lr = scale_lr_by_workers(
            float(start_lr), n_workers, scale_by_worker
        )
        self.stop_lr = float(stop_lr)
        self.total_steps = int(total_steps)
        self.n_workers = int(n_workers)
        self.scale_by_worker = scale_by_worker
        self._ratio = self.stop_lr / self.start_lr

    def __call__(self, step: int) -> float:
        """Learning rate at ``step`` (0-based)."""
        if step < 0:
            raise ValueError("step must be non-negative")
        return self.start_lr * self._ratio ** (step / self.total_steps)

    def decay_fraction(self, step: int) -> float:
        """``lr(step) / start_lr`` — drives the loss-prefactor schedule."""
        return self._ratio ** (step / self.total_steps)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ExponentialDecay(start={self.start_lr:g}, stop={self.stop_lr:g},"
            f" steps={self.total_steps}, workers={self.n_workers},"
            f" scale={self.scale_by_worker!r})"
        )

"""Neural-network building blocks on top of :mod:`repro.autodiff`.

Provides exactly the pieces DeePMD-kit training needs and the paper
searches over: the five activation functions (§2.2.1), dense layers
with optional residual ("timestep") connections as used by DeepPot-SE,
the Adam optimizer, the exponential learning-rate decay between
``start_lr`` and ``stop_lr``, the per-worker learning-rate scaling rule
({"linear", "sqrt", "none"}), and the energy/force loss whose
prefactors follow the decaying learning rate.
"""

from repro.nn.activations import (
    ACTIVATIONS,
    ACTIVATION_NAMES,
    get_activation,
)
from repro.nn.layers import Dense, ResidualDense
from repro.nn.network import MLP
from repro.nn.optimizer import SGD, Adam, Optimizer
from repro.nn.lr_schedule import (
    WORKER_SCALINGS,
    ExponentialDecay,
    scale_lr_by_workers,
)
from repro.nn.loss import EnergyForceLoss, PrefactorSchedule

__all__ = [
    "ACTIVATIONS",
    "ACTIVATION_NAMES",
    "get_activation",
    "Dense",
    "ResidualDense",
    "MLP",
    "Optimizer",
    "SGD",
    "Adam",
    "ExponentialDecay",
    "scale_lr_by_workers",
    "WORKER_SCALINGS",
    "EnergyForceLoss",
    "PrefactorSchedule",
]

"""The activation-function registry searched by the paper.

§2.2.1: both ``desc_activ_func`` and ``fitting_activ_func`` map to one
of ``{"relu", "relu6", "softplus", "sigmoid", "tanh"}``.  The ordering
of :data:`ACTIVATION_NAMES` is the canonical decode order used by the
floor-modulus genome decoder, so it must remain stable.
"""

from __future__ import annotations

from typing import Callable

from repro.autodiff import functional as F
from repro.autodiff.tensor import Tensor

#: Decode order for categorical genes (do not reorder; see
#: :class:`repro.hpo.representation.DeepMDRepresentation`).
ACTIVATION_NAMES: tuple[str, ...] = (
    "relu",
    "relu6",
    "softplus",
    "sigmoid",
    "tanh",
)

ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "relu": F.relu,
    "relu6": F.relu6,
    "softplus": F.softplus,
    "sigmoid": F.sigmoid,
    "tanh": F.tanh,
}


def get_activation(name: str) -> Callable[[Tensor], Tensor]:
    """Look up an activation by name, with a helpful error message."""
    try:
        return ACTIVATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown activation {name!r}; expected one of {ACTIVATION_NAMES}"
        ) from None

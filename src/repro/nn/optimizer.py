"""Gradient-descent optimizers.

DeePMD-kit trains with Adam under an exponentially decaying learning
rate; :class:`Adam` reproduces the standard bias-corrected update.  A
plain :class:`SGD` is provided for tests and ablations.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor


class Optimizer:
    """Base class: owns a parameter list and a mutable learning rate."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        self.parameters: list[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")
        for p in self.parameters:
            if not p.requires_grad:
                raise ValueError("all optimized tensors must require grad")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla stochastic gradient descent with optional momentum."""

    def __init__(
        self, parameters: Iterable[Tensor], lr: float, momentum: float = 0.0
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: Sequence[float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def state_dict(self) -> dict:
        """Serializable optimizer state (moments + step counter)."""
        return {
            "t": self._t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
            "lr": self.lr,
        }

    def load_state_dict(self, state: dict) -> None:
        if len(state["m"]) != len(self._m):
            raise ValueError("optimizer state does not match parameters")
        self._t = int(state["t"])
        self.lr = float(state["lr"])
        for dst, src in zip(self._m, state["m"]):
            if dst.shape != np.asarray(src).shape:
                raise ValueError("moment shape mismatch")
            dst[...] = src
        for dst, src in zip(self._v, state["v"]):
            dst[...] = src

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            m_hat = m / bc1
            v_hat = v / bc2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

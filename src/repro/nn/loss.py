"""The DeePMD energy/force training loss.

§2.2.1: "The loss function is a weighted sum of mean-squared errors of
energy and forces, and is weighted by different prefactors which are
themselves functions of the decaying learning rates, with the force
prefactor dominating the loss function at the start of training, and
decreasing as the training proceeds, and the reverse for the energy
loss prefactor."

With ``f(t) = lr(t)/lr(0)`` the prefactors interpolate

``p_e(t) = p_e_limit * (1 - f(t)) + p_e_start * f(t)``
``p_f(t) = p_f_limit * (1 - f(t)) + p_f_start * f(t)``

The paper fixes ``(p_e_start, p_f_start, p_e_limit, p_f_limit) =
(0.02, 1000, 1, 1)`` (§2.1.2); these are the defaults here and are not
part of the hyperparameter search.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autodiff import functional as F
from repro.autodiff.tensor import Tensor
from repro.nn.lr_schedule import ExponentialDecay


@dataclass(frozen=True)
class PrefactorSchedule:
    """Learning-rate-coupled loss prefactors (paper defaults, §2.1.2)."""

    pe_start: float = 0.02
    pf_start: float = 1000.0
    pe_limit: float = 1.0
    pf_limit: float = 1.0

    def at(self, decay_fraction: float) -> tuple[float, float]:
        """``(p_e, p_f)`` at a given ``lr(t)/lr(0)`` fraction."""
        f = decay_fraction
        pe = self.pe_limit * (1.0 - f) + self.pe_start * f
        pf = self.pf_limit * (1.0 - f) + self.pf_start * f
        return pe, pf


class EnergyForceLoss:
    """Weighted energy+force MSE with scheduled prefactors.

    Energy errors are normalized per atom (matching DeePMD's
    ``rmse_e`` in eV/atom) and force errors per component (eV/Å).
    """

    def __init__(
        self,
        schedule: ExponentialDecay,
        prefactors: PrefactorSchedule | None = None,
        n_atoms: int = 1,
    ) -> None:
        self.schedule = schedule
        self.prefactors = prefactors or PrefactorSchedule()
        self.n_atoms = int(n_atoms)

    def __call__(
        self,
        step: int,
        energy_pred: Tensor,
        energy_ref: Tensor,
        force_pred: Tensor,
        force_ref: Tensor,
    ) -> Tensor:
        """Scalar loss at training ``step``.

        ``energy_*`` are total energies per frame (any shape);
        ``force_*`` are per-atom force components.
        """
        pe, pf = self.prefactors.at(self.schedule.decay_fraction(step))
        e_err = F.sub(energy_pred, energy_ref)
        e_per_atom = F.div(e_err, float(self.n_atoms))
        e_mse = F.mean(F.mul(e_per_atom, e_per_atom))
        f_err = F.sub(force_pred, force_ref)
        f_mse = F.mean(F.mul(f_err, f_err))
        return F.add(F.mul(e_mse, pe), F.mul(f_mse, pf))

    @staticmethod
    def rmse_energy(energy_pred, energy_ref, n_atoms: int) -> float:
        """Validation-style energy RMSE in eV/atom (plain ndarray math)."""
        import numpy as np

        ep = energy_pred.data if isinstance(energy_pred, Tensor) else energy_pred
        er = energy_ref.data if isinstance(energy_ref, Tensor) else energy_ref
        return float(np.sqrt(np.mean(((np.asarray(ep) - np.asarray(er)) / n_atoms) ** 2)))

    @staticmethod
    def rmse_force(force_pred, force_ref) -> float:
        """Validation-style force RMSE in eV/Å."""
        import numpy as np

        fp = force_pred.data if isinstance(force_pred, Tensor) else force_pred
        fr = force_ref.data if isinstance(force_ref, Tensor) else force_ref
        return float(np.sqrt(np.mean((np.asarray(fp) - np.asarray(fr)) ** 2)))

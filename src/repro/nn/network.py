"""Multi-layer perceptrons assembled from dense layers."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.autodiff.tensor import Tensor
from repro.nn.layers import Dense, ResidualDense
from repro.rng import RngLike, ensure_rng


class MLP:
    """A feed-forward network.

    Parameters
    ----------
    layer_sizes:
        Widths including the input width, e.g. ``[1, 25, 50, 100]`` for
        the paper's embedding net applied to the scalar ``s(r)``.
    activation:
        Hidden-layer activation (one of the five searched functions).
    final_activation:
        Activation for the last layer; ``None`` leaves it linear, which
        is what the fitting network's energy head requires.
    residual:
        Use DeepPot-SE style residual (timestep) connections where the
        widths allow it.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        activation: Callable[[Tensor], Tensor],
        final_activation: Optional[Callable[[Tensor], Tensor]] = None,
        residual: bool = False,
        rng: RngLike = None,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("need at least an input and an output width")
        gen = ensure_rng(rng)
        cls = ResidualDense if residual else Dense
        self.layers: list[Dense] = []
        n = len(layer_sizes) - 1
        for i in range(n):
            act = activation if i < n - 1 else final_activation
            self.layers.append(
                cls(layer_sizes[i], layer_sizes[i + 1], act, rng=gen)
            )
        self.layer_sizes = tuple(layer_sizes)

    def __call__(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    @property
    def parameters(self) -> list[Tensor]:
        out: list[Tensor] = []
        for layer in self.layers:
            out.extend(layer.parameters)
        return out

    def n_parameters(self) -> int:
        return sum(layer.n_parameters() for layer in self.layers)

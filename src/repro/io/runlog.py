"""Campaign run journal (JSONL).

A 12-hour, 100-node campaign needs live observability: which run and
generation is in flight, how many trainings failed, what the current
best losses are.  :class:`RunLogger` appends one JSON object per
generation to a journal file as the campaign executes (via the
campaign callback hook), and :func:`read_runlog` parses it back —
including partially written journals from interrupted jobs, which is
the whole point of logging line-by-line.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro.evo.algorithm import GenerationRecord


class RunLogger:
    """Appends per-generation events to a JSONL journal.

    Use as the campaign callback::

        logger = RunLogger(path)
        Campaign(factory, config).run(callback=logger)
    """

    def __init__(self, path: str | Path, flush: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.flush = flush
        self._start = time.monotonic()
        self.events_written = 0

    def __call__(self, run_index: int, record: GenerationRecord) -> None:
        viable = [ind for ind in record.population if ind.is_viable]
        if viable:
            F = np.asarray([ind.fitness for ind in viable])
            best_force = float(F[:, 1].min())
            best_energy = float(F[:, 0].min())
            median_force = float(np.median(F[:, 1]))
        else:
            best_force = best_energy = median_force = float("nan")
        event = {
            "elapsed_seconds": round(time.monotonic() - self._start, 3),
            "run": run_index,
            "generation": record.generation,
            "evaluated": len(record.evaluated),
            "failures": record.n_failures,
            "best_energy": best_energy,
            "best_force": best_force,
            "median_force": median_force,
            "mutation_std_first_gene": float(record.std[0]),
        }
        with self.path.open("a") as fh:
            fh.write(json.dumps(event) + "\n")
            if self.flush:
                fh.flush()
        self.events_written += 1


def read_runlog(path: str | Path) -> list[dict[str, Any]]:
    """Parse a journal, tolerating a truncated final line (a killed
    job may have died mid-write)."""
    path = Path(path)
    events: list[dict[str, Any]] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            break  # truncated tail: keep what parsed
    return events


def summarize_runlog(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Campaign-level digest of a journal (possibly from a partial run)."""
    if not events:
        return {"runs": 0, "generations": 0, "evaluations": 0}
    runs = {e["run"] for e in events}
    finite_force = [
        e["best_force"]
        for e in events
        if isinstance(e["best_force"], (int, float))
        and np.isfinite(e["best_force"])
    ]
    return {
        "runs": len(runs),
        "generations": len(events),
        "evaluations": sum(e["evaluated"] for e in events),
        "failures": sum(e["failures"] for e in events),
        "best_force": min(finite_force) if finite_force else float("nan"),
        "elapsed_seconds": events[-1]["elapsed_seconds"],
    }

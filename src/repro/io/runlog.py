"""Campaign run journal (JSONL).

A 12-hour, 100-node campaign needs live observability: which run and
generation is in flight, how many trainings failed, what the current
best losses are.  :class:`RunLogger` appends one JSON object per
generation to a journal file as the campaign executes (via the
campaign callback hook), and :func:`read_runlog` parses it back —
including partially written journals from interrupted jobs, which is
the whole point of logging line-by-line.

Journal lines are *strict* JSON: generations with no viable
individuals record their losses as ``null`` (never the bare ``NaN``
token Python's ``json`` would otherwise emit, which standard parsers
reject).  A :class:`RunLogger` can share a
:class:`~repro.obs.trace.Tracer` with the rest of the stack, stamping
the tracer's campaign id into every journal line and mirroring each
generation as a trace event — so the coarse journal and the
fine-grained task trace correlate.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro.evo.algorithm import GenerationRecord
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullTracer, Tracer


def _finite_or_none(value: float) -> Optional[float]:
    """Strict-JSON stand-in for NaN/inf sentinel losses."""
    return float(value) if np.isfinite(value) else None


class RunLogger:
    """Appends per-generation events to a JSONL journal.

    Use as the campaign callback::

        logger = RunLogger(path)
        Campaign(factory, config).run(callback=logger)

    Pass ``tracer`` (and optionally ``metrics``) to tie the journal to
    a task trace: events gain the tracer's ``campaign`` id, each
    generation emits a ``generation.logged`` trace event, and the
    registry tracks ``runlog_events_total`` / ``runlog_failures_total``.
    """

    def __init__(
        self,
        path: str | Path,
        flush: bool = True,
        tracer: Optional[NullTracer | Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.flush = flush
        self.tracer = tracer
        self.metrics = metrics
        self._c_events = (
            metrics.counter("runlog_events_total") if metrics else None
        )
        self._c_failures = (
            metrics.counter("runlog_failures_total") if metrics else None
        )
        self._start = time.monotonic()
        self.events_written = 0

    @property
    def campaign_id(self) -> Optional[str]:
        return self.tracer.campaign_id if self.tracer is not None else None

    def __call__(self, run_index: int, record: GenerationRecord) -> None:
        viable = [ind for ind in record.population if ind.is_viable]
        if viable:
            F = np.asarray([ind.fitness for ind in viable])
            best_force = float(F[:, 1].min())
            best_energy = float(F[:, 0].min())
            median_force = float(np.median(F[:, 1]))
        else:
            best_force = best_energy = median_force = float("nan")
        event = {
            "elapsed_seconds": round(time.monotonic() - self._start, 3),
            "run": run_index,
            "generation": record.generation,
            "evaluated": len(record.evaluated),
            "failures": record.n_failures,
            "best_energy": _finite_or_none(best_energy),
            "best_force": _finite_or_none(best_force),
            "median_force": _finite_or_none(median_force),
            "mutation_std_first_gene": _finite_or_none(record.std[0]),
        }
        if self.campaign_id is not None:
            event["campaign"] = self.campaign_id
        with self.path.open("a") as fh:
            fh.write(json.dumps(event, allow_nan=False) + "\n")
            if self.flush:
                fh.flush()
        self.events_written += 1
        if self._c_events is not None:
            self._c_events.inc()
        if self._c_failures is not None and record.n_failures:
            self._c_failures.inc(record.n_failures)
        if self.tracer is not None:
            self.tracer.event(
                "generation.logged",
                run=run_index,
                generation=record.generation,
                evaluated=len(record.evaluated),
                failures=record.n_failures,
            )


def read_runlog(path: str | Path) -> list[dict[str, Any]]:
    """Parse a journal, tolerating a truncated final line (a killed
    job may have died mid-write)."""
    path = Path(path)
    events: list[dict[str, Any]] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            break  # truncated tail: keep what parsed
    return events


def _finite_values(events: list[dict[str, Any]], key: str) -> list[float]:
    out = []
    for e in events:
        value = e.get(key)
        if isinstance(value, (int, float)) and np.isfinite(value):
            out.append(float(value))
    return out


def summarize_runlog(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Campaign-level digest of a journal (possibly from a partial run).

    Journals written by other versions may miss keys (and no-viable
    generations carry ``null`` losses); the digest degrades gracefully
    instead of raising.
    """
    if not events:
        return {"runs": 0, "generations": 0, "evaluations": 0}
    runs = {e.get("run") for e in events if e.get("run") is not None}
    finite_force = _finite_values(events, "best_force")
    return {
        "runs": len(runs),
        "generations": len(events),
        "evaluations": sum(int(e.get("evaluated") or 0) for e in events),
        "failures": sum(int(e.get("failures") or 0) for e in events),
        "best_force": min(finite_force) if finite_force else float("nan"),
        "elapsed_seconds": events[-1].get("elapsed_seconds", float("nan")),
    }

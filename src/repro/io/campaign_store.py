"""Campaign persistence.

Layout: one directory per campaign with ``campaign.json`` (config +
structure + per-individual metadata) and ``arrays.npz`` (genomes,
fitnesses, mutation deviations).  Individuals are restored as plain
:class:`~repro.evo.individual.RobustIndividual` objects without their
problem/decoder (a loaded campaign is for analysis, not resumption of
evolution — re-attaching a problem is a one-liner if needed).
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from pathlib import Path
from typing import Any

import numpy as np

from repro.evo.algorithm import GenerationRecord
from repro.evo.individual import RobustIndividual
from repro.hpo.campaign import CampaignConfig, CampaignResult

#: bumped when the on-disk layout changes; loaders warn (rather than
#: crash) on documents written by a newer version
SCHEMA_VERSION = 2

#: top-level campaign.json keys this version knows how to read
_KNOWN_KEYS = {"schema_version", "config", "runs"}


def _json_safe(value: Any) -> Any:
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def save_campaign(result: CampaignResult, directory: str | Path) -> None:
    """Persist a campaign result to ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    doc: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "config": {
            "n_runs": result.config.n_runs,
            "pop_size": result.config.pop_size,
            "generations": result.config.generations,
            "anneal_factor": result.config.anneal_factor,
            "sort_algorithm": result.config.sort_algorithm,
            "base_seed": result.config.base_seed,
        },
        "runs": [],
    }
    for r, run in enumerate(result.runs):
        run_doc = []
        for g, rec in enumerate(run):
            key = f"run{r}_gen{g}"
            # deduplicate: population members also appear in evaluated
            # or earlier generations; store both groups independently
            # for simplicity and robustness
            for group_name, group in (
                ("population", rec.population),
                ("evaluated", rec.evaluated),
            ):
                arrays[f"{key}_{group_name}_genomes"] = np.array(
                    [ind.genome for ind in group]
                )
                arrays[f"{key}_{group_name}_fitness"] = np.array(
                    [ind.fitness for ind in group]
                )
            arrays[f"{key}_std"] = rec.std
            run_doc.append(
                {
                    "generation": rec.generation,
                    "n_failures": rec.n_failures,
                    "population_metadata": [
                        _json_safe(ind.metadata)
                        for ind in rec.population
                    ],
                    "evaluated_metadata": [
                        _json_safe(ind.metadata) for ind in rec.evaluated
                    ],
                    "population_uuids": [
                        ind.uuid for ind in rec.population
                    ],
                    "evaluated_uuids": [
                        ind.uuid for ind in rec.evaluated
                    ],
                }
            )
        doc["runs"].append(run_doc)
    (directory / "campaign.json").write_text(json.dumps(doc))
    np.savez_compressed(directory / "arrays.npz", **arrays)


def _restore_group(
    arrays, doc_rec, key: str, group_name: str
) -> list[RobustIndividual]:
    genomes = arrays[f"{key}_{group_name}_genomes"]
    fitness = arrays[f"{key}_{group_name}_fitness"]
    metadata = doc_rec[f"{group_name}_metadata"]
    uuids = doc_rec[f"{group_name}_uuids"]
    out = []
    for genome, fit, meta, uuid in zip(genomes, fitness, metadata, uuids):
        ind = RobustIndividual(genome)
        ind.fitness = np.asarray(fit)
        ind.metadata = dict(meta)
        ind.uuid = uuid
        out.append(ind)
    return out


def load_campaign(directory: str | Path) -> CampaignResult:
    """Inverse of :func:`save_campaign`.

    Tolerant of documents written by other schema versions: unknown
    top-level and config fields produce a warning and are ignored, so
    an analysis environment running this version can still read
    snapshots written by a newer one.
    """
    directory = Path(directory)
    doc = json.loads((directory / "campaign.json").read_text())
    version = doc.get("schema_version", 1)
    if version > SCHEMA_VERSION:
        warnings.warn(
            f"campaign.json schema_version {version} is newer than "
            f"supported version {SCHEMA_VERSION}; loading best-effort",
            stacklevel=2,
        )
    unknown = set(doc) - _KNOWN_KEYS
    if unknown:
        warnings.warn(
            "ignoring unknown campaign.json fields: "
            + ", ".join(sorted(unknown)),
            stacklevel=2,
        )
    arrays = np.load(directory / "arrays.npz")
    known_config = {f.name for f in dataclasses.fields(CampaignConfig)}
    config_doc = doc["config"]
    unknown_config = set(config_doc) - known_config
    if unknown_config:
        warnings.warn(
            "ignoring unknown campaign config fields: "
            + ", ".join(sorted(unknown_config)),
            stacklevel=2,
        )
    config = CampaignConfig(
        **{k: v for k, v in config_doc.items() if k in known_config}
    )
    result = CampaignResult(config=config)
    for r, run_doc in enumerate(doc["runs"]):
        run: list[GenerationRecord] = []
        for g, rec_doc in enumerate(run_doc):
            key = f"run{r}_gen{g}"
            population = _restore_group(
                arrays, rec_doc, key, "population"
            )
            evaluated = _restore_group(arrays, rec_doc, key, "evaluated")
            run.append(
                GenerationRecord(
                    generation=rec_doc["generation"],
                    population=population,
                    evaluated=evaluated,
                    std=np.asarray(arrays[f"{key}_std"]),
                    n_failures=rec_doc["n_failures"],
                )
            )
        result.runs.append(run)
    return result

"""Serialization of campaign results and analysis exports.

A 12-hour Summit campaign is far too expensive to re-run for every
analysis question, so results must round-trip to disk.  This package
persists campaigns (per-run, per-generation populations with genomes,
fitnesses, and metadata) as JSON + NumPy archives, and exports the
figure data as CSV for external plotting.
"""

from repro.io.campaign_store import load_campaign, save_campaign
from repro.io.runlog import RunLogger, read_runlog, summarize_runlog
from repro.io.csv_export import (
    export_frontier_csv,
    export_level_plot_csv,
    export_parallel_coordinates_csv,
)

__all__ = [
    "save_campaign",
    "load_campaign",
    "RunLogger",
    "read_runlog",
    "summarize_runlog",
    "export_frontier_csv",
    "export_level_plot_csv",
    "export_parallel_coordinates_csv",
]

"""CSV exports of the figure data (for external plotting tools)."""

from __future__ import annotations

import csv
from pathlib import Path

from repro.analysis.frontier import frontier_table
from repro.analysis.levelplot import generation_level_plots
from repro.analysis.parallel_coords import AXES, parallel_coordinates
from repro.hpo.campaign import CampaignResult


def export_level_plot_csv(
    result: CampaignResult, path: str | Path
) -> None:
    """Fig. 1 raw points: generation, energy, force, viable flag."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["generation", "energy_loss", "force_loss"])
        for panel in generation_level_plots(result):
            for e, f in zip(panel.energies, panel.forces):
                writer.writerow([panel.generation, e, f])


def export_frontier_csv(
    result: CampaignResult, path: str | Path
) -> None:
    """Fig. 2 / Table 2 rows."""
    path = Path(path)
    rows = frontier_table(result).rows()
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(
            fh,
            fieldnames=[
                "solution",
                "force error (eV/A)",
                "energy error (eV/atom)",
            ],
        )
        writer.writeheader()
        writer.writerows(rows)


def export_parallel_coordinates_csv(
    result: CampaignResult, path: str | Path
) -> None:
    """Fig. 3 rows, one line per final solution."""
    path = Path(path)
    data = parallel_coordinates(result)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(AXES))
        writer.writeheader()
        writer.writerows(data.rows)

"""Counters, gauges, fixed-bucket histograms, and their registry.

The scheduler's ad-hoc ``tasks_*`` integers answered "how many" but
not "how long" or "how spread out" — and every new subsystem grew its
own counters.  :class:`MetricsRegistry` centralizes them: named
counters (monotonic totals), gauges (instantaneous levels like busy
workers), and fixed-bucket histograms (queue-wait and run-time
distributions), all thread-safe, snapshot-able as a plain dict, and
exportable in the Prometheus text exposition format so a real
deployment can be scraped.

Everything here is zero-dependency and cheap: a counter increment is
one lock acquisition and one float add.
"""

from __future__ import annotations

import bisect
import copy
import itertools
import re
import threading
from typing import Any, Optional, Sequence

#: default histogram buckets (seconds): spans sub-millisecond task
#: handoffs through the paper's 2-hour training cap
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
    300.0,
    1800.0,
    7200.0,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return _NAME_RE.sub("_", name)


class Counter:
    """A monotonically increasing total.

    The unit increment is a bare ``next()`` on an ``itertools.count``
    — a single C call, atomic under the GIL, no lock — because the
    scheduler bumps a counter on every task transition.  Bulk and
    fractional increments go through a lock.
    """

    __slots__ = ("name", "_ticks", "_lock", "_bulk")

    def __init__(self, name: str) -> None:
        self.name = name
        self._ticks = itertools.count()
        self._lock = threading.Lock()
        self._bulk = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount == 1.0:
            next(self._ticks)
            return
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._bulk += amount

    @property
    def value(self) -> float:
        # a copy's next() reads the tick count without advancing it
        ticks = next(copy.copy(self._ticks))
        with self._lock:
            return ticks + self._bulk


class Gauge:
    """An instantaneous level (busy workers, queue depth).

    Unit ``inc``/``dec`` are lock-free atomic tick advances (hot path:
    workers flipping busy/idle per task); ``set`` and non-unit deltas
    rebase through a lock.
    """

    __slots__ = ("name", "_ups", "_downs", "_lock", "_base")

    def __init__(self, name: str) -> None:
        self.name = name
        self._ups = itertools.count()
        self._downs = itertools.count()
        self._lock = threading.Lock()
        self._base = 0.0

    def _ticks(self) -> float:
        return next(copy.copy(self._ups)) - next(copy.copy(self._downs))

    def set(self, value: float) -> None:
        with self._lock:
            self._base = float(value) - self._ticks()

    def inc(self, amount: float = 1.0) -> None:
        if amount == 1.0:
            next(self._ups)
            return
        with self._lock:
            self._base += amount

    def dec(self, amount: float = 1.0) -> None:
        if amount == 1.0:
            next(self._downs)
            return
        with self._lock:
            self._base -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._base + self._ticks()


class Histogram:
    """Fixed-bucket histogram (cumulative, Prometheus-style).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches
    the tail.  ``observe`` is a bisect plus two adds.
    """

    __slots__ = ("name", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("need at least one bucket bound")
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # +Inf tail
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def summary(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            s = self._sum
        return {
            "count": total,
            "sum": s,
            "mean": (s / total) if total else 0.0,
            "buckets": {
                str(b): c for b, c in zip(self.buckets, counts[:-1])
            }
            | {"+Inf": counts[-1]},
        }

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket where
        the ``q``-th observation lands (the last finite bound for the
        +Inf tail)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = q * total
        seen = 0
        for bound, c in zip(self.buckets, counts[:-1]):
            seen += c
            if seen >= rank:
                return bound
        return self.buckets[-1]


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Re-requesting a name returns the same instrument (so modules can
    grab handles independently); requesting an existing name as a
    different kind raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind, *args) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, buckets or DEFAULT_BUCKETS
        )

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time dict view: counters/gauges as numbers,
        histograms as their :meth:`~Histogram.summary` dict."""
        with self._lock:
            metrics = dict(self._metrics)
        out: dict[str, Any] = {}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every metric."""
        with self._lock:
            metrics = dict(self._metrics)
        lines: list[str] = []
        for name in sorted(metrics):
            metric = metrics[name]
            pname = _prom_name(name)
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {pname} counter")
                lines.append(f"{pname} {metric.value:g}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {pname} gauge")
                lines.append(f"{pname} {metric.value:g}")
            else:
                lines.append(f"# TYPE {pname} histogram")
                summary = metric.summary()
                cumulative = 0
                for bound in metric.buckets:
                    cumulative += summary["buckets"][str(bound)]
                    lines.append(
                        f'{pname}_bucket{{le="{bound:g}"}} {cumulative}'
                    )
                cumulative += summary["buckets"]["+Inf"]
                lines.append(f'{pname}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{pname}_sum {summary['sum']:g}")
                lines.append(f"{pname}_count {summary['count']}")
        return "\n".join(lines) + ("\n" if lines else "")


_global_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (components that want
    isolation — e.g. each :class:`~repro.distributed.Scheduler` —
    create their own)."""
    return _global_registry

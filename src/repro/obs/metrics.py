"""Counters, gauges, fixed-bucket histograms, and their registry.

The scheduler's ad-hoc ``tasks_*`` integers answered "how many" but
not "how long" or "how spread out" — and every new subsystem grew its
own counters.  :class:`MetricsRegistry` centralizes them: named
counters (monotonic totals), gauges (instantaneous levels like busy
workers), and fixed-bucket histograms (queue-wait and run-time
distributions), all thread-safe, snapshot-able as a plain dict, and
exportable in the Prometheus text exposition format so a real
deployment can be scraped.

Everything here is zero-dependency and cheap: a counter increment is
one lock acquisition and one float add.
"""

from __future__ import annotations

import bisect
import copy
import itertools
import re
import threading
from typing import Any, Optional, Sequence

#: default histogram buckets (seconds): spans sub-millisecond task
#: handoffs through the paper's 2-hour training cap
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
    300.0,
    1800.0,
    7200.0,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: the Prometheus data model: metric names match
#: ``[a-zA-Z_:][a-zA-Z0-9_:]*``, label names the same minus colons
_VALID_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_VALID_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _prom_name(name: str) -> str:
    name = _NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def escape_label_value(value: str) -> str:
    """Escape a label value for the text exposition format.

    Backslash, double-quote, and newline are the three characters the
    format reserves inside quoted label values; anything else (UTF-8
    included) passes through unchanged.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labels: dict[str, str], extra: str = "") -> str:
    """``{k="v",...}`` with escaped values (empty string for none)."""
    pairs = [
        f'{k}="{escape_label_value(v)}"' for k, v in sorted(labels.items())
    ]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _validate_series(name: str, labels: dict[str, str]) -> None:
    # dots are a supported legacy spelling ("wait.seconds") that the
    # exporter deterministically maps to underscores; validate what
    # the scrape will actually see
    if not _VALID_METRIC_NAME.match(name.replace(".", "_")):
        raise ValueError(
            f"invalid Prometheus metric name {name!r} "
            "(must match [a-zA-Z_:][a-zA-Z0-9_:]*)"
        )
    for label in labels:
        if not _VALID_LABEL_NAME.match(label):
            raise ValueError(
                f"invalid Prometheus label name {label!r} "
                "(must match [a-zA-Z_][a-zA-Z0-9_]*)"
            )


class Counter:
    """A monotonically increasing total.

    The unit increment is a bare ``next()`` on an ``itertools.count``
    — a single C call, atomic under the GIL, no lock — because the
    scheduler bumps a counter on every task transition.  Bulk and
    fractional increments go through a lock.
    """

    __slots__ = ("name", "labels", "_ticks", "_lock", "_bulk")

    def __init__(
        self, name: str, labels: Optional[dict[str, str]] = None
    ) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._ticks = itertools.count()
        self._lock = threading.Lock()
        self._bulk = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount == 1.0:
            next(self._ticks)
            return
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._bulk += amount

    @property
    def value(self) -> float:
        # a copy's next() reads the tick count without advancing it
        ticks = next(copy.copy(self._ticks))
        with self._lock:
            return ticks + self._bulk


class Gauge:
    """An instantaneous level (busy workers, queue depth).

    Unit ``inc``/``dec`` are lock-free atomic tick advances (hot path:
    workers flipping busy/idle per task); ``set`` and non-unit deltas
    rebase through a lock.
    """

    __slots__ = ("name", "labels", "_ups", "_downs", "_lock", "_base")

    def __init__(
        self, name: str, labels: Optional[dict[str, str]] = None
    ) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self._ups = itertools.count()
        self._downs = itertools.count()
        self._lock = threading.Lock()
        self._base = 0.0

    def _ticks(self) -> float:
        return next(copy.copy(self._ups)) - next(copy.copy(self._downs))

    def set(self, value: float) -> None:
        with self._lock:
            self._base = float(value) - self._ticks()

    def inc(self, amount: float = 1.0) -> None:
        if amount == 1.0:
            next(self._ups)
            return
        with self._lock:
            self._base += amount

    def dec(self, amount: float = 1.0) -> None:
        if amount == 1.0:
            next(self._downs)
            return
        with self._lock:
            self._base -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._base + self._ticks()


class Histogram:
    """Fixed-bucket histogram (cumulative, Prometheus-style).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches
    the tail.  ``observe`` is a bisect plus two adds.
    """

    __slots__ = (
        "name",
        "labels",
        "buckets",
        "_lock",
        "_counts",
        "_sum",
        "_count",
    )

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labels: Optional[dict[str, str]] = None,
    ) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("need at least one bucket bound")
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # +Inf tail
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def summary(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            s = self._sum
        return {
            "count": total,
            "sum": s,
            "mean": (s / total) if total else 0.0,
            "buckets": {
                str(b): c for b, c in zip(self.buckets, counts[:-1])
            }
            | {"+Inf": counts[-1]},
        }

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket where
        the ``q``-th observation lands (the last finite bound for the
        +Inf tail)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = q * total
        seen = 0
        for bound, c in zip(self.buckets, counts[:-1]):
            seen += c
            if seen >= rank:
                return bound
        return self.buckets[-1]


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Re-requesting a name (with the same labels) returns the same
    instrument (so modules can grab handles independently); requesting
    an existing series as a different kind raises.  Metric and label
    names are validated against the Prometheus charset at creation —
    better a loud ``ValueError`` at the instrumentation site than a
    scrape that silently fails to parse.  Label *values* are free-form;
    the exporter escapes them.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(
        self,
        name: str,
        kind,
        *args,
        labels: Optional[dict[str, str]] = None,
    ) -> Any:
        labels = {str(k): str(v) for k, v in (labels or {}).items()}
        _validate_series(name, labels)
        key = name + _render_labels(labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = kind(name, *args, labels=labels)
                self._metrics[key] = metric
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {key!r} already registered as "
                    f"{type(metric).__name__}"
                )
            return metric

    def counter(
        self, name: str, labels: Optional[dict[str, str]] = None
    ) -> Counter:
        return self._get_or_create(name, Counter, labels=labels)

    def gauge(
        self, name: str, labels: Optional[dict[str, str]] = None
    ) -> Gauge:
        return self._get_or_create(name, Gauge, labels=labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        labels: Optional[dict[str, str]] = None,
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, buckets or DEFAULT_BUCKETS, labels=labels
        )

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time dict view: counters/gauges as numbers,
        histograms as their :meth:`~Histogram.summary` dict."""
        with self._lock:
            metrics = dict(self._metrics)
        out: dict[str, Any] = {}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every metric.

        Labeled series of the same metric name share one ``# TYPE``
        header; label values are escaped per the format's rules
        (backslash, double-quote, newline).
        """
        with self._lock:
            metrics = dict(self._metrics)
        lines: list[str] = []
        typed: set[str] = set()
        for key in sorted(metrics):
            metric = metrics[key]
            pname = _prom_name(metric.name)
            labels = _render_labels(metric.labels)
            if isinstance(metric, Counter):
                if pname not in typed:
                    lines.append(f"# TYPE {pname} counter")
                    typed.add(pname)
                lines.append(f"{pname}{labels} {metric.value:g}")
            elif isinstance(metric, Gauge):
                if pname not in typed:
                    lines.append(f"# TYPE {pname} gauge")
                    typed.add(pname)
                lines.append(f"{pname}{labels} {metric.value:g}")
            else:
                if pname not in typed:
                    lines.append(f"# TYPE {pname} histogram")
                    typed.add(pname)
                summary = metric.summary()
                cumulative = 0
                for bound in metric.buckets:
                    cumulative += summary["buckets"][str(bound)]
                    le = _render_labels(
                        metric.labels, extra=f'le="{bound:g}"'
                    )
                    lines.append(f"{pname}_bucket{le} {cumulative}")
                cumulative += summary["buckets"]["+Inf"]
                le = _render_labels(metric.labels, extra='le="+Inf"')
                lines.append(f"{pname}_bucket{le} {cumulative}")
                lines.append(f"{pname}_sum{labels} {summary['sum']:g}")
                lines.append(f"{pname}_count{labels} {summary['count']}")
        return "\n".join(lines) + ("\n" if lines else "")


_global_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (components that want
    isolation — e.g. each :class:`~repro.distributed.Scheduler` —
    create their own)."""
    return _global_registry

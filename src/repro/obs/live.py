"""Live campaign observability: the /metrics + /status HTTP plane.

`repro.obs` answered questions *after* a campaign — trace files and
registry snapshots are read once the run is over.  A 12-hour,
100-node campaign (§2.2.5) needs answers *while it runs*: is the
front still moving, are workers alive, what is the evaluation rate?
This module is that plane, in three zero-dependency pieces:

* :class:`CampaignStatus` — a thread-safe snapshot the drivers publish
  into (per generation / steady-state step) and anything may read; a
  process-wide instance is installed like the tracer
  (:func:`set_status` / :func:`use_status`), with a no-op
  :class:`NullCampaignStatus` as the default so publication sites cost
  one attribute check when nobody is watching.
* :class:`ConvergenceTelemetry` — per-generation convergence as
  first-class telemetry: the nondominated front of the selected
  population, its exact 2-D hypervolume against a campaign-fixed
  reference point (:func:`repro.mo.metrics.hypervolume_2d`), front
  size, and spread, published both as registry gauges
  (``campaign_hypervolume`` & co. for ``/metrics`` scrapes) and into
  the status snapshot (the ``/status`` hypervolume series).  Every
  value is sanitized to finite floats — a degenerate front (single
  point, duplicates, all-MAXINT) must never poison the strict-JSON
  endpoint with NaN/Inf.
* :class:`ObservabilityServer` — a stdlib ``http.server`` endpoint
  (``repro-hpo run --serve-metrics PORT``) serving ``/metrics`` (the
  :class:`~repro.obs.metrics.MetricsRegistry` Prometheus text export),
  ``/status`` (the strict-JSON campaign snapshot, including a live
  straggler summary computed from the tracer's in-memory records via
  :func:`repro.obs.report.straggler_summary`), and ``/healthz``.

The ``/status`` payload is deliberately the shape a future multi-tenant
campaign service would stream per campaign: everything in it is plain
JSON derived from state the drivers already maintain.
"""

from __future__ import annotations

import json
import math
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterator, Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import _json_safe

#: campaign-fixed hypervolume reference point (energy, force) — the
#: same corner :func:`repro.analysis.convergence.hypervolume_progress`
#: measures against, so live and post-hoc curves are comparable.
#: Three-objective campaigns (runtime promoted to an objective) extend
#: it via :func:`repro.mo.metrics.default_reference`.
DEFAULT_REFERENCE_POINT: tuple[float, float] = (0.02, 0.2)


def _finite(value: Any, default: float = 0.0) -> float:
    """Coerce to a finite float (NaN/Inf → ``default``) — the strict
    JSON endpoint and the gauges never see a non-finite number."""
    try:
        out = float(value)
    except (TypeError, ValueError):
        return default
    return out if math.isfinite(out) else default


class NullCampaignStatus:
    """The default: nobody is watching, every publication is a no-op."""

    enabled = False
    campaign_id: Optional[str] = None

    def update(self, **fields: Any) -> None:
        return None

    def begin_run(self, run_index: int, **fields: Any) -> None:
        return None

    def publish_generation(self, **fields: Any) -> None:
        return None

    def publish_engine(self, stats: Any, **extra: Any) -> None:
        return None

    def worker_update(self, name: str, **fields: Any) -> None:
        return None

    def fleet_update(self, **fields: Any) -> None:
        return None

    def mark_done(self) -> None:
        return None

    def snapshot(self) -> dict[str, Any]:
        return {}


class CampaignStatus:
    """Thread-safe live snapshot of one running campaign.

    Drivers publish coarse-grained state transitions (a generation
    committed, a steady-state annealing window closed, an engine stats
    delta, a pool worker changed state); :meth:`snapshot` renders the
    current picture as a plain strict-JSON-safe dict — the ``/status``
    payload.
    """

    enabled = True

    def __init__(
        self,
        campaign_id: Optional[str] = None,
        mode: Optional[str] = None,
        **meta: Any,
    ) -> None:
        self._lock = threading.Lock()
        self._started_mono = time.monotonic()
        self._data: dict[str, Any] = {
            "campaign": campaign_id,
            "mode": mode,
            "state": "running",
            "started_ts": time.time(),
            "run": None,
            "generation": None,
            **meta,
        }
        self._engine: dict[str, Any] = {}
        self._workers: dict[str, dict[str, Any]] = {}
        self._fleet: dict[str, Any] = {}
        self._hypervolume: list[dict[str, Any]] = []
        self._front: list[list[float]] = []

    @property
    def campaign_id(self) -> Optional[str]:
        """The id this campaign publishes under (labels its gauges)."""
        with self._lock:
            value = self._data.get("campaign")
        return None if value is None else str(value)

    # ------------------------------------------------------------------
    # publication (driver side)
    # ------------------------------------------------------------------
    def update(self, **fields: Any) -> None:
        with self._lock:
            self._data.update(fields)

    def begin_run(self, run_index: int, **fields: Any) -> None:
        with self._lock:
            self._data["run"] = int(run_index)
            self._data["generation"] = None
            self._data.update(fields)

    def publish_generation(
        self,
        generation: int,
        hypervolume: float,
        front: Optional[Any] = None,
        front_size: int = 0,
        spread: Optional[float] = None,
        **fields: Any,
    ) -> None:
        """One generation (or steady-state annealing window) committed."""
        points: list[list[float]] = []
        if front is not None:
            points = [
                [_finite(v) for v in row] for row in np.atleast_2d(front)
            ][:256]
        with self._lock:
            self._data["generation"] = int(generation)
            self._data.update(fields)
            self._front = points
            self._hypervolume.append(
                {
                    "run": self._data.get("run"),
                    "generation": int(generation),
                    "hypervolume": _finite(hypervolume),
                    "front_size": int(front_size),
                    "spread": (
                        None if spread is None else _finite(spread)
                    ),
                }
            )

    def publish_engine(self, stats: Any, **extra: Any) -> None:
        """Latest :class:`~repro.engine.core.EngineStats` view (an
        object with ``as_dict`` or a plain mapping), plus engine-side
        extras (batch counts, per-campaign throughput)."""
        as_dict = getattr(stats, "as_dict", None)
        data = dict(as_dict() if as_dict is not None else stats)
        data.update(extra)
        with self._lock:
            self._engine = data

    def worker_update(self, name: str, **fields: Any) -> None:
        with self._lock:
            entry = self._workers.setdefault(str(name), {})
            entry.update(fields)
            entry["updated_ts"] = time.time()

    def fleet_update(self, **fields: Any) -> None:
        """Latest :meth:`~repro.engine.fleet.ElasticBackend.
        fleet_snapshot` view — member sizes, requeues, speculation."""
        with self._lock:
            self._fleet.update(fields)
            self._fleet["updated_ts"] = time.time()

    def mark_done(self) -> None:
        with self._lock:
            self._data["state"] = "done"
            self._data["finished_ts"] = time.time()

    # ------------------------------------------------------------------
    # consumption (server side)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Point-in-time strict-JSON-safe view of the campaign."""
        with self._lock:
            data = dict(self._data)
            engine = dict(self._engine)
            workers = {k: dict(v) for k, v in self._workers.items()}
            fleet = dict(self._fleet)
            hypervolume = list(self._hypervolume)
            front = [list(p) for p in self._front]
        elapsed = max(time.monotonic() - self._started_mono, 1e-9)
        completed = _finite(engine.get("completed", 0.0))
        data["elapsed_s"] = round(elapsed, 3)
        data["evals_per_sec"] = round(completed / elapsed, 3)
        if completed > 0:
            data["cache_hit_rate"] = round(
                _finite(engine.get("cache_hits", 0.0)) / completed, 4
            )
            data["dedup_rate"] = round(
                _finite(engine.get("dedup_hits", 0.0)) / completed, 4
            )
        else:
            data["cache_hit_rate"] = 0.0
            data["dedup_rate"] = 0.0
        data["engine"] = engine
        data["workers"] = workers
        if fleet:
            data["fleet"] = fleet
        data["hypervolume_series"] = hypervolume
        data["front"] = front
        return _json_safe(data)


#: process-wide default: nobody is watching
NULL_STATUS = NullCampaignStatus()

_global_status: NullCampaignStatus | CampaignStatus = NULL_STATUS
_global_lock = threading.Lock()

#: per-thread override — the campaign service runs many campaigns in
#: one process, each on its own thread, and each thread's drivers must
#: publish into *its* campaign's status, not a process-wide one
_thread_status = threading.local()


def get_status() -> NullCampaignStatus | CampaignStatus:
    """The campaign status for the calling thread.

    A thread-scoped status (installed with :func:`use_thread_status` —
    the multi-campaign service's per-campaign-thread scope) wins over
    the process-wide one; :data:`NULL_STATUS` when neither is set.
    """
    status = getattr(_thread_status, "value", None)
    if status is not None:
        return status
    return _global_status


def set_status(
    status: Optional[NullCampaignStatus | CampaignStatus],
) -> NullCampaignStatus | CampaignStatus:
    """Install ``status`` globally (``None`` restores the null one);
    returns the previous status."""
    global _global_status
    with _global_lock:
        previous = _global_status
        _global_status = status if status is not None else NULL_STATUS
        return previous


@contextmanager
def use_status(
    status: NullCampaignStatus | CampaignStatus,
) -> Iterator[NullCampaignStatus | CampaignStatus]:
    """Scoped :func:`set_status` — restores the previous on exit."""
    previous = set_status(status)
    try:
        yield status
    finally:
        set_status(previous)


def set_thread_status(
    status: Optional[NullCampaignStatus | CampaignStatus],
) -> Optional[NullCampaignStatus | CampaignStatus]:
    """Install ``status`` for the calling thread only (``None`` clears
    the override); returns the previous thread-scoped status."""
    previous = getattr(_thread_status, "value", None)
    _thread_status.value = status
    return previous


@contextmanager
def use_thread_status(
    status: NullCampaignStatus | CampaignStatus,
) -> Iterator[NullCampaignStatus | CampaignStatus]:
    """Scoped :func:`set_thread_status` — the campaign service wraps
    each campaign's runner thread in one of these so every publication
    site (drivers, engine, telemetry) lands in that campaign's status
    while other threads stay untouched."""
    previous = set_thread_status(status)
    try:
        yield status
    finally:
        set_thread_status(previous)


def current_campaign_id() -> Optional[str]:
    """The campaign id of the calling thread's installed status (None
    when nobody is watching or the status is anonymous).  Publication
    sites use this to label their metric series, so concurrent
    campaigns in one process stop clobbering each other's gauges."""
    return getattr(get_status(), "campaign_id", None)


class ConvergenceTelemetry:
    """Per-generation convergence telemetry for any driver.

    One instance per run, with a campaign-fixed ``reference`` point so
    the hypervolume series is comparable across generations and runs.
    The reference may have any number of objectives; when the observed
    fronts have a different dimensionality (e.g. a three-objective
    campaign constructed with the historical 2-D default), the
    campaign-fixed :func:`repro.mo.metrics.default_reference` corner
    for that dimensionality is used instead — so every driver reports
    the N-D hypervolume without per-driver wiring.
    :meth:`observe_generation` computes the nondominated front of the
    viable individuals and publishes:

    * gauges — ``campaign_hypervolume``, ``campaign_front_size``,
      ``campaign_front_spread``, ``campaign_generation``;
    * the status snapshot — the front points and the hypervolume
      series entry.

    All outputs are finite by construction (degenerate fronts yield
    hypervolume 0.0 and spread ``None``), so the tracer's strict-JSON
    ``_json_safe`` never has to null a convergence value.
    """

    def __init__(
        self,
        reference: tuple[float, ...] = DEFAULT_REFERENCE_POINT,
        registry: Optional[MetricsRegistry] = None,
        status: Any = None,
        campaign_id: Optional[str] = None,
    ) -> None:
        self.reference = tuple(float(r) for r in reference)
        registry = registry if registry is not None else get_registry()
        self.status = status if status is not None else get_status()
        if campaign_id is None:
            campaign_id = getattr(self.status, "campaign_id", None)
        # a known campaign labels its series so concurrent campaigns in
        # one process (the service) each get their own gauge instead of
        # clobbering a shared one; anonymous runs keep the bare series
        labels = (
            {"campaign_id": str(campaign_id)}
            if campaign_id is not None
            else None
        )
        self._g_hv = registry.gauge("campaign_hypervolume", labels=labels)
        self._g_front = registry.gauge("campaign_front_size", labels=labels)
        self._g_spread = registry.gauge(
            "campaign_front_spread", labels=labels
        )
        self._g_generation = registry.gauge(
            "campaign_generation", labels=labels
        )

    def observe_generation(
        self,
        generation: int,
        individuals: Any,
        **fields: Any,
    ) -> dict[str, Any]:
        """Publish one generation's convergence state; returns it."""
        from repro.mo.dominance import non_dominated_mask
        from repro.mo.metrics import (
            default_reference,
            hypervolume,
            spread as spread_nd,
        )

        rows = []
        for ind in individuals:
            fitness = getattr(ind, "fitness", None)
            if fitness is None or not getattr(ind, "is_viable", True):
                continue
            arr = np.asarray(fitness, dtype=np.float64).ravel()
            if arr.size and np.all(np.isfinite(arr)):
                rows.append(arr)
        hv = 0.0
        spread: Optional[float] = None
        front = np.empty((0, 2))
        if rows:
            F = np.asarray(rows)
            front = F[non_dominated_mask(F)]
            reference = self.reference
            if len(reference) != F.shape[1]:
                reference = default_reference(F.shape[1])
            hv = _finite(hypervolume(front, reference))
            raw_spread = spread_nd(front)
            if math.isfinite(raw_spread):
                spread = float(raw_spread)
        self._g_hv.set(hv)
        self._g_front.set(len(front))
        self._g_spread.set(spread if spread is not None else 0.0)
        self._g_generation.set(int(generation))
        summary = {
            "generation": int(generation),
            "hypervolume": hv,
            "front_size": int(len(front)),
            "spread": spread,
        }
        if self.status.enabled:
            self.status.publish_generation(
                generation=int(generation),
                hypervolume=hv,
                front=front,
                front_size=len(front),
                spread=spread,
                **fields,
            )
        return summary


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to an :class:`ObservabilityServer`."""

    server_version = "repro-obs/1"
    plane: "ObservabilityServer"  # injected by the server factory

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        return None  # keep campaign stdout clean

    def _send(
        self, body: str, content_type: str, code: int = 200
    ) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                self._send(
                    self.plane.registry.to_prometheus(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/status":
                self._send(
                    self.plane.status_json(), "application/json"
                )
            elif path in ("/", "/healthz"):
                self._send("ok\n", "text/plain; charset=utf-8")
            else:
                self._send("not found\n", "text/plain", code=404)
        except (BrokenPipeError, ConnectionResetError):
            pass  # scraper went away mid-response


class ObservabilityServer:
    """Serve ``/metrics`` and ``/status`` for one process's campaigns.

    Runs a ``ThreadingHTTPServer`` on a daemon thread; request handling
    only *reads* (registry snapshot, status snapshot, tracer records),
    so it never blocks the campaign.  ``port=0`` binds an ephemeral
    port — read it back from :attr:`port`.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[MetricsRegistry] = None,
        status: Any = None,
        tracer: Any = None,
        stragglers_top: int = 5,
    ) -> None:
        self.registry = (
            registry if registry is not None else get_registry()
        )
        self.status = status if status is not None else get_status()
        self.tracer = tracer
        self.stragglers_top = int(stragglers_top)
        handler = type("_BoundHandler", (_Handler,), {"plane": self})
        self._httpd = ThreadingHTTPServer((host, int(port)), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def status_json(self) -> str:
        """The strict-JSON ``/status`` body: the campaign snapshot plus
        a live straggler summary from the tracer's in-memory records."""
        payload = self.status.snapshot()
        payload.setdefault("state", "unknown")
        records = getattr(self.tracer, "records", None) or []
        if records:
            from repro.obs.report import straggler_summary

            summary = straggler_summary(
                records, top=self.stragglers_top
            )
            # strip the raw numpy arrays; keep the scalar ledger + list
            payload["stragglers"] = {
                k: v
                for k, v in summary.items()
                if not isinstance(v, np.ndarray)
            }
        return json.dumps(_json_safe(payload), allow_nan=False)

    # ------------------------------------------------------------------
    def start(self) -> "ObservabilityServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-obs-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

"""Post-hoc analysis of a trace file: where did the wall-clock go?

Turns the flat span/event stream of :mod:`repro.obs.trace` into the
three operational views §2.2.5 needed on Summit:

* a **wall-clock breakdown** — time per span name, so a campaign can
  see at a glance whether generations, trainings, or the scheduler
  dominated;
* a **worker-utilization table** — busy seconds per worker against the
  trace's wall span, exposing the evaluation-time imbalance that
  related EA work identifies as the main scaling loss;
* a **straggler / retry summary** — the slowest tasks, the queue-wait
  picture, and every fault-driven retry or stranding.

Rendering reuses :func:`repro.analysis.report.format_table` and
:func:`repro.analysis.asciiplot.ascii_histogram` so the CLI output
matches the rest of the reproduction's reporting.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Optional, Sequence

import numpy as np

from repro.obs.trace import read_trace  # noqa: F401  (re-exported)

#: span name the workers use for task execution
TASK_SPAN = "worker.task"


def _spans(records: Sequence[dict[str, Any]]) -> list[dict[str, Any]]:
    return [r for r in records if r.get("type") == "span"]


def _events(records: Sequence[dict[str, Any]]) -> list[dict[str, Any]]:
    return [r for r in records if r.get("type") == "event"]


def trace_wall_seconds(records: Sequence[dict[str, Any]]) -> float:
    """Wall-clock span of the whole trace (first record to last end)."""
    starts = [r["mono"] for r in records if "mono" in r]
    ends = [
        r["mono"] + r.get("dur", 0.0) for r in records if "mono" in r
    ]
    if not starts:
        return 0.0
    return max(ends) - min(starts)


def wallclock_breakdown(
    records: Sequence[dict[str, Any]],
) -> list[dict[str, Any]]:
    """Per-span-name totals, sorted by total time descending.

    Spans nest, so shares can sum past 100% — the table answers "how
    much wall-clock passed inside spans of this name", not an
    exclusive-time accounting.
    """
    wall = trace_wall_seconds(records)
    grouped: dict[str, list[float]] = defaultdict(list)
    errors: dict[str, int] = defaultdict(int)
    for span in _spans(records):
        grouped[span["name"]].append(float(span.get("dur", 0.0)))
        if span.get("status") == "err":
            errors[span["name"]] += 1
    rows = []
    for name, durs in grouped.items():
        arr = np.asarray(durs)
        rows.append(
            {
                "span": name,
                "count": len(durs),
                "total_s": round(float(arr.sum()), 6),
                "mean_s": round(float(arr.mean()), 6),
                "max_s": round(float(arr.max()), 6),
                "share_%": round(
                    100.0 * float(arr.sum()) / wall if wall else 0.0, 1
                ),
                "errors": errors[name],
            }
        )
    rows.sort(key=lambda r: -r["total_s"])
    return rows


def worker_utilization(
    records: Sequence[dict[str, Any]],
) -> list[dict[str, Any]]:
    """Busy time per worker (from ``worker.task`` spans) against the
    trace wall span."""
    wall = trace_wall_seconds(records)
    busy: dict[str, float] = defaultdict(float)
    tasks: dict[str, int] = defaultdict(int)
    errs: dict[str, int] = defaultdict(int)
    for span in _spans(records):
        if span["name"] != TASK_SPAN:
            continue
        worker = str(span.get("tags", {}).get("worker", "?"))
        busy[worker] += float(span.get("dur", 0.0))
        tasks[worker] += 1
        if span.get("status") == "err":
            errs[worker] += 1
    rows = []
    for worker in sorted(busy):
        rows.append(
            {
                "worker": worker,
                "tasks": tasks[worker],
                "busy_s": round(busy[worker], 6),
                "util_%": round(
                    100.0 * busy[worker] / wall if wall else 0.0, 1
                ),
                "errors": errs[worker],
            }
        )
    return rows


def straggler_summary(
    records: Sequence[dict[str, Any]], top: int = 5
) -> dict[str, Any]:
    """Slowest tasks, queue-wait stats, and the retry/fault ledger."""
    task_spans = [s for s in _spans(records) if s["name"] == TASK_SPAN]
    durations = np.asarray(
        [float(s.get("dur", 0.0)) for s in task_spans]
    )
    slowest = sorted(
        task_spans, key=lambda s: -float(s.get("dur", 0.0))
    )[:top]
    # queue wait: task.submit event time -> first execution span start
    submit_at: dict[str, float] = {}
    for ev in _events(records):
        if ev["name"] == "task.submit":
            key = str(ev.get("tags", {}).get("task"))
            submit_at.setdefault(key, float(ev["mono"]))
    waits = []
    for span in task_spans:
        key = str(span.get("tags", {}).get("task"))
        if key in submit_at:
            waits.append(max(0.0, float(span["mono"]) - submit_at[key]))
    events = _events(records)
    counts = {
        "retries": sum(1 for e in events if e["name"] == "task.retry"),
        "requeued": sum(
            1 for e in events if e["name"] == "task.requeued"
        ),
        "abandoned": sum(
            1 for e in events if e["name"] == "task.abandoned"
        ),
        "stranded": sum(
            int(e.get("tags", {}).get("count", 1))
            for e in events
            if e["name"] == "task.stranded"
        ),
        "worker_faults": sum(
            1 for e in events if e["name"] == "worker.fault"
        ),
        "node_failures": sum(
            1 for e in events if e["name"] == "sim.node_failure"
        ),
        # pool-backend fault path (PR 6 records these; the report must
        # surface them or pool campaigns under-report their faults)
        "pool_worker_deaths": sum(
            1 for e in events if e["name"] == "pool.worker_death"
        ),
        "pool_respawns": sum(
            1 for e in events if e["name"] == "pool.worker_respawn"
        ),
        "pool_deadline_kills": sum(
            1 for e in events if e["name"] == "pool.deadline_kill"
        ),
    }
    return {
        "n_tasks": len(task_spans),
        "task_seconds": durations,
        "mean_task_s": float(durations.mean()) if len(durations) else 0.0,
        "max_task_s": float(durations.max()) if len(durations) else 0.0,
        "queue_waits": np.asarray(waits),
        "mean_wait_s": float(np.mean(waits)) if waits else 0.0,
        "max_wait_s": float(np.max(waits)) if waits else 0.0,
        "slowest": [
            {
                "task": str(s.get("tags", {}).get("task", "?")),
                "worker": str(s.get("tags", {}).get("worker", "?")),
                "dur_s": round(float(s.get("dur", 0.0)), 6),
                "status": s.get("status", "ok"),
            }
            for s in slowest
        ],
        **counts,
    }


def render_trace_report(
    records: Sequence[dict[str, Any]],
    top: int = 5,
    histogram_bins: int = 12,
) -> str:
    """The full plain-text report the ``repro-hpo trace`` CLI prints."""
    from repro.analysis.asciiplot import ascii_histogram
    from repro.analysis.report import format_table

    lines: list[str] = []
    campaign = next(
        (r.get("campaign") for r in records if r.get("campaign")), None
    )
    wall = trace_wall_seconds(records)
    n_spans = len(_spans(records))
    n_events = len(_events(records))
    header = (
        f"trace: {n_spans} spans, {n_events} events, "
        f"wall {wall:.3f}s"
    )
    if campaign:
        header += f", campaign {campaign}"
    lines.append(header)

    breakdown = wallclock_breakdown(records)
    if breakdown:
        lines.append("")
        lines.append(
            format_table(breakdown, title="wall-clock breakdown by span")
        )

    utilization = worker_utilization(records)
    if utilization:
        lines.append("")
        lines.append(
            format_table(utilization, title="worker utilization")
        )

    stragglers = straggler_summary(records, top=top)
    if stragglers["n_tasks"]:
        lines.append("")
        lines.append(
            f"tasks: {stragglers['n_tasks']}  "
            f"mean {stragglers['mean_task_s']:.4f}s  "
            f"max {stragglers['max_task_s']:.4f}s  "
            f"mean queue wait {stragglers['mean_wait_s']:.4f}s"
        )
        lines.append(
            f"retries: {stragglers['retries']}  "
            f"requeued: {stragglers['requeued']}  "
            f"abandoned: {stragglers['abandoned']}  "
            f"stranded: {stragglers['stranded']}  "
            f"worker faults: {stragglers['worker_faults']}"
        )
        if (
            stragglers["pool_worker_deaths"]
            or stragglers["pool_respawns"]
            or stragglers["pool_deadline_kills"]
        ):
            lines.append(
                f"pool: worker deaths: "
                f"{stragglers['pool_worker_deaths']}  "
                f"respawns: {stragglers['pool_respawns']}  "
                f"deadline kills: {stragglers['pool_deadline_kills']}"
            )
        lines.append("")
        lines.append(
            format_table(stragglers["slowest"], title="slowest tasks")
        )
        if len(stragglers["task_seconds"]) >= 2:
            lines.append("")
            lines.append(
                ascii_histogram(
                    stragglers["task_seconds"],
                    bins=histogram_bins,
                    label="task run-time distribution (s)",
                )
            )
    elif stragglers["node_failures"]:
        lines.append("")
        lines.append(
            f"simulated node failures: {stragglers['node_failures']}"
        )
    return "\n".join(lines)


def report_from_file(path, top: int = 5) -> str:
    """Convenience: :func:`read_trace` + :func:`render_trace_report`."""
    return render_trace_report(read_trace(path), top=top)

"""Zero-dependency tracing + metrics for campaign observability.

The paper's campaigns (§2.2.5) were diagnosed from raw Dask worker
logs; this package gives the reproduction first-class telemetry
instead:

* :mod:`repro.obs.trace` — :class:`Span` context managers and a
  process-wide :class:`Tracer` streaming strict-JSON span/event lines
  to a trace file (a :class:`NullTracer` no-op is the default, cheap
  enough for hot paths);
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms, snapshot-able and exportable in
  Prometheus text format;
* :mod:`repro.obs.report` — trace-file analysis: wall-clock breakdown,
  worker utilization, and straggler/retry summaries (the
  ``repro-hpo trace`` subcommand);
* :mod:`repro.obs.live` — the live plane: a thread-safe
  :class:`CampaignStatus` snapshot the drivers publish into,
  :class:`ConvergenceTelemetry` (per-generation hypervolume / front
  gauges), and the :class:`ObservabilityServer` serving ``/metrics``
  and ``/status`` over HTTP (``repro-hpo run --serve-metrics PORT``,
  watched live with ``repro-hpo monitor``).

The scheduler, workers, client, cluster simulation, trainer, EA loop,
and campaign driver are all instrumented; enable capture by installing
a tracer::

    from repro.obs import Tracer, set_tracer
    set_tracer(Tracer("runs/campaign-trace.jsonl"))
"""

from repro.obs.live import (
    DEFAULT_REFERENCE_POINT,
    NULL_STATUS,
    CampaignStatus,
    ConvergenceTelemetry,
    NullCampaignStatus,
    ObservabilityServer,
    current_campaign_id,
    get_status,
    set_status,
    set_thread_status,
    use_status,
    use_thread_status,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    get_registry,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    read_trace,
    set_tracer,
    use_tracer,
)
from repro.obs.report import (
    render_trace_report,
    report_from_file,
    straggler_summary,
    wallclock_breakdown,
    worker_utilization,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "escape_label_value",
    "get_registry",
    "CampaignStatus",
    "NullCampaignStatus",
    "NULL_STATUS",
    "ConvergenceTelemetry",
    "ObservabilityServer",
    "DEFAULT_REFERENCE_POINT",
    "get_status",
    "set_status",
    "use_status",
    "set_thread_status",
    "use_thread_status",
    "current_campaign_id",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "read_trace",
    "render_trace_report",
    "report_from_file",
    "wallclock_breakdown",
    "worker_utilization",
    "straggler_summary",
]

"""Spans, point events, and the process-wide tracer.

A 12-hour, 100-node campaign (§2.2.5) needs to answer "where did the
wall-clock go?" after the fact: which generations stalled on
stragglers, which workers sat idle, which tasks were retried after
node faults.  The tracer records that as a flat JSONL stream of
**spans** (named intervals with tags and parent links) and **events**
(named instants), one strict-JSON object per line, so a partially
written trace from a killed job parses the same way the run journal
does.

Instrumentation sites call :func:`get_tracer` (or accept a tracer
argument) and are hot-path code — the scheduler touches the tracer on
every task transition — so the default is a :class:`NullTracer` whose
``span``/``event`` are attribute lookups plus a constant return.  The
microbenchmark in ``benchmarks/bench_obs_overhead.py`` keeps that
overhead honest (< 5% of a scheduler submit/gather round-trip).

Parenting is thread-local: a span opened inside another span *on the
same thread* records it as its parent, which makes the EA's
per-generation spans the parents of in-process evaluation spans.
Worker threads start their own roots (their spans carry ``worker`` and
``task`` tags instead, and the report joins them by task key).
"""

from __future__ import annotations

import itertools
import json
import math
import threading
import time
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional


def _json_safe(value: Any) -> Any:
    """Coerce a tag value to something ``json.dumps(allow_nan=False)``
    accepts — non-finite floats become ``None``, exotic objects become
    their ``str``."""
    if value is None or isinstance(value, (str, int, bool)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    try:  # numpy scalars expose item()
        return _json_safe(value.item())
    except AttributeError:
        return str(value)


class Span:
    """A named interval; use as a context manager.

    ``tag(**kv)`` attaches metadata at any point before exit; an
    exception escaping the block marks the span ``status="err"`` (and
    is not suppressed).
    """

    __slots__ = (
        "tracer",
        "name",
        "span_id",
        "parent_id",
        "tags",
        "ts",
        "mono_start",
        "duration",
        "status",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent_id: Optional[int],
        tags: dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = tracer._next_id()
        self.parent_id = parent_id
        self.tags = tags
        self.ts = 0.0
        self.mono_start = 0.0
        self.duration = 0.0
        self.status = "ok"

    def tag(self, **kv: Any) -> "Span":
        self.tags.update(kv)
        return self

    def __enter__(self) -> "Span":
        self.ts = time.time()
        self.mono_start = time.monotonic()
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.monotonic() - self.mono_start
        if exc_type is not None:
            self.status = "err"
            self.tags.setdefault("error", exc_type.__name__)
        self.tracer._pop(self)
        self.tracer._record(
            {
                "type": "span",
                "name": self.name,
                "id": self.span_id,
                "parent": self.parent_id,
                "ts": self.ts,
                "mono": self.mono_start,
                "dur": self.duration,
                "status": self.status,
                "thread": threading.current_thread().name,
                "tags": self.tags,
            }
        )
        return False


class _NullSpan:
    """The shared do-nothing span the :class:`NullTracer` returns."""

    __slots__ = ()

    def tag(self, **kv: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracing: every operation is a constant-time no-op."""

    enabled = False
    campaign_id: Optional[str] = None

    def span(self, name: str, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **tags: Any) -> None:
        return None

    def ingest(self, record: dict[str, Any]) -> None:
        return None

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None

    @property
    def records(self) -> list[dict[str, Any]]:
        return []


class Tracer:
    """Buffers span/event records and optionally streams them to JSONL.

    Parameters
    ----------
    path:
        Trace file; one strict-JSON object is appended per finished
        span / emitted event (line-buffered, like the run journal).
        ``None`` keeps records in memory only.
    campaign_id:
        Correlates the trace with a :class:`~repro.io.runlog.RunLogger`
        journal; autogenerated when omitted.
    keep_in_memory:
        Retain records on the tracer (the default); long campaigns
        streaming to disk can turn this off to bound memory.
    """

    enabled = True

    def __init__(
        self,
        path: Optional[str | Path] = None,
        campaign_id: Optional[str] = None,
        keep_in_memory: bool = True,
    ) -> None:
        self.campaign_id = campaign_id or uuid.uuid4().hex[:12]
        self.path = Path(path) if path is not None else None
        self.keep_in_memory = bool(keep_in_memory)
        self._records: list[dict[str, Any]] = []
        self._counter = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._fh = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a")
            self._record(
                {
                    "type": "meta",
                    "name": "trace.start",
                    "ts": time.time(),
                    "mono": time.monotonic(),
                    "campaign": self.campaign_id,
                }
            )

    # ------------------------------------------------------------------
    def _next_id(self) -> int:
        return next(self._counter)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def current_span_id(self) -> Optional[int]:
        stack = getattr(self._local, "stack", None)
        return stack[-1].span_id if stack else None

    # ------------------------------------------------------------------
    def span(self, name: str, **tags: Any) -> Span:
        return Span(self, name, self.current_span_id(), tags)

    def event(self, name: str, **tags: Any) -> None:
        self._record(
            {
                "type": "event",
                "name": name,
                "parent": self.current_span_id(),
                "ts": time.time(),
                "mono": time.monotonic(),
                "thread": threading.current_thread().name,
                "tags": tags,
            }
        )

    def ingest(self, record: dict[str, Any]) -> None:
        """Merge a record produced in *another process* into this
        stream.

        Pool workers trace their evaluations locally (plain span/event
        dicts, no tracer machinery) and ship the records back over
        their result pipe; the parent ingests them here.  Span ids are
        reassigned from this tracer's counter so foreign ids can never
        collide with local ones, and the parent link is dropped —
        cross-process spans are roots that join the rest of the trace
        by their ``worker``/``task`` tags, exactly like thread-worker
        spans.
        """
        rec = dict(record)
        if rec.get("type") == "span":
            rec["id"] = self._next_id()
        rec["parent"] = None
        self._record(rec)

    def _record(self, rec: dict[str, Any]) -> None:
        rec = _json_safe(rec)
        with self._lock:
            if self.keep_in_memory:
                self._records.append(rec)
            if self._fh is not None:
                self._fh.write(json.dumps(rec, allow_nan=False) + "\n")
                self._fh.flush()

    # ------------------------------------------------------------------
    @property
    def records(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._records)

    def spans(self, name: Optional[str] = None) -> list[dict[str, Any]]:
        return [
            r
            for r in self.records
            if r["type"] == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: Optional[str] = None) -> list[dict[str, Any]]:
        return [
            r
            for r in self.records
            if r["type"] == "event" and (name is None or r["name"] == name)
        ]

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


#: the process-wide default: tracing disabled
NULL_TRACER = NullTracer()

_global_tracer: NullTracer | Tracer = NULL_TRACER
_global_lock = threading.Lock()


def get_tracer() -> NullTracer | Tracer:
    """The process-wide tracer (:data:`NULL_TRACER` unless installed)."""
    return _global_tracer


def set_tracer(tracer: Optional[NullTracer | Tracer]) -> NullTracer | Tracer:
    """Install ``tracer`` globally (``None`` restores the null tracer);
    returns the previous tracer."""
    global _global_tracer
    with _global_lock:
        previous = _global_tracer
        _global_tracer = tracer if tracer is not None else NULL_TRACER
        return previous


@contextmanager
def use_tracer(tracer: NullTracer | Tracer) -> Iterator[NullTracer | Tracer]:
    """Scoped :func:`set_tracer` — restores the previous tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Parse a trace file, tolerating a truncated final line (killed
    jobs die mid-write, exactly like the run journal)."""
    records: list[dict[str, Any]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            break
    return records

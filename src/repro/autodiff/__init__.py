"""Tape-based reverse-mode automatic differentiation over NumPy arrays.

This subpackage stands in for TensorFlow in the reproduction: the
DeepPot-SE potential (``repro.deepmd``) predicts atomic forces as the
negative gradient of the predicted energy with respect to atomic
displacements, and the training loss penalizes force errors — so the
engine must support **double-backward** (differentiating a function of
first-order gradients with respect to the parameters).  Every
primitive's vector-Jacobian product is itself expressed in terms of
:class:`Tensor` operations, which makes gradients of gradients work by
construction.

Typical usage::

    from repro import autodiff as ad

    x = ad.Tensor([1.0, 2.0], requires_grad=True)
    y = (x * x).sum()
    (gx,) = ad.grad(y, [x], create_graph=True)   # gx = 2x, differentiable
    z = (gx * gx).sum()                          # function of the gradient
    z.backward()                                 # d z / d x = 8x
"""

from repro.autodiff.tensor import (
    Tensor,
    as_tensor,
    grad,
    is_grad_enabled,
    no_grad,
)
from repro.autodiff import functional
from repro.autodiff.functional import (
    concatenate,
    exp,
    index_add,
    log,
    matmul,
    maximum,
    mean,
    minimum,
    relu,
    relu6,
    sigmoid,
    softplus,
    sqrt,
    stack,
    sum as tsum,
    take,
    tanh,
    where,
)
from repro.autodiff.gradcheck import check_gradients, numerical_gradient

__all__ = [
    "Tensor",
    "as_tensor",
    "grad",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "exp",
    "log",
    "sqrt",
    "tanh",
    "sigmoid",
    "softplus",
    "relu",
    "relu6",
    "maximum",
    "minimum",
    "where",
    "matmul",
    "mean",
    "tsum",
    "take",
    "index_add",
    "concatenate",
    "stack",
    "check_gradients",
    "numerical_gradient",
]

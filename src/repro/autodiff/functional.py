"""Differentiable primitives.

Every function here returns a :class:`~repro.autodiff.tensor.Tensor`
whose vector-Jacobian product is written in terms of other primitives,
which is what makes second-order differentiation (needed for force
training) work without any special casing.

Numerical-stability notes are attached to the activations: ``softplus``
and ``sigmoid`` use the standard exp-overflow-safe forms since the HPO
search deliberately wanders into extreme learning rates that push
pre-activations far from zero.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.autodiff.tensor import ArrayLike, Tensor, as_tensor, make_op

__all__ = [
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "power",
    "exp",
    "log",
    "sqrt",
    "square",
    "abs",
    "tanh",
    "sigmoid",
    "softplus",
    "relu",
    "relu6",
    "maximum",
    "minimum",
    "where",
    "clip",
    "matmul",
    "sum",
    "mean",
    "reshape",
    "transpose",
    "swapaxes",
    "getitem",
    "take",
    "index_add",
    "concatenate",
    "stack",
    "unbroadcast",
    "dot",
]

_py_sum = sum
_py_abs = abs


def unbroadcast(t: Tensor, shape: tuple[int, ...]) -> Tensor:
    """Reduce ``t`` to ``shape`` by summing broadcast axes (differentiable)."""
    if t.shape == tuple(shape):
        return t
    extra = t.ndim - len(shape)
    if extra > 0:
        t = sum(t, axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and t.shape[i] != 1)
    if axes:
        t = sum(t, axis=axes, keepdims=True)
    return reshape(t, tuple(shape))


# ----------------------------------------------------------------------
# arithmetic
# ----------------------------------------------------------------------
def add(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)

    def vjp(g: Tensor):
        return unbroadcast(g, a.shape), unbroadcast(g, b.shape)

    return make_op(a.data + b.data, (a, b), vjp, "add")


def sub(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)

    def vjp(g: Tensor):
        return unbroadcast(g, a.shape), unbroadcast(neg(g), b.shape)

    return make_op(a.data - b.data, (a, b), vjp, "sub")


def mul(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)

    def vjp(g: Tensor):
        return unbroadcast(mul(g, b), a.shape), unbroadcast(mul(g, a), b.shape)

    return make_op(a.data * b.data, (a, b), vjp, "mul")


def div(a: ArrayLike, b: ArrayLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)

    def vjp(g: Tensor):
        ga = div(g, b)
        gb = neg(div(mul(g, a), mul(b, b)))
        return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)

    return make_op(a.data / b.data, (a, b), vjp, "div")


def neg(a: ArrayLike) -> Tensor:
    a = as_tensor(a)

    def vjp(g: Tensor):
        return (neg(g),)

    return make_op(-a.data, (a,), vjp, "neg")


def power(a: ArrayLike, exponent: float) -> Tensor:
    """Elementwise ``a ** exponent`` for a constant (non-tensor) exponent."""
    a = as_tensor(a)
    p = float(exponent)

    def vjp(g: Tensor):
        return (mul(g, mul(power(a, p - 1.0), p)),)

    return make_op(a.data**p, (a,), vjp, "power")


def square(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    return mul(a, a)


def exp(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out_data = np.exp(a.data)

    def vjp(g: Tensor):
        return (mul(g, out),)

    out = make_op(out_data, (a,), vjp, "exp")
    return out


def log(a: ArrayLike) -> Tensor:
    a = as_tensor(a)

    def vjp(g: Tensor):
        return (div(g, a),)

    return make_op(np.log(a.data), (a,), vjp, "log")


def sqrt(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out_data = np.sqrt(a.data)

    def vjp(g: Tensor):
        return (div(g, mul(out, 2.0)),)

    out = make_op(out_data, (a,), vjp, "sqrt")
    return out


def abs(a: ArrayLike) -> Tensor:  # noqa: A001 - mirrors numpy naming
    a = as_tensor(a)
    sign = np.sign(a.data)

    def vjp(g: Tensor):
        return (mul(g, Tensor(sign)),)

    return make_op(np.abs(a.data), (a,), vjp, "abs")


# ----------------------------------------------------------------------
# activations (the five searched over in the paper, §2.2.1)
# ----------------------------------------------------------------------
def tanh(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out_data = np.tanh(a.data)

    def vjp(g: Tensor):
        return (mul(g, sub(1.0, mul(out, out))),)

    out = make_op(out_data, (a,), vjp, "tanh")
    return out


def _sigmoid_data(x: np.ndarray) -> np.ndarray:
    # exp-overflow-safe logistic
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def sigmoid(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    out_data = _sigmoid_data(a.data)

    def vjp(g: Tensor):
        return (mul(g, mul(out, sub(1.0, out))),)

    out = make_op(out_data, (a,), vjp, "sigmoid")
    return out


def softplus(a: ArrayLike) -> Tensor:
    """``log(1 + exp(x))`` computed as ``max(x, 0) + log1p(exp(-|x|))``."""
    a = as_tensor(a)
    x = a.data
    out_data = np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))

    def vjp(g: Tensor):
        return (mul(g, sigmoid(a)),)

    return make_op(out_data, (a,), vjp, "softplus")


def relu(a: ArrayLike) -> Tensor:
    a = as_tensor(a)
    mask = (a.data > 0.0).astype(np.float64)

    def vjp(g: Tensor):
        return (mul(g, Tensor(mask)),)

    return make_op(a.data * mask, (a,), vjp, "relu")


def relu6(a: ArrayLike) -> Tensor:
    """``min(max(x, 0), 6)`` — the capped ReLU searched by the paper."""
    a = as_tensor(a)
    mask = ((a.data > 0.0) & (a.data < 6.0)).astype(np.float64)

    def vjp(g: Tensor):
        return (mul(g, Tensor(mask)),)

    return make_op(np.clip(a.data, 0.0, 6.0), (a,), vjp, "relu6")


def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise max; ties send the full gradient to ``a``."""
    a, b = as_tensor(a), as_tensor(b)
    take_a = (a.data >= b.data).astype(np.float64)

    def vjp(g: Tensor):
        ga = mul(g, Tensor(take_a))
        gb = mul(g, Tensor(1.0 - take_a))
        return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)

    return make_op(np.maximum(a.data, b.data), (a, b), vjp, "maximum")


def minimum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise min; ties send the full gradient to ``a``."""
    a, b = as_tensor(a), as_tensor(b)
    take_a = (a.data <= b.data).astype(np.float64)

    def vjp(g: Tensor):
        ga = mul(g, Tensor(take_a))
        gb = mul(g, Tensor(1.0 - take_a))
        return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)

    return make_op(np.minimum(a.data, b.data), (a, b), vjp, "minimum")


def where(cond: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Select ``a`` where ``cond`` (a constant boolean array) else ``b``."""
    a, b = as_tensor(a), as_tensor(b)
    c = np.asarray(cond, dtype=bool)
    cf = c.astype(np.float64)

    def vjp(g: Tensor):
        ga = mul(g, Tensor(cf))
        gb = mul(g, Tensor(1.0 - cf))
        return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)

    return make_op(np.where(c, a.data, b.data), (a, b), vjp, "where")


def clip(a: ArrayLike, lo: float, hi: float) -> Tensor:
    a = as_tensor(a)
    mask = ((a.data > lo) & (a.data < hi)).astype(np.float64)

    def vjp(g: Tensor):
        return (mul(g, Tensor(mask)),)

    return make_op(np.clip(a.data, lo, hi), (a,), vjp, "clip")


# ----------------------------------------------------------------------
# linear algebra / reductions / shape
# ----------------------------------------------------------------------
def matmul(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Batched matrix multiplication with NumPy broadcasting semantics.

    Supports 1-D operands with the usual promotion rules; batch
    dimensions broadcast, and gradients are summed back down.
    """
    a, b = as_tensor(a), as_tensor(b)
    a_vec = a.ndim == 1
    b_vec = b.ndim == 1

    def vjp(g: Tensor):
        ga: Optional[Tensor]
        gb: Optional[Tensor]
        a2 = reshape(a, (1, -1)) if a_vec else a
        b2 = reshape(b, (-1, 1)) if b_vec else b
        if a_vec and b_vec:
            g2 = reshape(g, (1, 1))
        elif a_vec:
            # (n,) @ (..., n, m) -> (..., m); lift g to (..., 1, m)
            g2 = reshape(g, g.shape[:-1] + (1, g.shape[-1]))
        elif b_vec:
            g2 = reshape(g, g.shape + (1,))
        else:
            g2 = g
        ga = matmul(g2, swapaxes(b2, -1, -2))
        gb = matmul(swapaxes(a2, -1, -2), g2)
        if a_vec:
            ga = reshape(unbroadcast(ga, (1, a.shape[0])), a.shape)
        else:
            ga = unbroadcast(ga, a.shape)
        if b_vec:
            gb = reshape(unbroadcast(gb, (b.shape[0], 1)), b.shape)
        else:
            gb = unbroadcast(gb, b.shape)
        return ga, gb

    return make_op(a.data @ b.data, (a, b), vjp, "matmul")


def dot(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Inner product of two 1-D tensors."""
    a, b = as_tensor(a), as_tensor(b)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("dot expects 1-D tensors; use matmul for matrices")
    return sum(mul(a, b))


def sum(  # noqa: A001 - mirrors numpy naming
    a: ArrayLike,
    axis: Union[None, int, tuple[int, ...]] = None,
    keepdims: bool = False,
) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)
    in_shape = a.shape

    if axis is None:
        axes: tuple[int, ...] = tuple(range(a.ndim))
    elif isinstance(axis, int):
        axes = (axis % a.ndim,)
    else:
        axes = tuple(ax % a.ndim for ax in axis)

    def vjp(g: Tensor):
        if not keepdims:
            shape_kept = tuple(
                1 if i in axes else s for i, s in enumerate(in_shape)
            )
            g = reshape(g, shape_kept)
        return (broadcast_to(g, in_shape),)

    return make_op(out_data, (a,), vjp, "sum")


def mean(
    a: ArrayLike,
    axis: Union[None, int, tuple[int, ...]] = None,
    keepdims: bool = False,
) -> Tensor:
    a = as_tensor(a)
    if axis is None:
        count = a.size
    elif isinstance(axis, int):
        count = a.shape[axis]
    else:
        count = 1
        for ax in axis:
            count *= a.shape[ax]
    return div(sum(a, axis=axis, keepdims=keepdims), float(count))


def broadcast_to(a: ArrayLike, shape: tuple[int, ...]) -> Tensor:
    a = as_tensor(a)
    in_shape = a.shape

    def vjp(g: Tensor):
        return (unbroadcast(g, in_shape),)

    return make_op(
        np.broadcast_to(a.data, shape).copy(), (a,), vjp, "broadcast_to"
    )


def reshape(a: ArrayLike, shape: tuple[int, ...]) -> Tensor:
    a = as_tensor(a)
    in_shape = a.shape

    def vjp(g: Tensor):
        return (reshape(g, in_shape),)

    return make_op(a.data.reshape(shape), (a,), vjp, "reshape")


def transpose(a: ArrayLike, axes: Optional[Sequence[int]] = None) -> Tensor:
    a = as_tensor(a)
    if axes is None:
        axes = tuple(reversed(range(a.ndim)))
    axes = tuple(axes)
    inverse = tuple(np.argsort(axes))

    def vjp(g: Tensor):
        return (transpose(g, inverse),)

    return make_op(a.data.transpose(axes), (a,), vjp, "transpose")


def swapaxes(a: ArrayLike, ax1: int, ax2: int) -> Tensor:
    a = as_tensor(a)

    def vjp(g: Tensor):
        return (swapaxes(g, ax1, ax2),)

    return make_op(a.data.swapaxes(ax1, ax2), (a,), vjp, "swapaxes")


def getitem(a: ArrayLike, idx) -> Tensor:
    """Basic and advanced indexing; backward scatter-adds into zeros."""
    a = as_tensor(a)
    in_shape = a.shape

    def vjp(g: Tensor):
        return (_scatter(g, idx, in_shape),)

    return make_op(a.data[idx], (a,), vjp, "getitem")


def _scatter(g: Tensor, idx, shape: tuple[int, ...]) -> Tensor:
    """Place ``g`` into a zero tensor of ``shape`` at ``idx`` (add-mode)."""
    zero = Tensor(np.zeros(shape))
    return _scatter_add(zero, idx, g)


def _scatter_add(base: Tensor, idx, values: Tensor) -> Tensor:
    base, values = as_tensor(base), as_tensor(values)

    def vjp(g: Tensor):
        return g, getitem(g, idx)

    out_data = base.data.copy()
    np.add.at(out_data, idx, values.data)
    return make_op(out_data, (base, values), vjp, "scatter_add")


def take(a: ArrayLike, indices: np.ndarray, axis: int = 0) -> Tensor:
    """Gather rows along ``axis`` with an integer index array."""
    a = as_tensor(a)
    indices = np.asarray(indices)
    in_shape = a.shape

    def vjp(g: Tensor):
        return (_take_adjoint(g, indices, in_shape, axis),)

    return make_op(np.take(a.data, indices, axis=axis), (a,), vjp, "take")


def _take_adjoint(
    g: Tensor, indices: np.ndarray, shape: tuple[int, ...], axis: int
) -> Tensor:
    """Adjoint of :func:`take`: scatter-add ``g`` back along ``axis``."""
    g = as_tensor(g)

    def vjp(gg: Tensor):
        return (take(gg, indices, axis=axis),)

    out_data = np.zeros(shape)
    if axis == 0:
        np.add.at(out_data, indices, g.data)
    else:
        moved = np.moveaxis(out_data, axis, 0)
        np.add.at(moved, indices, np.moveaxis(g.data, axis, 0))
        out_data = np.moveaxis(moved, 0, axis)
    return make_op(out_data, (g,), vjp, "take_adjoint")


def index_add(
    base: ArrayLike, indices: np.ndarray, values: ArrayLike, axis: int = 0
) -> Tensor:
    """``base`` with ``values`` scatter-added at ``indices`` along ``axis``.

    This is the primitive used to accumulate per-pair force
    contributions onto per-atom force vectors; its adjoint w.r.t.
    ``values`` is a gather, so the whole force pipeline stays twice
    differentiable.
    """
    base, values = as_tensor(base), as_tensor(values)
    indices = np.asarray(indices)

    def vjp(g: Tensor):
        return g, take(g, indices, axis=axis)

    out_data = base.data.copy()
    if axis == 0:
        np.add.at(out_data, indices, values.data)
    else:
        moved = np.moveaxis(out_data, axis, 0)
        np.add.at(moved, indices, np.moveaxis(values.data, axis, 0))
        out_data = np.moveaxis(moved, 0, axis)
    return make_op(out_data, (base, values), vjp, "index_add")


def concatenate(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    ts = [as_tensor(t) for t in tensors]
    sizes = [t.shape[axis] for t in ts]
    offsets = np.cumsum([0] + sizes)

    def vjp(g: Tensor):
        outs = []
        for i in range(len(ts)):
            sl = [slice(None)] * g.ndim
            sl[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
            outs.append(getitem(g, tuple(sl)))
        return tuple(outs)

    return make_op(
        np.concatenate([t.data for t in ts], axis=axis), tuple(ts), vjp, "concat"
    )


def stack(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    ts = [as_tensor(t) for t in tensors]

    def vjp(g: Tensor):
        outs = []
        for i in range(len(ts)):
            sl = [slice(None)] * g.ndim
            sl[axis] = i
            outs.append(getitem(g, tuple(sl)))
        return tuple(outs)

    return make_op(
        np.stack([t.data for t in ts], axis=axis), tuple(ts), vjp, "stack"
    )

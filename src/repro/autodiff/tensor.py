"""The :class:`Tensor` type and the reverse-mode differentiation core.

Design
------
A :class:`Tensor` wraps a ``float64`` NumPy array plus, when it was
produced by a differentiable primitive, a tuple of parent tensors and a
*vector-Jacobian product* closure ``vjp(g) -> tuple[Tensor | None]``.
Crucially, every ``vjp`` is written in terms of Tensor operations, so
running the backward pass while gradient recording is enabled yields
gradient tensors that are themselves nodes of a differentiable graph.
That property gives us double-backward — required for training on
forces, which are first-order gradients of the predicted energy.

The backward pass is iterative (explicit topological order, no
recursion) so deep graphs — e.g. a 2000-step unrolled descriptor — do
not hit Python's recursion limit.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_state = threading.local()


def is_grad_enabled() -> bool:
    """Whether new operations are being recorded onto the tape."""
    return getattr(_state, "grad_enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording.

    Operations performed inside produce constant tensors; use it for
    evaluation passes where gradients are not needed.
    """
    prev = is_grad_enabled()
    _state.grad_enabled = False
    try:
        yield
    finally:
        _state.grad_enabled = prev


class Tensor:
    """A NumPy array with a gradient tape.

    Parameters
    ----------
    data:
        Anything convertible to a ``float64`` ndarray.
    requires_grad:
        Mark this tensor as a differentiation leaf.  Calling
        :meth:`backward` on a scalar downstream of it will accumulate
        into :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_vjp", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        *,
        _parents: tuple["Tensor", ...] = (),
        _vjp: Optional[Callable[["Tensor"], Sequence[Optional["Tensor"]]]] = None,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents
        self._vjp = _vjp
        self.name = name

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def is_leaf(self) -> bool:
        """True when this tensor was not produced by a recorded op."""
        return not self._parents

    def numpy(self) -> np.ndarray:
        """The underlying array (a direct reference, not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A constant tensor sharing this tensor's data."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor({np.array2string(self.data, precision=6)}{grad_flag}{label})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # operator sugar (implementations live in repro.autodiff.functional)
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import functional as F

        return F.add(self, other)

    __radd__ = __add__

    def __mul__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import functional as F

        return F.mul(self, other)

    __rmul__ = __mul__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import functional as F

        return F.sub(self, other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import functional as F

        return F.sub(other, self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import functional as F

        return F.div(self, other)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import functional as F

        return F.div(other, self)

    def __neg__(self) -> "Tensor":
        from repro.autodiff import functional as F

        return F.neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from repro.autodiff import functional as F

        return F.power(self, exponent)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        from repro.autodiff import functional as F

        return F.matmul(self, other)

    def __getitem__(self, idx) -> "Tensor":
        from repro.autodiff import functional as F

        return F.getitem(self, idx)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autodiff import functional as F

        return F.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autodiff import functional as F

        return F.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Tensor":
        from repro.autodiff import functional as F

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return F.reshape(self, shape)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        from repro.autodiff import functional as F

        return F.transpose(self, axes)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def swapaxes(self, a: int, b: int) -> "Tensor":
        from repro.autodiff import functional as F

        return F.swapaxes(self, a, b)

    # ------------------------------------------------------------------
    # differentiation
    # ------------------------------------------------------------------
    def backward(self, gradient: Optional[ArrayLike] = None) -> None:
        """Accumulate ``d(self)/d(leaf)`` into every reachable leaf's
        :attr:`grad`.

        ``gradient`` seeds the backward pass; it defaults to ones (and
        for a scalar output that is the conventional ``1.0``).
        """
        if gradient is None:
            seed = Tensor(np.ones_like(self.data))
        else:
            seed = as_tensor(gradient)
        grads = _backprop(self, seed, create_graph=False)
        for node, g in grads.items():
            if node.requires_grad and node.is_leaf:
                contrib = _unbroadcast_data(g.data, node.data.shape)
                if node.grad is None:
                    node.grad = contrib.copy()
                else:
                    node.grad = node.grad + contrib


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def _toposort(root: Tensor) -> list[Tensor]:
    """Reverse topological order (outputs first) via iterative DFS."""
    order: list[Tensor] = []
    visited: set[int] = set()
    # stack of (node, child_index)
    stack: list[tuple[Tensor, int]] = [(root, 0)]
    on_stack: set[int] = {id(root)}
    while stack:
        node, idx = stack[-1]
        if idx < len(node._parents):
            stack[-1] = (node, idx + 1)
            child = node._parents[idx]
            if id(child) not in visited and id(child) not in on_stack:
                stack.append((child, 0))
                on_stack.add(id(child))
        else:
            stack.pop()
            on_stack.discard(id(node))
            visited.add(id(node))
            order.append(node)
    order.reverse()
    return order


def _unbroadcast_data(g: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``g`` down to ``shape`` (inverse of NumPy broadcasting)."""
    if g.shape == shape:
        return g
    extra = g.ndim - len(shape)
    if extra > 0:
        g = g.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and g.shape[i] != 1)
    if axes:
        g = g.sum(axis=axes, keepdims=True)
    return g.reshape(shape)


def _backprop(
    output: Tensor, seed: Tensor, create_graph: bool
) -> dict[Tensor, Tensor]:
    """Propagate ``seed`` backward from ``output``.

    Returns a mapping from every visited tensor to its (Tensor-valued)
    gradient.  When ``create_graph`` is false the vjp evaluations run
    under :func:`no_grad`, producing constant gradient tensors.
    """
    if seed.data.shape != output.data.shape:
        raise ValueError(
            f"seed gradient shape {seed.data.shape} does not match output "
            f"shape {output.data.shape}"
        )
    order = _toposort(output)
    grads: dict[int, Tensor] = {id(output): seed}
    # keep tensors alive so id() keys stay unique
    result: dict[Tensor, Tensor] = {}
    ctx = contextlib.nullcontext() if create_graph else no_grad()
    with ctx:
        for node in order:
            g = grads.get(id(node))
            if g is None:
                continue
            result[node] = g
            if node._vjp is None:
                continue
            parent_grads = node._vjp(g)
            for parent, pg in zip(node._parents, parent_grads):
                if pg is None:
                    continue
                existing = grads.get(id(parent))
                if existing is None:
                    grads[id(parent)] = pg
                else:
                    from repro.autodiff import functional as F

                    grads[id(parent)] = F.add(existing, pg)
    return result


def grad(
    output: Tensor,
    inputs: Iterable[Tensor],
    grad_output: Optional[ArrayLike] = None,
    create_graph: bool = False,
    allow_unused: bool = False,
) -> list[Tensor]:
    """Compute ``d(output)/d(input)`` for each input.

    Unlike :meth:`Tensor.backward`, this does not mutate ``.grad``; it
    returns gradient tensors directly.  With ``create_graph=True`` the
    returned tensors participate in the tape, so they can be
    differentiated again (the double-backward used by force training).
    """
    inputs = list(inputs)
    if grad_output is None:
        seed = Tensor(np.ones_like(output.data))
    else:
        seed = as_tensor(grad_output)
    table = _backprop(output, seed, create_graph=create_graph)
    from repro.autodiff import functional as F

    out: list[Tensor] = []
    ctx = contextlib.nullcontext() if create_graph else no_grad()
    with ctx:
        for inp in inputs:
            g = table.get(inp)
            if g is None:
                if not allow_unused:
                    raise ValueError(
                        "one of the requested inputs is not part of the graph "
                        "reaching the output (pass allow_unused=True to get "
                        "zeros instead)"
                    )
                g = Tensor(np.zeros_like(inp.data))
            elif g.data.shape != inp.data.shape:
                g = F.unbroadcast(g, inp.data.shape)
            out.append(g)
    return out


def make_op(
    data: np.ndarray,
    parents: tuple[Tensor, ...],
    vjp: Callable[[Tensor], Sequence[Optional[Tensor]]],
    name: Optional[str] = None,
) -> Tensor:
    """Construct the output tensor of a primitive operation.

    Records the tape edge only when gradient recording is enabled and at
    least one parent requires (or carries) gradients.
    """
    track = is_grad_enabled() and any(
        p.requires_grad or p._parents for p in parents
    )
    if track:
        return Tensor(data, _parents=parents, _vjp=vjp, name=name)
    return Tensor(data, name=name)

"""Finite-difference gradient verification.

Used by the test suite to certify every primitive and, end to end, the
DeepPot-SE model's analytic forces against central differences — the
same sanity check one would run against a TensorFlow implementation.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor, grad


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    wrt: int = 0,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(*inputs)`` w.r.t. one input."""
    base = [np.asarray(x, dtype=np.float64).copy() for x in inputs]
    target = base[wrt]
    out = np.zeros_like(target)
    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = target[idx]
        target[idx] = orig + eps
        f_plus = float(fn(*[Tensor(b) for b in base]).data)
        target[idx] = orig - eps
        f_minus = float(fn(*[Tensor(b) for b in base]).data)
        target[idx] = orig
        out[idx] = (f_plus - f_minus) / (2.0 * eps)
        it.iternext()
    return out


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> None:
    """Raise ``AssertionError`` when analytic and numeric gradients differ.

    ``fn`` must return a scalar tensor. All inputs are checked.
    """
    tensors = [Tensor(np.asarray(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = fn(*tensors)
    if out.data.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    analytic = [g.data for g in grad(out, tensors, allow_unused=True)]
    for i in range(len(inputs)):
        numeric = numerical_gradient(fn, inputs, wrt=i, eps=eps)
        if not np.allclose(analytic[i], numeric, rtol=rtol, atol=atol):
            worst = np.max(np.abs(analytic[i] - numeric))
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs err {worst:.3e}\n"
                f"analytic:\n{analytic[i]}\nnumeric:\n{numeric}"
            )

"""Tenants: who submitted a campaign, and how much fleet they get.

The paper's campaigns had the whole allocation to themselves; a
long-running service shares one worker fleet among many users.  A
:class:`Tenant` carries the three knobs the fair-share scheduler
enforces:

* ``weight`` — the share of dispatch opportunities relative to other
  tenants (stride scheduling: a weight-2 tenant is offered slots twice
  as often as a weight-1 tenant when both have work queued);
* ``max_in_flight`` — a hard cap on the tenant's concurrently
  executing evaluations across *all* of its campaigns, so one tenant's
  burst can never occupy the whole fleet;
* ``priority`` — strict precedence class (lower is more urgent): a
  queued priority-0 task always dispatches before a priority-1 task,
  regardless of weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.exceptions import ServiceError

#: the tenant used when a submission names none
DEFAULT_TENANT_NAME = "default"


@dataclass(frozen=True)
class Tenant:
    """One fleet-sharing identity (frozen: equality is by value, so
    re-registering the same tenant spec is idempotent)."""

    name: str = DEFAULT_TENANT_NAME
    weight: float = 1.0
    max_in_flight: int = 4
    priority: int = 0

    def __post_init__(self) -> None:
        if not str(self.name):
            raise ServiceError("tenant name must be non-empty")
        if not self.weight > 0:
            raise ServiceError(
                f"tenant {self.name!r}: weight must be > 0, "
                f"got {self.weight}"
            )
        if self.max_in_flight < 1:
            raise ServiceError(
                f"tenant {self.name!r}: max_in_flight must be >= 1, "
                f"got {self.max_in_flight}"
            )

    def as_doc(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "weight": float(self.weight),
            "max_in_flight": int(self.max_in_flight),
            "priority": int(self.priority),
        }


def tenant_from_spec(spec: Any) -> Tenant:
    """Build a tenant from the submission JSON.

    Accepts a bare name (``"alice"``), a tenant sub-object
    (``{"name": "alice", "weight": 2}``), or ``None`` (the default
    tenant).  Unknown keys are rejected loudly — a typo'd quota field
    silently granting unlimited fleet would be the worst failure mode.
    """
    if spec is None:
        return Tenant()
    if isinstance(spec, str):
        return Tenant(name=spec)
    if not isinstance(spec, dict):
        raise ServiceError(
            f"tenant spec must be a name or an object, got {type(spec).__name__}"
        )
    known = {"name", "weight", "max_in_flight", "priority"}
    unknown = sorted(set(spec) - known)
    if unknown:
        raise ServiceError(f"unknown tenant fields: {unknown}")
    try:
        return Tenant(
            name=str(spec.get("name", DEFAULT_TENANT_NAME)),
            weight=float(spec.get("weight", 1.0)),
            max_in_flight=int(spec.get("max_in_flight", 4)),
            priority=int(spec.get("priority", 0)),
        )
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"bad tenant spec {spec!r}: {exc}") from exc

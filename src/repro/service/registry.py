"""Durable registry of submitted campaigns.

Each campaign owns a directory under ``<root>/campaigns/<id>/``:

* ``spec.json`` — the submission, written once at accept time: tenant,
  campaign config, problem spec, display name.  Enough to re-create
  the campaign from nothing.
* ``state.json`` — the lifecycle record (atomic-replace on every
  transition): ``queued → running → done | failed | cancelled |
  interrupted``.  A server that was SIGKILLed mid-campaign restarts,
  reads these, and knows exactly which campaigns to resume.
* ``journal.jsonl`` — the write-ahead journal the campaign's own
  machinery appends (same format as a solo ``repro-hpo run --save``),
  which is what makes the resume bit-identical.
* ``front.json`` / campaign snapshot files — written at completion.

The registry persists *facts*; all scheduling state is in-memory and
rebuilt on restart.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.exceptions import ServiceError
from repro.hpo.campaign import CampaignConfig
from repro.service.tenancy import Tenant, tenant_from_spec

# lifecycle states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
INTERRUPTED = "interrupted"

#: states a restarted server picks back up
RESUMABLE_STATES = frozenset({QUEUED, RUNNING, INTERRUPTED})
#: states with no further transitions
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


def _atomic_write_json(path: Path, doc: dict[str, Any]) -> None:
    tmp = path.parent / f".{uuid.uuid4().hex}.tmp"
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def campaign_config_from_spec(doc: Any) -> CampaignConfig:
    """A :class:`CampaignConfig` from the submission's ``config``
    object; unknown fields are rejected (a typo'd ``generations`` must
    not silently run the 5×100×6 default)."""
    if doc is None:
        doc = {}
    if not isinstance(doc, dict):
        raise ServiceError(
            f"config must be an object, got {type(doc).__name__}"
        )
    import dataclasses

    known = {f.name for f in dataclasses.fields(CampaignConfig)}
    unknown = sorted(set(doc) - known)
    if unknown:
        raise ServiceError(f"unknown config fields: {unknown}")
    try:
        return CampaignConfig(**doc)
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"bad campaign config {doc!r}: {exc}") from exc


@dataclass
class ManagedCampaign:
    """One submitted campaign: identity, spec, and live runtime state."""

    id: str
    name: str
    tenant: Tenant
    config: CampaignConfig
    problem_spec: dict[str, Any]
    directory: Path
    state: str = QUEUED
    error: Optional[str] = None
    submitted_ts: float = 0.0
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None
    #: set to stop the campaign at its next generation boundary
    cancel_event: threading.Event = field(default_factory=threading.Event)
    #: the live CampaignStatus once running (not persisted)
    status: Any = None

    # ------------------------------------------------------------------
    def spec_doc(self) -> dict[str, Any]:
        import dataclasses

        return {
            "id": self.id,
            "name": self.name,
            "tenant": self.tenant.as_doc(),
            "config": dataclasses.asdict(self.config),
            "problem": dict(self.problem_spec),
            "submitted_ts": self.submitted_ts,
        }

    def state_doc(self) -> dict[str, Any]:
        return {
            "state": self.state,
            "error": self.error,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
        }

    def summary(self) -> dict[str, Any]:
        """The ``GET /campaigns`` row."""
        return {
            "id": self.id,
            "name": self.name,
            "tenant": self.tenant.name,
            "state": self.state,
            "error": self.error,
            "mode": self.config.mode,
            "n_runs": self.config.n_runs,
            "pop_size": self.config.pop_size,
            "generations": self.config.generations,
            "base_seed": self.config.base_seed,
            "submitted_ts": self.submitted_ts,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
        }

    def detail(self) -> dict[str, Any]:
        """The ``GET /campaigns/{id}`` body: summary + live status."""
        doc = self.summary()
        doc["tenant_spec"] = self.tenant.as_doc()
        doc["problem"] = dict(self.problem_spec)
        status = self.status
        doc["status"] = status.snapshot() if status is not None else {}
        return doc


class CampaignRegistry:
    """Create, persist, and recover :class:`ManagedCampaign` records."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.campaigns_dir = self.root / "campaigns"
        self.campaigns_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._campaigns: dict[str, ManagedCampaign] = {}

    # ------------------------------------------------------------------
    def create(self, spec: Any) -> ManagedCampaign:
        """Validate a submission and persist the new campaign.

        ``spec`` is the ``POST /campaigns`` JSON body::

            {"name": "...", "tenant": {...} | "alice",
             "config": {"n_runs": 1, "pop_size": 8, ...},
             "problem": {"backend": "surrogate"}}
        """
        if not isinstance(spec, dict):
            raise ServiceError(
                f"submission must be an object, got {type(spec).__name__}"
            )
        known = {"name", "tenant", "config", "problem", "id"}
        unknown = sorted(set(spec) - known)
        if unknown:
            raise ServiceError(f"unknown submission fields: {unknown}")
        tenant = tenant_from_spec(spec.get("tenant"))
        config = campaign_config_from_spec(spec.get("config"))
        problem_spec = spec.get("problem") or {"backend": "surrogate"}
        if not isinstance(problem_spec, dict):
            raise ServiceError("problem spec must be an object")
        problem_spec = dict(problem_spec)
        # the config's objective selection is authoritative: thread it
        # into the problem spec so the evaluator factory (and any later
        # resume) builds the matching extended problem
        from repro.hpo.objectives import BASE_OBJECTIVES

        if (
            tuple(config.objectives) != BASE_OBJECTIVES
            and "objectives" not in problem_spec
        ):
            problem_spec["objectives"] = list(config.objectives)
        campaign_id = str(spec.get("id") or uuid.uuid4().hex[:12])
        with self._lock:
            if campaign_id in self._campaigns:
                raise ServiceError(
                    f"campaign id {campaign_id!r} already exists"
                )
        directory = self.campaigns_dir / campaign_id
        if directory.exists():
            raise ServiceError(
                f"campaign directory {directory} already exists"
            )
        directory.mkdir(parents=True)
        campaign = ManagedCampaign(
            id=campaign_id,
            name=str(spec.get("name") or campaign_id),
            tenant=tenant,
            config=config,
            problem_spec=dict(problem_spec),
            directory=directory,
            submitted_ts=time.time(),
        )
        _atomic_write_json(directory / "spec.json", campaign.spec_doc())
        _atomic_write_json(directory / "state.json", campaign.state_doc())
        with self._lock:
            self._campaigns[campaign_id] = campaign
        return campaign

    # ------------------------------------------------------------------
    def set_state(
        self,
        campaign: ManagedCampaign,
        state: str,
        error: Optional[str] = None,
    ) -> None:
        """One lifecycle transition, persisted before it is visible."""
        with self._lock:
            if campaign.state in TERMINAL_STATES:
                return  # cancel/shutdown races: first terminal state wins
            if state == RUNNING and campaign.started_ts is None:
                campaign.started_ts = time.time()
            if state in TERMINAL_STATES or state == INTERRUPTED:
                campaign.finished_ts = time.time()
            campaign.state = state
            campaign.error = error
            _atomic_write_json(
                campaign.directory / "state.json", campaign.state_doc()
            )

    # ------------------------------------------------------------------
    def get(self, campaign_id: str) -> ManagedCampaign:
        with self._lock:
            campaign = self._campaigns.get(str(campaign_id))
        if campaign is None:
            raise ServiceError(f"no campaign {campaign_id!r}")
        return campaign

    def list(self) -> list[ManagedCampaign]:
        with self._lock:
            return sorted(
                self._campaigns.values(), key=lambda c: c.submitted_ts
            )

    # ------------------------------------------------------------------
    def load_persisted(self) -> list[ManagedCampaign]:
        """Rehydrate campaigns from disk (server restart).

        Unreadable directories are skipped, not fatal — one corrupted
        campaign must not take the whole service down.  Already-loaded
        ids are left untouched.
        """
        loaded: list[ManagedCampaign] = []
        for directory in sorted(self.campaigns_dir.iterdir()):
            if not directory.is_dir():
                continue
            with self._lock:
                if directory.name in self._campaigns:
                    continue
            try:
                spec = json.loads((directory / "spec.json").read_text())
                state = json.loads((directory / "state.json").read_text())
                campaign = ManagedCampaign(
                    id=str(spec["id"]),
                    name=str(spec.get("name") or spec["id"]),
                    tenant=tenant_from_spec(spec.get("tenant")),
                    config=campaign_config_from_spec(spec.get("config")),
                    problem_spec=dict(spec.get("problem") or {}),
                    directory=directory,
                    state=str(state.get("state", QUEUED)),
                    error=state.get("error"),
                    submitted_ts=float(spec.get("submitted_ts") or 0.0),
                    started_ts=state.get("started_ts"),
                    finished_ts=state.get("finished_ts"),
                )
            except (OSError, ValueError, KeyError, ServiceError):
                continue
            with self._lock:
                self._campaigns[campaign.id] = campaign
            loaded.append(campaign)
        return loaded

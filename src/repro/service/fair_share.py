"""Fair-share scheduling of many campaigns over one worker fleet.

The execution backends are single-owner by design: the process pool's
parent-side bookkeeping is single-threaded (all state transitions
happen inside ``_drain`` on the driver thread), and the inline backend
evaluates during ``submit``.  Running N concurrent campaigns therefore
cannot mean N threads poking one backend — it means one *dispatcher*
owning the backend exclusively, with every campaign submitting into
its own :class:`CampaignQueue` and the :class:`FairShareScheduler`
deciding, slot by slot, whose task runs next.

The policy is stride scheduling over tenants, with two hard fences:

1. **Strict priority.**  Among tenants with queued work and quota
   headroom, only the lowest ``priority`` class is eligible.
2. **Quota.**  A tenant's concurrently executing evaluations (summed
   over all its campaigns) never exceed its ``max_in_flight``; the
   whole fleet never exceeds ``total_slots``.

Within the eligible set the tenant with the smallest virtual time
wins, and its virtual time advances by ``1 / weight`` per dispatched
task — so over time, dispatch opportunities are proportional to
weights.  Ties break by tenant name, and a tenant's own campaigns are
served round-robin, making the whole dispatch order deterministic for
a given arrival order (the property the bit-identical-front tests pin
down).

Campaign results are unaffected by any of this: evaluations are pure
functions of the phenome (and problem fingerprint), so interleaving
changes only *when* work runs, never *what* it returns.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Optional

from repro.engine.backends import as_backend
from repro.exceptions import ServiceError
from repro.obs.metrics import MetricsRegistry, get_registry

from repro.service.tenancy import Tenant


def worker_capacity(backend: Any, default: int = 4) -> int:
    """Best-effort fleet size of ``backend`` (pool ``n_workers``, a
    client's live worker count, or ``default``)."""
    for probe in (backend, getattr(backend, "client", None)):
        n = getattr(probe, "n_workers", None)
        if n:
            return int(n)
    return int(default)


class ServiceFuture:
    """Future handed to a campaign's engine for one queued evaluation.

    Resolution comes from the dispatcher thread; the waiting side
    blocks on an event, never on the backend — campaign threads must
    not touch the backend at all.
    """

    __slots__ = ("_event", "_result", "_exception")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: Any = None
        self._exception: Optional[BaseException] = None

    def _resolve(
        self,
        result: Any = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        self._result = result
        self._exception = exception
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"evaluation unresolved after {timeout}s"
            )
        if self._exception is not None:
            raise self._exception
        return self._result


class CampaignQueue:
    """One campaign's submission lane into the shared fleet.

    Implements the engine's ``ExecutionBackend`` protocol, so a
    campaign built with ``client=queue`` runs unchanged — ``submit``
    enqueues and returns a :class:`ServiceFuture`; the scheduler
    executes it on the real backend when this campaign's turn comes.
    """

    is_execution_backend = True

    def __init__(
        self, scheduler: "FairShareScheduler", campaign_id: str, tenant: Tenant
    ) -> None:
        self.scheduler = scheduler
        self.campaign_id = str(campaign_id)
        self.tenant = tenant
        #: FIFO of (individual, ServiceFuture) — guarded by the
        #: scheduler's lock, like all queue accounting below
        self.pending: deque[tuple[Any, ServiceFuture]] = deque()
        self.in_flight = 0
        self.submitted = 0
        self.completed = 0
        self.cache_hits = 0
        self.closed = False

    # -- ExecutionBackend protocol -------------------------------------
    def submit(self, individual: Any) -> ServiceFuture:
        return self.scheduler._enqueue(self, individual)

    def on_cache_hit(self, individual: Any) -> None:
        self.scheduler._note_cache_hit(self)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        with self.scheduler._cond:
            return {
                "pending": len(self.pending),
                "in_flight": self.in_flight,
                "submitted": self.submitted,
                "completed": self.completed,
                "cache_hits": self.cache_hits,
            }


class _TenantAccount:
    """Scheduler-side ledger for one tenant."""

    __slots__ = (
        "tenant",
        "vtime",
        "in_flight",
        "peak_in_flight",
        "dispatched",
        "queues",
        "rr",
    )

    def __init__(self, tenant: Tenant) -> None:
        self.tenant = tenant
        self.vtime = 0.0
        self.in_flight = 0
        self.peak_in_flight = 0
        self.dispatched = 0
        self.queues: list[CampaignQueue] = []
        self.rr = 0  # round-robin cursor over this tenant's queues

    def has_pending(self) -> bool:
        return any(q.pending for q in self.queues)

    def next_queue(self) -> CampaignQueue:
        """The round-robin pick among this tenant's queues with work."""
        n = len(self.queues)
        for offset in range(n):
            queue = self.queues[(self.rr + offset) % n]
            if queue.pending:
                self.rr = (self.rr + offset + 1) % n
                return queue
        raise ServiceError("next_queue called with nothing pending")


class _InFlightTask:
    __slots__ = ("queue", "account", "service_future", "backend_future")

    def __init__(
        self,
        queue: CampaignQueue,
        account: _TenantAccount,
        service_future: ServiceFuture,
        backend_future: Any,
    ) -> None:
        self.queue = queue
        self.account = account
        self.service_future = service_future
        self.backend_future = backend_future


class FairShareScheduler:
    """Multiplex many campaign queues onto one execution backend.

    The scheduler is the backend's *only* caller: ``start()`` runs a
    dispatcher thread that alternates draining finished backend
    futures and dispatching the next fair-share picks; tests drive the
    same logic deterministically by leaving it unstarted and calling
    :meth:`tick` by hand.

    ``total_slots`` bounds fleet-wide concurrency and defaults to the
    backend's worker count (inline backends get ``default_slots``).
    """

    def __init__(
        self,
        backend: Any = None,
        total_slots: Optional[int] = None,
        poll_interval: float = 0.002,
        metrics: Optional[MetricsRegistry] = None,
        default_slots: int = 4,
    ) -> None:
        self.backend = as_backend(backend)
        self.total_slots = (
            int(total_slots)
            if total_slots is not None
            else worker_capacity(self.backend, default_slots)
        )
        if self.total_slots < 1:
            raise ServiceError("total_slots must be >= 1")
        self.poll_interval = float(poll_interval)
        self._registry = metrics if metrics is not None else get_registry()
        self._c_dispatched = self._registry.counter(
            "service_dispatched_total"
        )
        self._g_total_inflight = self._registry.gauge("service_in_flight")
        self._cond = threading.Condition()
        self._accounts: dict[str, _TenantAccount] = {}
        self._inflight: list[_InFlightTask] = []
        self._thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._stopped = False

    # ------------------------------------------------------------------
    # campaign lifecycle
    # ------------------------------------------------------------------
    def validate_tenant(self, tenant: Tenant) -> None:
        """Reject a tenant name re-used with *different* knobs: the
        quota a tenant was admitted with must not be silently rewritten
        by a later submission.  Raises at submit time, so a bad
        submission gets an HTTP 400 instead of a failed campaign."""
        with self._cond:
            account = self._accounts.get(tenant.name)
            if account is not None and account.tenant != tenant:
                raise ServiceError(
                    f"tenant {tenant.name!r} already registered with "
                    f"{account.tenant.as_doc()}, refusing conflicting "
                    f"{tenant.as_doc()}"
                )

    def register(self, campaign_id: str, tenant: Tenant) -> CampaignQueue:
        """Open a submission lane for one campaign under ``tenant``."""
        self.validate_tenant(tenant)
        with self._cond:
            if self._stopped:
                raise ServiceError("scheduler is stopped")
            account = self._accounts.get(tenant.name)
            if account is None:
                account = _TenantAccount(tenant)
                self._accounts[tenant.name] = account
            queue = CampaignQueue(self, campaign_id, account.tenant)
            account.queues.append(queue)
            return queue

    def unregister(self, queue: CampaignQueue) -> None:
        """Close a campaign's lane; anything still pending fails.

        In-flight work keeps draining (its accounting is decremented on
        completion as usual) — only undispatched submissions are failed,
        and a finished campaign has none.
        """
        with self._cond:
            queue.closed = True
            account = self._accounts.get(queue.tenant.name)
            if account is not None and queue in account.queues:
                account.queues.remove(queue)
                account.rr = 0
            pending = list(queue.pending)
            queue.pending.clear()
            self._sample_queue(queue)
        for _, future in pending:
            future._resolve(
                exception=ServiceError(
                    f"campaign {queue.campaign_id} unregistered with "
                    "work still queued"
                )
            )

    # ------------------------------------------------------------------
    # queue side (campaign threads)
    # ------------------------------------------------------------------
    def _enqueue(
        self, queue: CampaignQueue, individual: Any
    ) -> ServiceFuture:
        future = ServiceFuture()
        with self._cond:
            if self._stopped or queue.closed:
                raise ServiceError(
                    f"campaign {queue.campaign_id}: queue is closed"
                )
            queue.pending.append((individual, future))
            queue.submitted += 1
            self._sample_queue(queue)
            self._cond.notify_all()
        return future

    def _note_cache_hit(self, queue: CampaignQueue) -> None:
        with self._cond:
            queue.cache_hits += 1
        # forward for backend-side accounting (pool cache counters)
        self.backend.on_cache_hit(None)

    # ------------------------------------------------------------------
    # dispatcher side (one thread only)
    # ------------------------------------------------------------------
    def tick(self) -> int:
        """One drain + dispatch round; returns tasks dispatched.

        Must only ever run on one thread at a time — the dispatcher
        thread when started, or the test driving it manually.
        """
        self._drain()
        return self._dispatch()

    def _drain(self) -> None:
        with self._cond:
            inflight = list(self._inflight)
        finished: list[tuple[_InFlightTask, Any, Optional[BaseException]]] = []
        for task in inflight:
            # done() drives the pool backend's own bookkeeping; safe
            # here because this is the backend's only calling thread
            if not task.backend_future.done():
                continue
            result: Any = None
            exception: Optional[BaseException] = None
            try:
                result = task.backend_future.result(timeout=0)
            except BaseException as exc:  # noqa: BLE001 - engine's policy
                exception = exc
            finished.append((task, result, exception))
        if not finished:
            return
        with self._cond:
            for task, _, _ in finished:
                self._inflight.remove(task)
                task.account.in_flight -= 1
                task.queue.in_flight -= 1
                task.queue.completed += 1
                self._sample_queue(task.queue)
                self._sample_tenant(task.account)
            self._g_total_inflight.set(len(self._inflight))
            self._cond.notify_all()
        for task, result, exception in finished:
            task.service_future._resolve(result=result, exception=exception)

    def _pick(self) -> Optional[tuple[CampaignQueue, _TenantAccount]]:
        """The fair-share choice, under the lock; None when nothing is
        eligible (empty queues, quotas saturated, or fleet full)."""
        # an elastic backend's capacity moves while campaigns run
        # (autoscale, revocation); re-probe it so the slot ceiling
        # tracks the live fleet instead of the size at construction
        cap = getattr(self.backend, "capacity", None)
        limit = (
            self.total_slots
            if not callable(cap)
            else min(self.total_slots, max(1, int(cap())))
        )
        if len(self._inflight) >= limit:
            return None
        eligible = [
            account
            for account in self._accounts.values()
            if account.has_pending()
            and account.in_flight < account.tenant.max_in_flight
        ]
        if not eligible:
            return None
        top = min(a.tenant.priority for a in eligible)
        account = min(
            (a for a in eligible if a.tenant.priority == top),
            key=lambda a: (a.vtime, a.tenant.name),
        )
        return account.next_queue(), account

    def _dispatch(self) -> int:
        dispatched = 0
        while True:
            with self._cond:
                picked = self._pick()
                if picked is None:
                    break
                queue, account = picked
                individual, future = queue.pending.popleft()
                account.vtime += 1.0 / account.tenant.weight
                account.in_flight += 1
                account.peak_in_flight = max(
                    account.peak_in_flight, account.in_flight
                )
                account.dispatched += 1
                queue.in_flight += 1
                self._sample_queue(queue)
                self._sample_tenant(account)
            # the backend call runs unlocked: the inline backend
            # evaluates *during* submit, and campaign threads must be
            # able to keep enqueueing meanwhile
            try:
                backend_future = self.backend.submit(individual)
            except BaseException as exc:  # noqa: BLE001 - engine's policy
                with self._cond:
                    account.in_flight -= 1
                    queue.in_flight -= 1
                    queue.completed += 1
                    self._sample_queue(queue)
                    self._sample_tenant(account)
                future._resolve(exception=exc)
                continue
            task = _InFlightTask(queue, account, future, backend_future)
            with self._cond:
                self._inflight.append(task)
                self._g_total_inflight.set(len(self._inflight))
            self._c_dispatched.inc()
            dispatched += 1
        return dispatched

    # ------------------------------------------------------------------
    # metrics (labeled per campaign / per tenant — satellite fix for
    # the process-global gauges clobbering each other)
    # ------------------------------------------------------------------
    def _sample_queue(self, queue: CampaignQueue) -> None:
        labels = {"campaign_id": queue.campaign_id}
        self._registry.gauge("service_queue_depth", labels=labels).set(
            len(queue.pending)
        )
        self._registry.gauge(
            "service_campaign_in_flight", labels=labels
        ).set(queue.in_flight)

    def _sample_tenant(self, account: _TenantAccount) -> None:
        self._registry.gauge(
            "service_tenant_in_flight",
            labels={"tenant": account.tenant.name},
        ).set(account.in_flight)

    # ------------------------------------------------------------------
    # dispatcher thread
    # ------------------------------------------------------------------
    def start(self) -> "FairShareScheduler":
        with self._cond:
            if self._stopped:
                raise ServiceError("scheduler is stopped")
            if self._thread is not None:
                return self
            self._thread = threading.Thread(
                target=self._loop, name="repro-fair-share", daemon=True
            )
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stopping.is_set():
            self.tick()
            with self._cond:
                busy = self._inflight or any(
                    a.has_pending() for a in self._accounts.values()
                )
                if not busy:
                    # idle: sleep until an enqueue (or stop) wakes us
                    self._cond.wait(timeout=0.1)
            if busy:
                # work in flight: poll the backend at a gentle rate
                # instead of spinning through tick()
                self._stopping.wait(self.poll_interval)
        self.tick()  # final drain so stop() observes a settled state

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop dispatching; with ``drain`` (default), first wait for
        queued + in-flight work to finish."""
        if drain and self._thread is not None:
            self.wait_idle(timeout=timeout)
        self._stopping.set()
        with self._cond:
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        with self._cond:
            self._stopped = True

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no work is pending or in flight (True) or the
        timeout elapses (False).  Requires a started scheduler."""
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._inflight or any(
                a.has_pending() for a in self._accounts.values()
            ):
                remaining = (
                    None
                    if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(timeout=remaining if remaining else 0.1)
        return True

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Point-in-time scheduler state for the ``/status`` plane."""
        with self._cond:
            tenants = {
                name: {
                    **account.tenant.as_doc(),
                    "vtime": round(account.vtime, 6),
                    "in_flight": account.in_flight,
                    "peak_in_flight": account.peak_in_flight,
                    "dispatched": account.dispatched,
                    "campaigns": [q.campaign_id for q in account.queues],
                }
                for name, account in sorted(self._accounts.items())
            }
            queues = {
                q.campaign_id: {
                    "tenant": q.tenant.name,
                    "pending": len(q.pending),
                    "in_flight": q.in_flight,
                    "submitted": q.submitted,
                    "completed": q.completed,
                    "cache_hits": q.cache_hits,
                }
                for account in self._accounts.values()
                for q in account.queues
            }
            return {
                "total_slots": self.total_slots,
                "in_flight": len(self._inflight),
                "tenants": tenants,
                "queues": queues,
            }

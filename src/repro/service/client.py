"""Thin HTTP client for the campaign service (urllib, zero-dep).

Backs the ``repro-hpo submit / campaigns / cancel`` subcommands and
the service tests; every method is one request, JSON in / JSON out,
with HTTP errors surfaced as :class:`~repro.exceptions.ServiceError`
carrying the server's error message.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Optional

from repro.exceptions import ServiceError


class ServiceClient:
    """Talk to a :class:`~repro.service.server.CampaignServer`."""

    def __init__(self, url: str, timeout: float = 10.0) -> None:
        if "://" not in url:
            url = f"http://{url}"
        self.url = url.rstrip("/")
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    def _request(
        self,
        path: str,
        method: str = "GET",
        payload: Optional[dict[str, Any]] = None,
    ) -> Any:
        body = (
            None
            if payload is None
            else json.dumps(payload).encode("utf-8")
        )
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as resp:
                raw = resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get(
                    "error", str(exc)
                )
            except Exception:  # noqa: BLE001 - non-JSON error body
                message = str(exc)
            raise ServiceError(
                f"{method} {path}: {message} (HTTP {exc.code})"
            ) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceError(
                f"cannot reach {self.url}: {exc}"
            ) from exc
        try:
            return json.loads(raw) if raw else {}
        except ValueError as exc:
            raise ServiceError(
                f"{method} {path}: non-JSON response"
            ) from exc

    # ------------------------------------------------------------------
    def submit(self, spec: dict[str, Any]) -> dict[str, Any]:
        """POST a campaign submission; returns its summary (id, state)."""
        return self._request("/campaigns", method="POST", payload=spec)

    def campaigns(self) -> list[dict[str, Any]]:
        return self._request("/campaigns").get("campaigns", [])

    def campaign(self, campaign_id: str) -> dict[str, Any]:
        return self._request(f"/campaigns/{campaign_id}")

    def front(self, campaign_id: str) -> dict[str, Any]:
        return self._request(f"/campaigns/{campaign_id}/front")

    def cancel(self, campaign_id: str) -> dict[str, Any]:
        return self._request(
            f"/campaigns/{campaign_id}/cancel", method="POST"
        )

    def status(self) -> dict[str, Any]:
        return self._request("/status")

    def metrics(self) -> str:
        request = urllib.request.Request(f"{self.url}/metrics")
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as resp:
                return resp.read().decode("utf-8")
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceError(
                f"cannot reach {self.url}: {exc}"
            ) from exc

"""HTTP front for the campaign service (stdlib ``http.server``).

Same zero-dependency pattern as :class:`~repro.obs.live.
ObservabilityServer`, extended with the submission API:

====== ============================ =====================================
Method Path                         Meaning
====== ============================ =====================================
POST   ``/campaigns``               submit a campaign (JSON body)
GET    ``/campaigns``               list campaigns (summaries)
GET    ``/campaigns/{id}``          one campaign, incl. live status
GET    ``/campaigns/{id}/front``    its Pareto front (final or live)
POST   ``/campaigns/{id}/cancel``   stop at the next generation boundary
GET    ``/status``                  multi-campaign service snapshot
GET    ``/metrics``                 Prometheus text (per-campaign labels)
GET    ``/healthz``                 liveness probe
====== ============================ =====================================

Request handling only reads service state or enqueues (submission and
cancellation are cheap, non-blocking registry operations) — campaign
execution stays on the service's runner threads.

SIGTERM/SIGINT are wired to a *graceful* drain:
:meth:`CampaignServer.install_signal_handlers` flips an event that
:meth:`serve_until_shutdown` turns into ``service.shutdown()`` — every
running campaign stops at its next generation boundary with its
journal flushed and fsynced, and is marked resumable.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional

from repro.exceptions import ServiceError
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import _json_safe

from repro.service.service import CampaignService

#: refuse submission bodies beyond this (a config is a few hundred bytes)
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    plane: "CampaignServer"  # injected by the server factory

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        return None  # keep server stdout clean

    # ------------------------------------------------------------------
    def _send_json(self, doc: Any, code: int = 200) -> None:
        body = json.dumps(_json_safe(doc), allow_nan=False).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self, body: str, content_type: str, code: int = 200
    ) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _error(self, message: str, code: int) -> None:
        self._send_json({"error": message}, code=code)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(f"body too large ({length} bytes)")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(f"body is not valid JSON: {exc}") from exc

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        service = self.plane.service
        try:
            if path == "/metrics":
                self._send_text(
                    self.plane.registry.to_prometheus(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/status":
                self._send_json(service.snapshot())
            elif path == "/campaigns":
                self._send_json(
                    {"campaigns": [c.summary() for c in service.list()]}
                )
            elif path.startswith("/campaigns/"):
                parts = path.split("/")[2:]
                if len(parts) == 1:
                    self._send_json(service.get(parts[0]).detail())
                elif len(parts) == 2 and parts[1] == "front":
                    self._send_json(service.front(parts[0]))
                else:
                    self._error("not found", 404)
            elif path in ("/", "/healthz"):
                self._send_text("ok\n", "text/plain; charset=utf-8")
            else:
                self._error("not found", 404)
        except ServiceError as exc:
            self._error(str(exc), 404)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        service = self.plane.service
        try:
            if path == "/campaigns":
                spec = self._read_body()
                try:
                    campaign = service.submit(spec)
                except ServiceError as exc:
                    self._error(str(exc), 400)
                    return
                self._send_json(campaign.summary(), code=201)
            elif path.startswith("/campaigns/") and path.endswith(
                "/cancel"
            ):
                campaign_id = path.split("/")[2]
                try:
                    campaign = service.cancel(campaign_id)
                except ServiceError as exc:
                    self._error(str(exc), 404)
                    return
                self._send_json(campaign.summary())
            else:
                self._error("not found", 404)
        except ServiceError as exc:
            self._error(str(exc), 400)
        except (BrokenPipeError, ConnectionResetError):
            pass


class CampaignServer:
    """Serve a :class:`CampaignService` over HTTP.

    ``port=0`` binds an ephemeral port — read it back from
    :attr:`port`/:attr:`url`.  The HTTP loop runs on a daemon thread;
    the intended main-thread pattern is::

        server = CampaignServer(service, port=8080).start()
        server.install_signal_handlers()   # SIGTERM/SIGINT -> drain
        server.serve_until_shutdown()      # blocks; graceful on signal
    """

    def __init__(
        self,
        service: CampaignService,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.service = service
        self.registry = registry if registry is not None else get_registry()
        handler = type("_BoundHandler", (_Handler,), {"plane": self})
        self._httpd = ThreadingHTTPServer((host, int(port)), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._shutdown_requested = threading.Event()

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    # ------------------------------------------------------------------
    def start(self) -> "CampaignServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-campaign-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def request_shutdown(self) -> None:
        """Signal-safe: ask :meth:`serve_until_shutdown` to drain."""
        self._shutdown_requested.set()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain (main thread only)."""

        def _handler(signum: int, frame: Any) -> None:
            self.request_shutdown()

        signal.signal(signal.SIGTERM, _handler)
        signal.signal(signal.SIGINT, _handler)

    def serve_until_shutdown(
        self, poll: float = 0.2, timeout: float = 60.0
    ) -> None:
        """Block until a shutdown is requested, then drain and close:
        campaigns stop at generation boundaries (journals fsynced,
        states marked resumable), the fleet stops, the socket closes."""
        while not self._shutdown_requested.wait(timeout=poll):
            pass
        self.service.shutdown(timeout=timeout)
        self.close()

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "CampaignServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

"""The multi-tenant campaign service.

:class:`CampaignService` is the long-running core the HTTP server
fronts: it accepts campaign submissions, runs up to ``max_active`` of
them concurrently — each on its own thread, all sharing **one**
execution backend through the :class:`~repro.service.fair_share.
FairShareScheduler` — and persists enough state that a killed server
resumes every interrupted campaign bit-identically on restart.

Per campaign:

* a :class:`~repro.obs.live.CampaignStatus` installed *thread-locally*
  (:func:`~repro.obs.live.use_thread_status`), so the existing
  drivers/engine/telemetry publish into that campaign's snapshot and
  label their gauges with its id — concurrent campaigns no longer
  clobber each other's metrics;
* a :class:`~repro.store.journal.CampaignJournal` in the campaign's
  own directory (write-ahead, fsync per append);
* a lane (:class:`~repro.service.fair_share.CampaignQueue`) into the
  shared fleet, governed by the submitting tenant's weight/quota;
* the **shared** content-addressed evaluation cache: identical
  (phenome, fingerprint) evaluations requested by different campaigns
  — or different tenants — execute once, ever.

Cancellation and shutdown both ride the per-generation callback, which
the drivers invoke *after* the generation is journaled: in-flight
evaluations of the current generation drain naturally, the journal
gains no torn tail, and the campaign stops at a clean resume point.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Callable, Optional

from repro.engine.backends import as_backend
from repro.exceptions import (
    CampaignCancelled,
    ServiceError,
    ServiceShutdown,
)
from repro.hpo.campaign import Campaign
from repro.obs.live import CampaignStatus, use_thread_status
from repro.store.cache import CachedProblem, EvaluationCache
from repro.store.journal import CampaignJournal, journal_path
from repro.store.resume import problem_factory_from_spec, resume_campaign

from repro.service.fair_share import FairShareScheduler
from repro.service.registry import (
    CANCELLED,
    DONE,
    FAILED,
    INTERRUPTED,
    QUEUED,
    RESUMABLE_STATES,
    RUNNING,
    CampaignRegistry,
    ManagedCampaign,
)


def _front_doc(result: Any) -> dict[str, Any]:
    """The persisted Pareto front: genomes + fitness, sorted so two
    runs of the same campaign produce byte-identical documents."""
    members = []
    for ind in result.aggregate_pareto_front():
        genome = getattr(ind, "genome", None)
        members.append(
            {
                "genome": (
                    [float(g) for g in genome]
                    if genome is not None
                    else None
                ),
                "fitness": [float(f) for f in ind.fitness],
            }
        )
    members.sort(key=lambda m: (m["fitness"], m["genome"] or []))
    return {"front": members, "n_trainings": result.n_trainings}


class CampaignService:
    """Run many tenants' campaigns over one shared worker fleet."""

    def __init__(
        self,
        root: str | Path,
        backend: Any = None,
        max_active: int = 4,
        total_slots: Optional[int] = None,
        cache: Optional[EvaluationCache] = None,
        cache_failures: bool = False,
        problem_factory_builder: Optional[Callable[..., Any]] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if max_active < 1:
            raise ServiceError("max_active must be >= 1")
        self.max_active = int(max_active)
        #: cross-campaign shared cache — the whole point: tenants share
        #: finished work, not just workers
        self.cache = (
            cache
            if cache is not None
            else EvaluationCache(
                self.root / "cache", cache_failures=cache_failures
            )
        )
        self._owns_backend = getattr(backend, "is_execution_backend", False)
        self.backend = as_backend(backend)
        self.scheduler = FairShareScheduler(
            self.backend, total_slots=total_slots
        )
        self.scheduler.start()
        self.registry = CampaignRegistry(self.root)
        self._build_problem_factory = (
            problem_factory_builder
            if problem_factory_builder is not None
            else problem_factory_from_spec
        )
        self._slots = threading.Semaphore(self.max_active)
        self._shutdown = threading.Event()
        self._threads: dict[str, threading.Thread] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # submission API
    # ------------------------------------------------------------------
    def submit(self, spec: Any) -> ManagedCampaign:
        """Accept one campaign submission and start it (subject to the
        ``max_active`` gate); returns the managed record immediately."""
        if self._shutdown.is_set():
            raise ServiceError("service is shutting down")
        if isinstance(spec, dict):
            from repro.service.tenancy import tenant_from_spec

            # reject conflicting tenant quotas at submit time (HTTP
            # 400), not as a failed campaign minutes later
            self.scheduler.validate_tenant(
                tenant_from_spec(spec.get("tenant"))
            )
        campaign = self.registry.create(spec)
        self._start_runner(campaign, resume=False)
        return campaign

    def cancel(self, campaign_id: str) -> ManagedCampaign:
        """Stop a campaign at its next generation boundary (immediately
        if it has not started)."""
        campaign = self.registry.get(campaign_id)
        campaign.cancel_event.set()
        if campaign.state == QUEUED:
            self.registry.set_state(campaign, CANCELLED)
        return campaign

    def get(self, campaign_id: str) -> ManagedCampaign:
        return self.registry.get(campaign_id)

    def list(self) -> list[ManagedCampaign]:
        return self.registry.list()

    def front(self, campaign_id: str) -> dict[str, Any]:
        """The campaign's Pareto front: the persisted final front once
        done, else the live nondominated front from its status."""
        campaign = self.registry.get(campaign_id)
        path = campaign.directory / "front.json"
        if path.exists():
            doc = json.loads(path.read_text())
            doc["state"] = campaign.state
            return doc
        status = campaign.status
        snapshot = status.snapshot() if status is not None else {}
        return {
            "state": campaign.state,
            "front": [
                {"genome": None, "fitness": point}
                for point in snapshot.get("front") or []
            ],
        }

    # ------------------------------------------------------------------
    # restart recovery
    # ------------------------------------------------------------------
    def recover(self) -> list[ManagedCampaign]:
        """Pick up every resumable campaign persisted under the root.

        ``interrupted``/``running`` campaigns continue from their
        journals (bit-identical to never having stopped); ``queued``
        ones that never journaled anything start fresh.
        """
        recovered = []
        for campaign in self.registry.load_persisted():
            if campaign.state not in RESUMABLE_STATES:
                continue
            has_journal = journal_path(campaign.directory).exists()
            self._start_runner(campaign, resume=has_journal)
            recovered.append(campaign)
        return recovered

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 60.0) -> None:
        """Graceful drain: running campaigns stop at their next
        generation boundary (journals flushed+fsynced by construction)
        and are marked ``interrupted``; then the fleet is stopped."""
        self._shutdown.set()
        with self._lock:
            threads = list(self._threads.values())
        for thread in threads:
            thread.join(timeout=timeout)
        self.scheduler.stop(drain=True, timeout=timeout)
        if self._owns_backend:
            close = getattr(self.backend, "close", None)
            if close is not None:
                close()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every runner thread has finished; True if all
        did within ``timeout`` (per-thread)."""
        with self._lock:
            threads = list(self._threads.values())
        ok = True
        for thread in threads:
            thread.join(timeout=timeout)
            ok = ok and not thread.is_alive()
        return ok

    # ------------------------------------------------------------------
    # status plane
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The multi-campaign ``/status`` body.  The ``service`` key is
        the discriminator ``repro-hpo monitor`` switches its rendering
        on."""
        campaigns = []
        for campaign in self.registry.list():
            doc = campaign.summary()
            status = campaign.status
            if status is not None:
                live = status.snapshot()
                doc["generation"] = live.get("generation")
                doc["run"] = live.get("run")
                doc["cache_hit_rate"] = live.get("cache_hit_rate", 0.0)
                doc["evals_per_sec"] = live.get("evals_per_sec", 0.0)
                series = live.get("hypervolume_series") or []
                if series:
                    doc["hypervolume"] = series[-1].get("hypervolume")
                doc["front_size"] = len(live.get("front") or [])
            campaigns.append(doc)
        service: dict[str, Any] = {
            "campaigns": campaigns,
            "scheduler": self.scheduler.snapshot(),
            # stats are this process's view; "entries" counts the
            # disk store, which pool workers insert into directly
            "cache": {**self.cache.stats(), "entries": len(self.cache)},
            "max_active": self.max_active,
        }
        fleet = getattr(self.scheduler.backend, "fleet_snapshot", None)
        if callable(fleet):
            service["fleet"] = fleet()
        return {
            "state": (
                "shutting-down" if self._shutdown.is_set() else "serving"
            ),
            "service": service,
        }

    # ------------------------------------------------------------------
    # the campaign runner
    # ------------------------------------------------------------------
    def _start_runner(
        self, campaign: ManagedCampaign, resume: bool
    ) -> None:
        thread = threading.Thread(
            target=self._run_campaign,
            args=(campaign, resume),
            name=f"repro-campaign-{campaign.id}",
            daemon=True,
        )
        with self._lock:
            self._threads[campaign.id] = thread
        thread.start()

    def _acquire_slot(self, campaign: ManagedCampaign) -> bool:
        """Wait for an active-campaign slot; False when the wait ends
        in cancellation or shutdown instead."""
        while not self._slots.acquire(timeout=0.05):
            if campaign.cancel_event.is_set():
                self.registry.set_state(campaign, CANCELLED)
                return False
            if self._shutdown.is_set():
                # still queued: stays QUEUED on disk, runs on restart
                return False
        return True

    def _cached_factory(
        self, problem_spec: dict[str, Any]
    ) -> Callable[[int], Any]:
        base = self._build_problem_factory(problem_spec)

        def factory(seed: int) -> Any:
            problem = base(seed)
            if getattr(problem, "cache", None) is None:
                problem = CachedProblem(problem, self.cache)
            return problem

        return factory

    def _run_campaign(
        self, campaign: ManagedCampaign, resume: bool
    ) -> None:
        if not self._acquire_slot(campaign):
            return
        try:
            if campaign.cancel_event.is_set():
                self.registry.set_state(campaign, CANCELLED)
                return
            if self._shutdown.is_set():
                return
            self.registry.set_state(campaign, RUNNING)
            status = CampaignStatus(
                campaign_id=campaign.id,
                mode=campaign.config.mode,
                tenant=campaign.tenant.name,
                name=campaign.name,
            )
            campaign.status = status

            def callback(run_index: int, record: Any) -> None:
                # fires after the generation is journaled (write-ahead
                # order), so raising here is a clean resume point
                if campaign.cancel_event.is_set():
                    raise CampaignCancelled(
                        f"campaign {campaign.id} cancelled"
                    )
                if self._shutdown.is_set():
                    raise ServiceShutdown(
                        f"campaign {campaign.id} interrupted by shutdown"
                    )

            queue = None
            try:
                queue = self.scheduler.register(
                    campaign.id, campaign.tenant
                )
                with use_thread_status(status):
                    if resume:
                        result = resume_campaign(
                            campaign.directory,
                            problem_factory=self._build_problem_factory(
                                campaign.problem_spec
                            ),
                            client=queue,
                            cache=self.cache,
                            callback=callback,
                        )
                    else:
                        journal = CampaignJournal(
                            journal_path(campaign.directory),
                            problem_spec=campaign.problem_spec,
                        )
                        try:
                            result = Campaign(
                                self._cached_factory(
                                    campaign.problem_spec
                                ),
                                config=campaign.config,
                                client=queue,
                                journal=journal,
                            ).run(callback)
                        finally:
                            journal.close()
                    self._finish(campaign, result)
                    status.mark_done()
            except CampaignCancelled:
                self.registry.set_state(campaign, CANCELLED)
            except ServiceShutdown:
                self.registry.set_state(campaign, INTERRUPTED)
            except Exception as exc:  # noqa: BLE001 - isolate campaigns
                self.registry.set_state(
                    campaign, FAILED, error=f"{type(exc).__name__}: {exc}"
                )
            finally:
                if queue is not None:
                    self.scheduler.unregister(queue)
        finally:
            self._slots.release()
            with self._lock:
                self._threads.pop(campaign.id, None)

    def _finish(self, campaign: ManagedCampaign, result: Any) -> None:
        from repro.io import save_campaign
        from repro.service.registry import _atomic_write_json

        _atomic_write_json(
            campaign.directory / "front.json", _front_doc(result)
        )
        save_campaign(result, campaign.directory)
        self.registry.set_state(campaign, DONE)

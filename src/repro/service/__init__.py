"""Multi-tenant campaign service: many campaigns, one worker fleet.

The paper ran NSGA-II as one-shot HPC campaigns; the service turns the
reproduction into the long-running system the ROADMAP points at — an
HTTP submission API (:class:`CampaignServer` /
:class:`~repro.service.client.ServiceClient`), fair-share scheduling
of many tenants' campaigns over one shared execution backend
(:class:`FairShareScheduler`), a cross-campaign content-addressed
evaluation cache, per-campaign journals with restart-surviving resume,
and per-campaign labeled metrics on the existing ``/metrics`` +
``/status`` plane.

Layers, bottom up:

* :mod:`repro.service.tenancy` — :class:`Tenant`: weight, priority,
  and max-in-flight quota;
* :mod:`repro.service.fair_share` — the shared-fleet dispatcher:
  stride scheduling with strict priorities and hard quotas;
* :mod:`repro.service.registry` — durable campaign records
  (spec/state/journal per campaign directory);
* :mod:`repro.service.service` — :class:`CampaignService`: runner
  threads, shared cache, graceful drain, restart recovery;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  HTTP plane (``repro-hpo serve`` / ``submit`` / ``campaigns`` /
  ``cancel`` / ``monitor``).
"""

from repro.service.client import ServiceClient
from repro.service.fair_share import (
    CampaignQueue,
    FairShareScheduler,
    ServiceFuture,
    worker_capacity,
)
from repro.service.registry import (
    CANCELLED,
    DONE,
    FAILED,
    INTERRUPTED,
    QUEUED,
    RESUMABLE_STATES,
    RUNNING,
    TERMINAL_STATES,
    CampaignRegistry,
    ManagedCampaign,
)
from repro.service.server import CampaignServer
from repro.service.service import CampaignService
from repro.service.tenancy import Tenant, tenant_from_spec

__all__ = [
    "Tenant",
    "tenant_from_spec",
    "FairShareScheduler",
    "CampaignQueue",
    "ServiceFuture",
    "worker_capacity",
    "CampaignRegistry",
    "ManagedCampaign",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "INTERRUPTED",
    "RESUMABLE_STATES",
    "TERMINAL_STATES",
    "CampaignService",
    "CampaignServer",
    "ServiceClient",
]

"""repro — reproduction of "Multiobjective Hyperparameter Optimization for
Deep Learning Interatomic Potential Training Using NSGA-II"
(Coletti et al., PDADS @ ICPP 2023).

The package provides every layer of the paper's system, implemented from
scratch on top of NumPy:

``repro.autodiff``
    Tape-based reverse-mode automatic differentiation with support for
    double-backward (gradients of gradients), standing in for TensorFlow.
``repro.nn``
    Neural-network building blocks: the five activation functions the
    paper searches over, dense layers, Adam, and the exponential
    learning-rate decay with per-worker scaling.
``repro.md``
    Classical molecular-dynamics data generator standing in for the
    CP2K first-principles trajectories of molten AlCl3–KCl.
``repro.deepmd``
    A DeePMD-kit-style trainer: DeepPot-SE smooth descriptor,
    embedding + fitting networks, energy/force loss with learning-rate
    coupled prefactors, ``input.json`` templating, and ``lcurve.out``.
``repro.evo``
    LEAP-style evolutionary-algorithm toolkit with pipeline operators
    and both classic and rank-ordinal NSGA-II non-dominated sorting.
``repro.mo``
    Multiobjective utilities: dominance, Pareto fronts, quality
    indicators, and the ZDT validation suite.
``repro.distributed``
    Dask-like scheduler / worker / client executor with fault
    injection, nannies, and task reassignment.
``repro.hpc``
    Discrete-event model of a Summit-like cluster (nodes, batch jobs,
    walltime, faults) and a training-runtime model.
``repro.hpo``
    The paper's contribution: the seven-gene representation, the
    evaluation workflow, the customized NSGA-II driver with mutation
    annealing, the multi-run campaign, baselines, and the calibrated
    surrogate landscape used for full-scale campaign benchmarks.
``repro.analysis``
    Regeneration of every table and figure in the paper's evaluation.
``repro.obs``
    Zero-dependency tracing (spans, events, JSONL trace files) and
    metrics (counters, gauges, histograms, Prometheus export) wired
    through the scheduler, workers, trainer, EA loop, and campaign.
"""

from repro._version import __version__

__all__ = ["__version__"]

"""Seeded random-number-generator plumbing.

Every stochastic component in the package accepts either an integer
seed, a :class:`numpy.random.Generator`, or ``None`` and normalizes it
through :func:`ensure_rng`.  Child streams for parallel work are derived
with :func:`spawn` so that independent EA runs and independent workers
never share a stream — a requirement for reproducing the paper's five
*independent* EA runs deterministically.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Normalize ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a nondeterministic generator; an ``int`` or
    :class:`~numpy.random.SeedSequence` seeds a fresh PCG64 stream; a
    generator passes through untouched.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot interpret {rng!r} as a random generator")


def spawn(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Uses :meth:`numpy.random.Generator.spawn` when available so the
    children are guaranteed non-overlapping.
    """
    gen = ensure_rng(rng)
    return list(gen.spawn(n))


def seeds_for_runs(base_seed: int, n_runs: int) -> list[int]:
    """Deterministic per-run integer seeds for a multi-run campaign."""
    ss = np.random.SeedSequence(base_seed)
    return [int(child.generate_state(1)[0]) for child in ss.spawn(n_runs)]


def shuffled_indices(n: int, rng: RngLike = None) -> np.ndarray:
    """A random permutation of ``range(n)`` as an int64 array."""
    return ensure_rng(rng).permutation(n)


def split_indices(
    n: int, fractions: Iterable[float], rng: RngLike = None
) -> list[np.ndarray]:
    """Shuffle ``range(n)`` and split it into consecutive chunks.

    ``fractions`` must sum to at most 1; a final remainder chunk is
    appended if they sum to less than 1.  Used for the paper's shuffled
    75/25 train/validation split (§2.1.3).
    """
    fracs = list(fractions)
    if any(f < 0 for f in fracs):
        raise ValueError("fractions must be non-negative")
    total = sum(fracs)
    if total > 1.0 + 1e-9:
        raise ValueError(f"fractions sum to {total} > 1")
    perm = shuffled_indices(n, rng)
    out: list[np.ndarray] = []
    start = 0
    for f in fracs:
        stop = start + int(round(f * n))
        stop = min(stop, n)
        out.append(perm[start:stop])
        start = stop
    if total < 1.0 - 1e-9:
        out.append(perm[start:])
    return out

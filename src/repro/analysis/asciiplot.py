"""Terminal-renderable plots.

The benchmark harness and CLI run in environments without plotting
libraries, so the figure data (§3's level plots and frontier scatter)
is rendered as character grids: density maps for Fig. 1 and scatter
plots with a highlighted frontier for Fig. 2.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: density glyphs from sparse to dense
_SHADES = " .:-=+*#%@"


def ascii_density(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 60,
    height: int = 20,
    x_range: Optional[tuple[float, float]] = None,
    y_range: Optional[tuple[float, float]] = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A 2-D histogram rendered as shaded characters (Fig. 1 panels).

    The y axis increases upward; axis extents are printed on the frame.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    if x_range is None:
        x_range = (float(x.min()), float(x.max())) if len(x) else (0, 1)
    if y_range is None:
        y_range = (float(y.min()), float(y.max())) if len(y) else (0, 1)
    if x_range[1] <= x_range[0] or y_range[1] <= y_range[0]:
        x_range = (x_range[0], x_range[0] + 1.0)
        y_range = (y_range[0], y_range[0] + 1.0)
    hist, _, _ = np.histogram2d(
        x,
        y,
        bins=[width, height],
        range=[list(x_range), list(y_range)],
    )
    if hist.max() > 0:
        levels = np.ceil(
            hist / hist.max() * (len(_SHADES) - 1)
        ).astype(int)
    else:
        levels = hist.astype(int)
    lines = []
    lines.append(
        f"{y_label} in [{y_range[0]:.4g}, {y_range[1]:.4g}]  "
        f"({len(x)} points)"
    )
    lines.append("+" + "-" * width + "+")
    for row in range(height - 1, -1, -1):
        chars = "".join(
            _SHADES[levels[col, row]] for col in range(width)
        )
        lines.append("|" + chars + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(
        f"{x_label} in [{x_range[0]:.4g}, {x_range[1]:.4g}]"
    )
    return "\n".join(lines)


def ascii_scatter(
    points: Sequence[tuple[float, float]],
    highlight: Sequence[tuple[float, float]] = (),
    width: int = 60,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    point_char: str = "·",
    highlight_char: str = "O",
) -> str:
    """Scatter plot with an optional highlighted subset (Fig. 2: the
    population in dots, the frontier as ``O``)."""
    pts = np.asarray(points, dtype=np.float64).reshape(-1, 2)
    hi = np.asarray(highlight, dtype=np.float64).reshape(-1, 2)
    all_pts = np.vstack([pts, hi]) if len(hi) else pts
    if len(all_pts) == 0:
        return "(no points)"
    x_min, x_max = float(all_pts[:, 0].min()), float(all_pts[:, 0].max())
    y_min, y_max = float(all_pts[:, 1].min()), float(all_pts[:, 1].max())
    if x_max <= x_min:
        x_max = x_min + 1.0
    if y_max <= y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(arr: np.ndarray, char: str) -> None:
        for px, py in arr:
            col = int((px - x_min) / (x_max - x_min) * (width - 1))
            row = int((py - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = char

    place(pts, point_char)
    place(hi, highlight_char)
    lines = [
        f"{y_label} in [{y_min:.4g}, {y_max:.4g}]",
        "+" + "-" * width + "+",
    ]
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"{x_label} in [{x_min:.4g}, {x_max:.4g}]")
    return "\n".join(lines)


#: sparkline glyphs from low to high
_SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line unicode trend (the monitor's hypervolume series).

    Non-finite values render as spaces; a flat series renders at the
    lowest level so "no change" and "no data" look different.  Series
    longer than ``width`` keep the most recent ``width`` points.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    arr = arr[-width:]
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return " " * arr.size
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo
    chars = []
    for v in arr:
        if not np.isfinite(v):
            chars.append(" ")
        elif span <= 0:
            chars.append(_SPARKS[0])
        else:
            level = int((v - lo) / span * (len(_SPARKS) - 1))
            chars.append(_SPARKS[level])
    return "".join(chars)


def ascii_histogram(
    values: np.ndarray,
    bins: int = 20,
    width: int = 50,
    label: str = "",
) -> str:
    """Horizontal-bar histogram (runtime distributions, gene profiles)."""
    values = np.asarray(values, dtype=np.float64)
    values = values[np.isfinite(values)]
    if len(values) == 0:
        return "(no finite values)"
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [label] if label else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"{lo:>10.4g} - {hi:<10.4g} |{bar} {count}")
    return "\n".join(lines)

"""Regeneration of the paper's tables and figures.

Each module maps to one artifact of §3:

* :mod:`repro.analysis.levelplot` — Fig. 1 (energy vs force loss
  distributions per generation, pooled over runs, with the paper's
  outlier culling rule);
* :mod:`repro.analysis.frontier` — Fig. 2 and Table 2 (the Pareto
  frontier of the aggregated last generations);
* :mod:`repro.analysis.parallel_coords` — Fig. 3 (per-solution
  hyperparameters + losses + runtime + frontier membership, with
  chemical-accuracy coloring);
* :mod:`repro.analysis.selection` — Table 3 (three representative
  chemically accurate solutions);
* :mod:`repro.analysis.convergence` — the §3.1 convergence narrative
  (distribution distances between consecutive generations);
* :mod:`repro.analysis.report` — plain-text table rendering shared by
  the benchmark harness and the examples.
"""

from repro.analysis.levelplot import LevelPlotData, generation_level_plots
from repro.analysis.frontier import FrontierTable, frontier_table
from repro.analysis.parallel_coords import (
    ParallelCoordinatesData,
    parallel_coordinates,
)
from repro.analysis.selection import Table3Row, table3_rows
from repro.analysis.convergence import (
    ConvergenceSummary,
    convergence_summary,
)
from repro.analysis.report import format_table
from repro.analysis.asciiplot import (
    ascii_density,
    ascii_histogram,
    ascii_scatter,
    sparkline,
)

__all__ = [
    "LevelPlotData",
    "generation_level_plots",
    "FrontierTable",
    "frontier_table",
    "ParallelCoordinatesData",
    "parallel_coordinates",
    "Table3Row",
    "table3_rows",
    "ConvergenceSummary",
    "convergence_summary",
    "format_table",
    "ascii_density",
    "ascii_scatter",
    "ascii_histogram",
    "sparkline",
]

"""Plain-text table rendering.

The benchmark harness prints every reproduced table/figure as ASCII
rows so results can be diffed against EXPERIMENTS.md without plotting
dependencies.
"""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e5:
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    rows: Sequence[dict[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return (title + "\n" if title else "") + "(empty)"
    cols = list(columns) if columns else list(rows[0].keys())
    rendered = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered))
        for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)

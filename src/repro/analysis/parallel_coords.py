"""Fig. 3 — parallel-coordinates data for the final solution set.

One line per final-generation solution carrying all seven decoded
hyperparameters, the runtime in minutes, both losses, whether the
solution sits on the exact Pareto frontier, and whether it is
chemically accurate (the blue/grey coloring).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.evo.individual import Individual
from repro.hpo.campaign import CampaignResult
from repro.hpo.chemical import chemically_accurate
from repro.hpo.representation import GENE_NAMES
from repro.mo.pareto import pareto_front

AXES: tuple[str, ...] = GENE_NAMES + (
    "runtime_minutes",
    "energy_loss",
    "force_loss",
    "on_frontier",
    "chemically_accurate",
)


@dataclass
class ParallelCoordinatesData:
    """The Fig. 3 dataset."""

    rows: list[dict[str, Any]]

    def __len__(self) -> int:
        return len(self.rows)

    def accurate_rows(self) -> list[dict[str, Any]]:
        """The blue lines."""
        return [r for r in self.rows if r["chemically_accurate"]]

    def axis_values(self, axis: str) -> list[Any]:
        if axis not in AXES:
            raise KeyError(f"unknown axis {axis!r}; expected one of {AXES}")
        return [r[axis] for r in self.rows]

    def categorical_counts(
        self, axis: str, accurate_only: bool = False
    ) -> dict[str, int]:
        """How often each category appears (the §3.2 narrative data:
        which activations survive, which scaling wins)."""
        rows = self.accurate_rows() if accurate_only else self.rows
        counts: dict[str, int] = {}
        for r in rows:
            counts[r[axis]] = counts.get(r[axis], 0) + 1
        return counts


def parallel_coordinates(
    source: CampaignResult | Sequence[Individual],
) -> ParallelCoordinatesData:
    """Build Fig. 3's line data from the final solution dataset."""
    if isinstance(source, CampaignResult):
        pool = source.last_generation_individuals()
    else:
        pool = list(source)
    frontier_ids = {id(ind) for ind in pareto_front(pool)}
    rows: list[dict[str, Any]] = []
    for ind in pool:
        if ind.fitness is None or not ind.is_viable:
            continue
        phenome = ind.metadata.get("phenome")
        if phenome is None:
            phenome = ind.decode()
        row: dict[str, Any] = {name: phenome[name] for name in GENE_NAMES}
        row["runtime_minutes"] = float(
            ind.metadata.get("runtime_minutes", np.nan)
        )
        row["energy_loss"] = float(ind.fitness[0])
        row["force_loss"] = float(ind.fitness[1])
        row["on_frontier"] = id(ind) in frontier_ids
        row["chemically_accurate"] = chemically_accurate(ind)
        rows.append(row)
    return ParallelCoordinatesData(rows=rows)

"""Table 3 — three selected chemically accurate solutions.

"Parameter values for three selected chemically-accurate solutions
found in the last NSGA-II generations across the five runs, showing
the solution with lowest force loss, lowest energy loss, and lowest
runtime."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.evo.individual import Individual
from repro.hpo.campaign import CampaignResult
from repro.hpo.chemical import select_representatives
from repro.hpo.representation import GENE_NAMES


@dataclass
class Table3Row:
    """One column of the paper's Table 3 (one selected solution)."""

    criterion: str
    individual: Optional[Individual]

    def as_dict(self) -> dict[str, Any]:
        if self.individual is None:
            return {"criterion": self.criterion, "found": False}
        ind = self.individual
        phenome = ind.metadata.get("phenome") or ind.decode()
        out: dict[str, Any] = {"criterion": self.criterion, "found": True}
        for name in GENE_NAMES:
            out[name] = phenome[name]
        out["runtime (min.)"] = float(
            ind.metadata.get("runtime_minutes", float("nan"))
        )
        out["energy loss (eV/atom)"] = float(ind.fitness[0])
        out["force loss (eV/A)"] = float(ind.fitness[1])
        return out


def table3_rows(
    source: CampaignResult | Sequence[Individual],
) -> list[Table3Row]:
    """Select the three representatives from the final solution set."""
    if isinstance(source, CampaignResult):
        pool = source.last_generation_individuals()
    else:
        pool = list(source)
    reps = select_representatives(pool)
    return [
        Table3Row(criterion="lowest force loss", individual=reps["lowest_force"]),
        Table3Row(
            criterion="lowest energy loss", individual=reps["lowest_energy"]
        ),
        Table3Row(
            criterion="lowest runtime", individual=reps["lowest_runtime"]
        ),
    ]

"""Fig. 1 — per-generation energy vs force loss distributions.

The figure pools all models trained at each generation over the five
independent runs and shows 2-D density (level) plots, with generation-0
outliers beyond force 0.6 eV/Å or energy 0.03 eV/atom culled "for
visual clarity".  :func:`generation_level_plots` produces the same
data: per generation, the pooled loss points, the culling mask, 2-D
histogram counts, and summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.hpo.campaign import CampaignResult

#: The paper's culling thresholds for generation-0 outliers.
CULL_FORCE_MAX: float = 0.6
CULL_ENERGY_MAX: float = 0.03


@dataclass
class LevelPlotData:
    """One generation's panel."""

    generation: int
    energies: np.ndarray  # viable solutions only
    forces: np.ndarray
    n_failed: int
    n_culled: int
    histogram: np.ndarray  # (bins, bins) counts over the culled window
    energy_edges: np.ndarray
    force_edges: np.ndarray

    def summary(self) -> dict[str, float]:
        return {
            "generation": self.generation,
            "n": len(self.energies),
            "median_energy": float(np.median(self.energies))
            if len(self.energies)
            else float("nan"),
            "median_force": float(np.median(self.forces))
            if len(self.forces)
            else float("nan"),
            "n_failed": self.n_failed,
            "n_culled": self.n_culled,
        }


def generation_level_plots(
    result: CampaignResult,
    bins: int = 40,
    cull_force: float = CULL_FORCE_MAX,
    cull_energy: float = CULL_ENERGY_MAX,
    max_generation: Optional[int] = None,
) -> list[LevelPlotData]:
    """Build the Fig. 1 panels from a campaign result.

    ``max_generation`` limits the panels (the paper shows generations
    0–5, i.e. six panels, out of the seven trained).
    """
    n_gens = max(len(run) for run in result.runs)
    if max_generation is not None:
        n_gens = min(n_gens, max_generation + 1)
    panels: list[LevelPlotData] = []
    for g in range(n_gens):
        individuals = result.generation_evaluated(g)
        viable = [ind for ind in individuals if ind.is_viable]
        n_failed = len(individuals) - len(viable)
        if viable:
            F = np.asarray([ind.fitness for ind in viable])
            energies, forces = F[:, 0], F[:, 1]
        else:
            energies = forces = np.zeros(0)
        keep = (forces <= cull_force) & (energies <= cull_energy)
        n_culled = int((~keep).sum())
        e_kept, f_kept = energies[keep], forces[keep]
        hist, e_edges, f_edges = np.histogram2d(
            e_kept,
            f_kept,
            bins=bins,
            range=[[0.0, cull_energy], [0.0, cull_force]],
        )
        panels.append(
            LevelPlotData(
                generation=g,
                energies=energies,
                forces=forces,
                n_failed=n_failed,
                n_culled=n_culled,
                histogram=hist,
                energy_edges=e_edges,
                force_edges=f_edges,
            )
        )
    return panels

"""§3.1's convergence narrative, quantified.

"Most individuals that were scattered away from the origin in the
initial random population are eliminated within the first EA step ...
From that generation forward there are smaller changes in the loss
distributions, with distributions between the last three runs being
similar, indicating convergence."

:func:`convergence_summary` measures this: per-generation medians and
spreads of the pooled loss distributions plus the change between
consecutive generations (2-D energy/force medians, Euclidean), so the
"large first step, then small steps" shape becomes an assertable
quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.hpo.campaign import CampaignResult


@dataclass
class ConvergenceSummary:
    """Per-generation statistics of the pooled loss distributions."""

    generations: list[int] = field(default_factory=list)
    median_energy: list[float] = field(default_factory=list)
    median_force: list[float] = field(default_factory=list)
    iqr_energy: list[float] = field(default_factory=list)
    iqr_force: list[float] = field(default_factory=list)

    def median_shift(self) -> np.ndarray:
        """Euclidean distance between consecutive generation medians
        (normalized per objective by the generation-0 median)."""
        e = np.asarray(self.median_energy)
        f = np.asarray(self.median_force)
        e0 = e[0] if e[0] > 0 else 1.0
        f0 = f[0] if f[0] > 0 else 1.0
        de = np.diff(e) / e0
        df = np.diff(f) / f0
        return np.sqrt(de**2 + df**2)

    def converged_by(self, tolerance: float = 0.05) -> int:
        """First generation from which every later median shift is
        below ``tolerance``; returns the last generation if never."""
        shifts = self.median_shift()
        for g in range(len(shifts)):
            if np.all(shifts[g:] < tolerance):
                return g + 1
        return len(shifts)


def hypervolume_progress(
    result: CampaignResult,
    reference: Sequence[float] = (0.02, 0.2),
) -> np.ndarray:
    """Dominated hypervolume of the pooled selected population per
    generation — a single monotone-ish convergence curve for the whole
    campaign (complements the per-objective medians).

    N-D safe: when the campaign's fronts have more objectives than the
    given ``reference`` (e.g. a ``--objectives loss,time`` campaign),
    the campaign-fixed :func:`repro.mo.metrics.default_reference` for
    the observed dimensionality is used instead.

    Every entry is finite: degenerate generations (no viable
    individuals, all-MAXINT fitnesses, non-finite losses) contribute
    0.0 rather than NaN/Inf — the live ``campaign_hypervolume`` gauge
    and the strict-JSON ``/status`` series both feed from the same
    math and must never emit a non-finite value.
    """
    from repro.mo.dominance import non_dominated_mask
    from repro.mo.metrics import default_reference, hypervolume

    n_gens = max(len(run) for run in result.runs)
    out = np.zeros(n_gens)
    for g in range(n_gens):
        pooled = [
            ind
            for run in result.runs
            if g < len(run)
            for ind in run[g].population
            if ind.is_viable
        ]
        if not pooled:
            continue
        F = np.asarray(
            [ind.fitness for ind in pooled], dtype=np.float64
        )
        F = F[np.all(np.isfinite(F), axis=1)]
        if not len(F):
            continue
        ref = (
            tuple(float(r) for r in reference)
            if len(tuple(reference)) == F.shape[1]
            else default_reference(F.shape[1])
        )
        hv = hypervolume(F[non_dominated_mask(F)], ref)
        out[g] = hv if np.isfinite(hv) else 0.0
    return out


def convergence_summary(result: CampaignResult) -> ConvergenceSummary:
    """Statistics of the *selected* population per generation.

    The paper's "eliminated within the first EA step" is a statement
    about environmental selection, so the summary tracks the pooled
    post-selection parents (the level plots track the trained
    offspring instead).
    """
    summary = ConvergenceSummary()
    n_gens = max(len(run) for run in result.runs)
    for g in range(n_gens):
        pooled = [
            run[g].population for run in result.runs if g < len(run)
        ]
        viable = [
            ind
            for pop in pooled
            for ind in pop
            if ind.is_viable
        ]
        if not viable:
            continue
        F = np.asarray([ind.fitness for ind in viable])
        q25e, q75e = np.percentile(F[:, 0], [25, 75])
        q25f, q75f = np.percentile(F[:, 1], [25, 75])
        summary.generations.append(g)
        summary.median_energy.append(float(np.median(F[:, 0])))
        summary.median_force.append(float(np.median(F[:, 1])))
        summary.iqr_energy.append(float(q75e - q25e))
        summary.iqr_force.append(float(q75f - q25f))
    return summary

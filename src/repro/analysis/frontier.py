"""Fig. 2 and Table 2 — the aggregate Pareto frontier.

The frontier is computed "from the aggregated last generations of all
runs"; Table 2 lists its points' force and energy errors ordered by
increasing force error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.evo.individual import Individual
from repro.hpo.campaign import CampaignResult
from repro.mo.pareto import pareto_front


@dataclass
class FrontierTable:
    """Table 2 plus the underlying individuals (for Fig. 2)."""

    members: list[Individual]

    def rows(self) -> list[dict[str, float]]:
        """Table 2 rows: solution index, force error, energy error —
        ordered by increasing force error as in the paper."""
        ordered = sorted(
            self.members, key=lambda ind: float(ind.fitness[1])
        )
        return [
            {
                "solution": i + 1,
                "force error (eV/A)": float(ind.fitness[1]),
                "energy error (eV/atom)": float(ind.fitness[0]),
            }
            for i, ind in enumerate(ordered)
        ]

    def fitness_matrix(self) -> np.ndarray:
        return np.asarray([ind.fitness for ind in self.members])

    def __len__(self) -> int:
        return len(self.members)

    def monotone_tradeoff(self) -> bool:
        """Frontier sanity: sorted by force, energies must be
        non-increasing (the defining staircase of a 2-D front)."""
        rows = self.rows()
        energies = [r["energy error (eV/atom)"] for r in rows]
        return all(
            energies[i] >= energies[i + 1] - 1e-15
            for i in range(len(energies) - 1)
        )


def frontier_table(
    source: CampaignResult | Sequence[Individual],
) -> FrontierTable:
    """Build the frontier from a campaign (or any individual pool)."""
    if isinstance(source, CampaignResult):
        pool = source.last_generation_individuals()
    else:
        pool = list(source)
    return FrontierTable(members=pareto_front(pool))

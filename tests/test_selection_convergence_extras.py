"""Tests for the crowded tournament selection, hypervolume progress,
and the enriched CLI paths (--plot/--save/--export-csv, sensitivity,
nas)."""

import numpy as np
import pytest

from repro.analysis.convergence import hypervolume_progress
from repro.evo.individual import Individual
from repro.evo.nsga2 import (
    crowded_tournament_selection,
    crowding_distance_calc,
    rank_ordinal_sort_op,
)
from repro.evo.problem import ConstantProblem
from repro.hpo.campaign import Campaign, CampaignConfig
from repro.hpo.cli import main as hpo_main
from repro.hpo.landscape import SurrogateDeepMDProblem


def _ranked_population(fitnesses):
    pop = []
    for f in fitnesses:
        ind = Individual([0.0], problem=ConstantProblem(f))
        pop.append(ind.evaluate())
    ranked = rank_ordinal_sort_op()(pop)
    return crowding_distance_calc(ranked)


class TestCrowdedTournament:
    def test_prefers_lower_rank(self):
        pop = _ranked_population(
            [[0.0, 0.0]] + [[1.0, 1.0]] * 9
        )
        stream = crowded_tournament_selection(pop, rng=0)
        picks = [next(stream) for _ in range(300)]
        best_share = sum(1 for p in picks if p.rank == 1) / len(picks)
        # binary tournament with 1/10 elite: win prob = 1 - (9/10)^2 = 0.19
        assert best_share > 0.12

    def test_ties_break_to_crowding(self):
        # one front: extremes have infinite distance
        pop = _ranked_population(
            [[0.0, 1.0], [0.45, 0.55], [0.5, 0.5], [0.55, 0.45], [1.0, 0.0]]
        )
        stream = crowded_tournament_selection(pop, rng=1)
        picks = [next(stream) for _ in range(500)]
        extreme_share = sum(
            1 for p in picks if np.isinf(p.distance)
        ) / len(picks)
        # 2 of 5 are extremes; tournaments boost them well above 40%
        assert extreme_share > 0.5

    def test_requires_ranks(self):
        ind = Individual([0.0], problem=ConstantProblem([1.0, 1.0]))
        ind.evaluate()
        with pytest.raises(ValueError, match="rank"):
            next(crowded_tournament_selection([ind], rng=0))

    def test_empty_population(self):
        with pytest.raises(ValueError):
            next(crowded_tournament_selection([], rng=0))

    def test_composes_with_pipeline(self):
        from repro.evo import ops

        pop = _ranked_population(
            [[float(i), float(10 - i)] for i in range(10)]
        )
        offspring = ops.pipe(
            pop,
            lambda p: crowded_tournament_selection(p, rng=2),
            ops.clone,
            ops.pool(6),
        )
        assert len(offspring) == 6
        assert all(o.fitness is None for o in offspring)


class TestHypervolumeProgress:
    @pytest.fixture(scope="class")
    def campaign(self):
        return Campaign(
            lambda seed: SurrogateDeepMDProblem(seed=seed),
            CampaignConfig(
                n_runs=3, pop_size=30, generations=4, base_seed=11
            ),
        ).run()

    def test_one_value_per_generation(self, campaign):
        hv = hypervolume_progress(campaign)
        assert len(hv) == 5

    def test_improves_from_start_to_end(self, campaign):
        hv = hypervolume_progress(campaign)
        assert hv[-1] > hv[0]

    def test_elitism_makes_progress_monotone(self, campaign):
        hv = hypervolume_progress(campaign)
        # selected populations are mu+lambda elitist: pooled HV should
        # never drop materially
        assert np.all(np.diff(hv) > -1e-4)


class TestCliExtras:
    def test_campaign_plot_save_export(self, tmp_path, capsys):
        rc = hpo_main(
            [
                "campaign",
                "--runs", "2",
                "--pop-size", "12",
                "--generations", "1",
                "--seed", "5",
                "--plot",
                "--save", str(tmp_path / "camp"),
                "--export-csv", str(tmp_path / "csv"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "frontier (O)" in out
        assert (tmp_path / "camp" / "campaign.json").exists()
        assert (tmp_path / "csv" / "fig2_frontier.csv").exists()
        # the saved campaign loads back
        from repro.io import load_campaign

        loaded = load_campaign(tmp_path / "camp")
        assert loaded.n_trainings == 2 * 2 * 12

    def test_sensitivity_subcommand(self, capsys):
        rc = hpo_main(
            ["sensitivity", "--points", "5", "--trajectories", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Morris ranking" in out
        assert "start_lr" in out

    def test_nas_subcommand(self, capsys):
        rc = hpo_main(
            ["nas", "--pop-size", "20", "--generations", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "best architectures" in out
        assert "embedding" in out

"""Durable campaign state: cache, journal, resume (repro.store).

The load-bearing guarantees under test:

* the evaluation cache never crashes on torn/garbage entries and never
  memoizes failures unless asked;
* the write-ahead journal parses cleanly when truncated at *any* byte
  offset;
* resuming a killed campaign reproduces the uninterrupted campaign's
  final Pareto front bit-identically, serving already-finished
  evaluations of the interrupted generation from the cache.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.evo.individual import MAXINT, RobustIndividual
from repro.evo.ops import eval_pool
from repro.evo.problem import Problem
from repro.exceptions import EvaluationError, StoreError
from repro.hpo.campaign import Campaign, CampaignConfig
from repro.hpo.landscape import SurrogateDeepMDProblem
from repro.hpo.representation import DeepMDRepresentation
from repro.store import (
    CachedFailure,
    CachedProblem,
    CampaignJournal,
    EvaluationCache,
    canonical_json,
    evaluation_key,
    journal_path,
    read_journal,
    restore_rng,
    resume_campaign,
)
from repro.store.journal import rng_state_of

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _phenome(lr=1e-3):
    genome = np.array([lr, 1e-5, 7.0, 3.0, 0.5, 1.5, 2.5])
    return DeepMDRepresentation.decoder().decode(genome)


class CountingProblem(Problem):
    """Deterministic two-objective problem that counts evaluations."""

    n_objectives = 2

    def __init__(self):
        self.calls = 0

    def evaluate_with_metadata(self, phenome, uuid=None):
        self.calls += 1
        values = (
            list(phenome.values())
            if isinstance(phenome, dict)
            else phenome
        )
        x = float(np.sum(np.asarray(values, dtype=np.float64)))
        return np.array([x, x * 2.0]), {"calls": self.calls}


class FailingProblem(Problem):
    n_objectives = 2

    def __init__(self):
        self.calls = 0

    def evaluate_with_metadata(self, phenome, uuid=None):
        self.calls += 1
        raise EvaluationError("deterministic boom")


# ----------------------------------------------------------------------
# canonical keys
# ----------------------------------------------------------------------
class TestCanonicalKeys:
    def test_key_order_insensitive(self):
        a = evaluation_key({"a": 1.5, "b": 2}, {"s": 1})
        b = evaluation_key({"b": 2, "a": 1.5}, {"s": 1})
        assert a == b

    def test_numpy_scalars_match_python(self):
        a = evaluation_key({"x": np.float64(0.1)}, {"s": np.int64(3)})
        b = evaluation_key({"x": 0.1}, {"s": 3})
        assert a == b

    def test_distinct_phenomes_distinct_keys(self):
        assert evaluation_key({"x": 1.0}, {}) != evaluation_key(
            {"x": 1.0 + 1e-15}, {}
        )

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_float_roundtrip_bit_exact(self):
        x = 0.1 + 0.2  # not representable prettily
        assert json.loads(canonical_json({"x": x}))["x"] == x


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------
class TestEvaluationCache:
    def test_roundtrip(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        assert cache.insert("ab" + "0" * 62, [1.0, 2.0], {"note": "hi"})
        entry = cache.lookup("ab" + "0" * 62)
        assert entry is not None
        assert entry.fitness == [1.0, 2.0]
        assert entry.metadata["note"] == "hi"
        assert len(cache) == 1
        assert cache.contains("ab" + "0" * 62)
        assert not cache.contains("cd" + "0" * 62)

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        for i in range(5):
            cache.insert(f"{i:02d}" + "0" * 62, [float(i)])
        assert not list(tmp_path.rglob("*.tmp"))

    def test_garbage_entry_skipped_not_raised(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        key = "ee" + "1" * 62
        path = tmp_path / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True)
        path.write_text("{definitely not json")
        assert cache.lookup(key) is None
        assert cache.stats()["corrupt"] == 1

    def test_torn_entry_skipped(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        key = "ff" + "2" * 62
        cache.insert(key, [3.0])
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text(path.read_text()[:20])  # torn mid-write
        fresh = EvaluationCache(tmp_path)  # cold index
        assert fresh.lookup(key) is None
        assert fresh.stats()["corrupt"] == 1

    def test_foreign_version_skipped(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        key = "aa" + "3" * 62
        path = tmp_path / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"version": 999, "key": key, "fitness": [1]}))
        assert cache.lookup(key) is None
        assert cache.stats()["corrupt"] == 1

    def test_mismatched_key_is_corrupt(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        good = "bb" + "4" * 62
        cache.insert(good, [1.0])
        impostor = "bb" + "5" * 62
        src = tmp_path / good[:2] / f"{good}.json"
        (tmp_path / impostor[:2]).mkdir(exist_ok=True)
        (tmp_path / impostor[:2] / f"{impostor}.json").write_text(
            src.read_text()
        )
        fresh = EvaluationCache(tmp_path)
        assert fresh.lookup(impostor) is None
        assert fresh.stats()["corrupt"] == 1

    def test_failures_refused_by_default(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        assert not cache.insert("cc" + "6" * 62, [MAXINT], failed=True)
        assert cache.stats()["skipped_failures"] == 1
        assert len(cache) == 0

    def test_cache_failures_opt_in(self, tmp_path):
        cache = EvaluationCache(tmp_path, cache_failures=True)
        key = "dd" + "7" * 62
        assert cache.insert(key, [MAXINT], failed=True, error="boom")
        entry = cache.lookup(key)
        assert entry.failed and entry.error == "boom"

    def test_index_is_bounded(self, tmp_path):
        cache = EvaluationCache(tmp_path, max_index_entries=3)
        for i in range(10):
            cache.insert(f"{i:02d}" + "8" * 62, [float(i)])
        assert len(cache._index) <= 3
        # evicted entries still come back from disk
        assert cache.lookup("00" + "8" * 62).fitness == [0.0]

    def test_nan_metadata_becomes_null(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        key = "ab" + "9" * 62
        cache.insert(key, [1.0], {"runtime": float("nan")})
        fresh = EvaluationCache(tmp_path)
        assert fresh.lookup(key).metadata["runtime"] is None


class TestCachedProblem:
    def test_hit_skips_inner_evaluation(self, tmp_path):
        inner = CountingProblem()
        prob = CachedProblem(inner, EvaluationCache(tmp_path))
        ph = {"x": 1.0}
        f1, m1 = prob.evaluate_with_metadata(ph)
        f2, m2 = prob.evaluate_with_metadata(ph)
        assert inner.calls == 1
        assert np.array_equal(f1, f2)
        assert "cache_hit" not in m1 and m2["cache_hit"] is True

    def test_failure_not_replayed_by_default(self, tmp_path):
        inner = FailingProblem()
        prob = CachedProblem(inner, EvaluationCache(tmp_path))
        for _ in range(2):
            with pytest.raises(EvaluationError):
                prob.evaluate_with_metadata({"x": 1.0})
        assert inner.calls == 2  # re-ran: failure was not memoized

    def test_failure_replayed_when_opted_in(self, tmp_path):
        inner = FailingProblem()
        cache = EvaluationCache(tmp_path, cache_failures=True)
        prob = CachedProblem(inner, cache)
        with pytest.raises(EvaluationError):
            prob.evaluate_with_metadata({"x": 1.0})
        with pytest.raises(CachedFailure) as exc_info:
            prob.evaluate_with_metadata({"x": 1.0})
        assert inner.calls == 1
        assert exc_info.value.metadata["cache_hit"] is True
        assert exc_info.value.metadata["failed"] is True

    def test_failure_flag_reaches_individual_metadata(self, tmp_path):
        prob = CachedProblem(
            FailingProblem(), EvaluationCache(tmp_path, cache_failures=True)
        )
        for _ in range(2):  # live failure, then replayed failure
            ind = RobustIndividual(np.zeros(2), problem=prob)
            ind.evaluate()
            assert not ind.is_viable
            assert ind.metadata["failed"] is True
            assert "failure_cause" in ind.metadata

    def test_delegates_to_inner(self, tmp_path):
        inner = CountingProblem()
        prob = CachedProblem(inner, EvaluationCache(tmp_path))
        assert prob.calls == 0  # delegated attribute
        assert prob.n_objectives == 2

    def test_surrogate_fingerprint_distinguishes_seeds(self, tmp_path):
        a = CachedProblem(
            SurrogateDeepMDProblem(seed=1), EvaluationCache(tmp_path)
        )
        b = CachedProblem(
            SurrogateDeepMDProblem(seed=2), EvaluationCache(tmp_path)
        )
        ph = _phenome()
        assert a.cache_key(ph) != b.cache_key(ph)


# ----------------------------------------------------------------------
# dedup within a generation
# ----------------------------------------------------------------------
class TestDedup:
    def _offspring(self, problem, genomes):
        return [
            RobustIndividual(g, problem=problem) for g in genomes
        ]

    def test_duplicates_evaluated_once(self):
        problem = CountingProblem()
        inds = self._offspring(
            problem, [np.zeros(3), np.zeros(3), np.ones(3), np.zeros(3)]
        )
        out = eval_pool(size=4, dedup=True)(iter(inds))
        assert problem.calls == 2  # two distinct genomes
        assert out is not None and len(out) == 4
        dups = [i for i in out if "dedup_of" in i.metadata]
        assert len(dups) == 2
        for ind in out:
            assert ind.fitness is not None
        # duplicates share values but not storage
        zeros = [i for i in out if np.all(i.genome == 0.0)]
        assert np.array_equal(zeros[0].fitness, zeros[1].fitness)
        assert zeros[0].fitness is not zeros[1].fitness

    def test_dedup_off_evaluates_all(self):
        problem = CountingProblem()
        inds = self._offspring(problem, [np.zeros(3)] * 3)
        eval_pool(size=3, dedup=False)(iter(inds))
        assert problem.calls == 3


# ----------------------------------------------------------------------
# the journal
# ----------------------------------------------------------------------
def _journaled_campaign(tmp_path, name="camp", **cfg_kwargs):
    cfg = CampaignConfig(
        n_runs=cfg_kwargs.pop("n_runs", 2),
        pop_size=cfg_kwargs.pop("pop_size", 6),
        generations=cfg_kwargs.pop("generations", 3),
        base_seed=cfg_kwargs.pop("base_seed", 11),
    )
    d = tmp_path / name
    d.mkdir()
    journal = CampaignJournal(
        journal_path(d), problem_spec={"backend": "surrogate"}
    )
    campaign = Campaign(
        lambda seed: SurrogateDeepMDProblem(seed=seed), cfg, journal=journal
    )
    result = campaign.run()
    journal.close()
    return d, cfg, result


class TestJournal:
    def test_roundtrip(self, tmp_path):
        d, cfg, _ = _journaled_campaign(tmp_path)
        state = read_journal(journal_path(d))
        assert state.n_torn == 0
        assert state.campaign_complete
        assert state.config_doc["pop_size"] == cfg.pop_size
        assert state.problem_spec == {"backend": "surrogate"}
        for run in range(cfg.n_runs):
            rs = state.runs[run]
            assert rs.complete
            # generations 0..N journaled contiguously
            assert len(rs.contiguous_generations()) == cfg.generations + 1

    def test_every_line_is_strict_json(self, tmp_path):
        d, _, _ = _journaled_campaign(tmp_path)
        for line in journal_path(d).read_text().splitlines():
            doc = json.loads(line)  # raises on NaN/Infinity literals
            assert "type" in doc

    def test_generation_records_carry_rng_state(self, tmp_path):
        d, _, _ = _journaled_campaign(tmp_path)
        state = read_journal(journal_path(d))
        for rs in state.runs.values():
            for doc in rs.generations.values():
                assert doc["rng_state"] is not None

    def test_truncation_at_any_byte_offset_parses(self, tmp_path):
        d, _, _ = _journaled_campaign(
            tmp_path, n_runs=1, pop_size=4, generations=2
        )
        raw = journal_path(d).read_bytes()
        whole = read_journal(journal_path(d)).n_records
        # a spread of offsets including line boundaries and mid-record
        offsets = sorted(
            {1, 17, len(raw) // 3, len(raw) // 2, len(raw) - 5, len(raw)}
        )
        for cut in offsets:
            p = tmp_path / f"cut{cut}.jsonl"
            p.write_bytes(raw[:cut])
            state = read_journal(p)  # must never raise
            assert state.n_records <= whole

    def test_missing_file_is_empty_state(self, tmp_path):
        state = read_journal(tmp_path / "nope.jsonl")
        assert state.n_records == 0 and not state.runs

    def test_unknown_record_types_skipped(self, tmp_path):
        p = tmp_path / "j.jsonl"
        p.write_text(
            json.dumps({"type": "from_the_future", "x": 1})
            + "\n"
            + json.dumps({"type": "run_begin", "run": 0, "seed": 5})
            + "\n"
        )
        state = read_journal(p)
        assert state.runs[0].seed == 5

    def test_append_generation_requires_run(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        rec = type("R", (), {"generation": 0})()
        with pytest.raises(RuntimeError):
            journal.append_generation(rec)

    def test_rng_state_roundtrip(self):
        rng = np.random.default_rng(123)
        rng.random(7)  # advance
        state = json.loads(json.dumps(rng_state_of(rng)))
        clone = restore_rng(state)
        assert np.array_equal(rng.random(5), clone.random(5))


# ----------------------------------------------------------------------
# resume
# ----------------------------------------------------------------------
def _fronts(result):
    return sorted(
        (tuple(i.genome), tuple(i.fitness))
        for i in result.aggregate_pareto_front()
    )


def _populations(result):
    return [
        [
            (tuple(i.genome), tuple(i.fitness))
            for i in rec.population
        ]
        for run in result.runs
        for rec in run
    ]


class TestResume:
    def test_complete_journal_restores_verbatim(self, tmp_path):
        d, _, base = _journaled_campaign(tmp_path)
        restored = resume_campaign(d)
        assert _populations(restored) == _populations(base)
        assert _fronts(restored) == _fronts(base)

    def test_truncated_journal_resumes_bit_identically(self, tmp_path):
        d, cfg, base = _journaled_campaign(tmp_path)
        raw = journal_path(d).read_text().splitlines()
        # cut after the second generation record of run 1: run 0 is
        # complete, run 1 is interrupted mid-flight
        kept, run1_gens = [], 0
        for line in raw:
            kept.append(line)
            doc = json.loads(line)
            if doc.get("type") == "generation" and doc.get("run") == 1:
                run1_gens += 1
                if run1_gens == 2:
                    break
        d2 = tmp_path / "cut"
        d2.mkdir()
        journal_path(d2).write_text("\n".join(kept) + "\n")
        resumed = resume_campaign(
            d2, problem_factory=lambda seed: SurrogateDeepMDProblem(seed=seed)
        )
        assert _populations(resumed) == _populations(base)
        assert _fronts(resumed) == _fronts(base)
        # the resumed journal is itself complete and resumable again
        again = resume_campaign(d2)
        assert _fronts(again) == _fronts(base)

    def test_torn_tail_resumes_with_warning(self, tmp_path):
        d, _, base = _journaled_campaign(tmp_path)
        raw = journal_path(d).read_bytes()
        d2 = tmp_path / "torn"
        d2.mkdir()
        # chop mid-record: the torn line must be dropped, not parsed
        journal_path(d2).write_bytes(raw[: int(len(raw) * 0.6)])
        with pytest.warns(UserWarning, match="torn tail"):
            resumed = resume_campaign(
                d2,
                problem_factory=lambda seed: SurrogateDeepMDProblem(
                    seed=seed
                ),
            )
        assert _fronts(resumed) == _fronts(base)

    def test_resume_replays_interrupted_generation_from_cache(
        self, tmp_path
    ):
        cfg = CampaignConfig(
            n_runs=1, pop_size=6, generations=3, base_seed=13
        )
        d = tmp_path / "camp"
        d.mkdir()
        cache = EvaluationCache(d / "cache")
        journal = CampaignJournal(
            journal_path(d), problem_spec={"backend": "surrogate"}
        )
        factory = lambda seed: CachedProblem(  # noqa: E731
            SurrogateDeepMDProblem(seed=seed), cache
        )
        base = Campaign(factory, cfg, journal=journal).run()
        journal.close()
        evals_cached = cache.stats()["inserts"]
        # simulate a kill during the last generation: the journal loses
        # its final records, but the cache kept every finished result
        raw = journal_path(d).read_text().splitlines()
        gen_lines = [
            i
            for i, line in enumerate(raw)
            if json.loads(line).get("type") == "generation"
        ]
        journal_path(d).write_text(
            "\n".join(raw[: gen_lines[-1]]) + "\n"
        )
        warm = EvaluationCache(d / "cache")
        resumed = resume_campaign(
            d,
            problem_factory=lambda seed: SurrogateDeepMDProblem(seed=seed),
            cache=warm,
        )
        assert _fronts(resumed) == _fronts(base)
        stats = warm.stats()
        # every replayed evaluation of the lost generation was already
        # on disk: served from cache, nothing retrained
        assert stats["misses"] == 0
        assert stats["hits"] == cfg.pop_size
        assert stats["hits"] <= evals_cached

    def test_unreadable_directory_raises_store_error(self, tmp_path):
        with pytest.raises(StoreError, match="no campaign journal"):
            resume_campaign(tmp_path)

    def test_journal_without_config_raises(self, tmp_path):
        journal_path(tmp_path).write_text(
            json.dumps({"type": "run_begin", "run": 0, "seed": 1}) + "\n"
        )
        with pytest.raises(StoreError, match="campaign_begin"):
            resume_campaign(tmp_path)

    def test_config_doc_tolerates_unknown_fields(self, tmp_path):
        d, cfg, base = _journaled_campaign(tmp_path, n_runs=1)
        lines = journal_path(d).read_text().splitlines()
        first = json.loads(lines[0])
        first["config"]["from_the_future"] = 42
        lines[0] = json.dumps(first)
        journal_path(d).write_text("\n".join(lines) + "\n")
        with pytest.warns(UserWarning, match="unknown campaign config"):
            restored = resume_campaign(d)
        assert _fronts(restored) == _fronts(base)


# ----------------------------------------------------------------------
# distributed fast path
# ----------------------------------------------------------------------
class TestClientCachedFastPath:
    def test_cached_individuals_skip_the_scheduler(self, tmp_path):
        from repro.distributed import LocalCluster

        cache = EvaluationCache(tmp_path)
        problem = CachedProblem(CountingProblem(), cache)
        genomes = [np.full(3, float(i)) for i in range(4)]
        # warm the cache with half the genomes
        for g in genomes[:2]:
            RobustIndividual(g, problem=problem).evaluate()
        with LocalCluster(n_workers=2) as cluster:
            client = cluster.client()
            inds = [
                RobustIndividual(g, problem=problem) for g in genomes
            ]
            out = eval_pool(client=client, size=4)(iter(inds))
            stats = cluster.scheduler.stats()
        assert stats["cached"] == 2
        assert stats["submitted"] == 2
        for ind in out:
            assert ind.fitness is not None and ind.is_viable

    def test_uncached_problems_submit_normally(self):
        from repro.distributed import LocalCluster

        problem = CountingProblem()
        with LocalCluster(n_workers=2) as cluster:
            client = cluster.client()
            inds = [
                RobustIndividual(np.full(3, float(i)), problem=problem)
                for i in range(3)
            ]
            eval_pool(client=client, size=3)(iter(inds))
            stats = cluster.scheduler.stats()
        assert stats["cached"] == 0
        assert stats["submitted"] == 3


# ----------------------------------------------------------------------
# the CLI: kill → resume, end to end
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestCliKillResume:
    def _run_cli(self, args, cwd):
        env = dict(os.environ, PYTHONPATH=SRC)
        return subprocess.run(
            [sys.executable, "-m", "repro.hpo.cli", *args],
            cwd=cwd,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_killed_campaign_resumes_bit_identically(self, tmp_path):
        common = [
            "campaign",
            "--runs", "2",
            "--pop-size", "6",
            "--generations", "3",
            "--seed", "7",
        ]
        base = self._run_cli(
            common + ["--save", "base"], cwd=tmp_path
        )
        assert base.returncode == 0, base.stderr
        killed = self._run_cli(
            common + ["--save", "killed", "--kill-after-evals", "20"],
            cwd=tmp_path,
        )
        assert killed.returncode == 137, killed.stderr
        resumed = self._run_cli(["resume", "killed"], cwd=tmp_path)
        assert resumed.returncode == 0, resumed.stderr
        from repro.io import load_campaign

        a = load_campaign(tmp_path / "base")
        b = load_campaign(tmp_path / "killed")
        assert _fronts(a) == _fronts(b)
        assert _populations(a) == _populations(b)
        # the interrupted generation's finished evaluations were cache
        # hits, not re-trainings (2 evals were done past the last
        # journaled generation: 20 total minus 18 journaled)
        assert "'hits': 2" in resumed.stdout


# ----------------------------------------------------------------------
# campaign snapshot schema (satellite 1)
# ----------------------------------------------------------------------
class TestSnapshotSchema:
    def _save(self, tmp_path):
        from repro.io import save_campaign

        cfg = CampaignConfig(
            n_runs=1, pop_size=4, generations=1, base_seed=3
        )
        result = Campaign(
            lambda seed: SurrogateDeepMDProblem(seed=seed), cfg
        ).run()
        save_campaign(result, tmp_path / "camp")
        return result

    def test_snapshot_carries_schema_version(self, tmp_path):
        from repro.io.campaign_store import SCHEMA_VERSION

        self._save(tmp_path)
        doc = json.loads((tmp_path / "camp" / "campaign.json").read_text())
        assert doc["schema_version"] == SCHEMA_VERSION

    def test_load_warns_on_unknown_fields(self, tmp_path):
        from repro.io import load_campaign

        base = self._save(tmp_path)
        path = tmp_path / "camp" / "campaign.json"
        doc = json.loads(path.read_text())
        doc["future_field"] = {"x": 1}
        doc["config"]["future_knob"] = 9
        path.write_text(json.dumps(doc))
        with pytest.warns(UserWarning):
            loaded = load_campaign(tmp_path / "camp")
        assert _populations(loaded) == _populations(base)

    def test_load_warns_on_newer_schema(self, tmp_path):
        from repro.io import load_campaign

        self._save(tmp_path)
        path = tmp_path / "camp" / "campaign.json"
        doc = json.loads(path.read_text())
        doc["schema_version"] = 99
        path.write_text(json.dumps(doc))
        with pytest.warns(UserWarning, match="newer"):
            load_campaign(tmp_path / "camp")
